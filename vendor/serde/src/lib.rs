//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Exposes the two traits the repository derives — [`Serialize`] and
//! [`Deserialize`] — over a small self-describing [`Value`] model, plus a
//! JSON encoder/decoder in [`json`]. Only the surface used in this workspace
//! is implemented.

use std::fmt;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the stand-in's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `u64` (any non-negative integral variant).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::I64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the [`Value`] data model.
pub trait Serialize {
    /// Serialises `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserialises from `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Upstream supports zero-copy `&'de str`; this owned-`Value` stand-in can
/// only produce `'static` strings by leaking. Deserialising a struct with a
/// `&'static str` field therefore leaks that string — fine for the small
/// config-style payloads this workspace round-trips.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

/// Mirrors upstream serde's `{secs, nanos}` encoding.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}
impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = v
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("duration: missing secs"))?;
        let nanos = v
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("duration: missing nanos"))?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// JSON encoding/decoding of the [`Value`] model.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serialises to a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value());
        out
    }

    /// Deserialises from a JSON string.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
        T::from_value(&parse(s)?)
    }

    /// Parses a JSON document into a [`Value`].
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    fn write_value(out: &mut String, v: &Value) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(x) => {
                if x.is_finite() {
                    // Keep round-trippability for integral floats.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", x);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(out, item);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    write_value(out, item);
                }
                out.push('}');
            }
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::custom(format!(
                    "expected `{}` at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn literal(&mut self, lit: &str) -> bool {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            self.skip_ws();
            match self.peek() {
                Some(b'n') if self.literal("null") => Ok(Value::Null),
                Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    loop {
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Value::Seq(items));
                            }
                            _ => return Err(Error::custom("expected `,` or `]`")),
                        }
                    }
                }
                Some(b'{') => {
                    self.pos += 1;
                    let mut entries = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.expect(b':')?;
                        let value = self.value()?;
                        entries.push((key, value));
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                return Ok(Value::Map(entries));
                            }
                            _ => return Err(Error::custom("expected `,` or `}`")),
                        }
                    }
                }
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                other => Err(Error::custom(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|b| b as char),
                    self.pos
                ))),
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error::custom("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| Error::custom("bad \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::custom("bad \\u code point"))?,
                                );
                                self.pos += 4;
                            }
                            _ => return Err(Error::custom("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| Error::custom("invalid UTF-8"))?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut is_float = false;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::custom("invalid number"))?;
            if !is_float {
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(Value::U64(u));
                }
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            }
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

/// Looks up a field in serialised map entries (used by derived code).
#[doc(hidden)]
pub fn value_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_value() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::F64(1.5)),
            ("e".into(), Value::I64(-7)),
        ]);
        let text = json::to_string(&v);
        assert_eq!(json::parse(&text).unwrap(), v);
    }

    #[test]
    fn duration_round_trip() {
        let d = Duration::new(3, 250_000_001);
        let v = d.to_value();
        assert_eq!(Duration::from_value(&v).unwrap(), d);
    }

    #[test]
    fn numbers_parse_to_narrowest() {
        assert_eq!(json::parse("42").unwrap(), Value::U64(42));
        assert_eq!(json::parse("-42").unwrap(), Value::I64(-42));
        assert_eq!(json::parse("4.25").unwrap(), Value::F64(4.25));
    }
}
