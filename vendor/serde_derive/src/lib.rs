//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Hand-rolled token parsing (no `syn`/`quote`): supports named-field
//! structs and unit-variant enums, plus the `#[serde(skip)]` field
//! attribute (omitted on serialize, `Default::default()` on deserialize).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

struct Field {
    name: String,
    skip: bool,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (&item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => {
            let pushes: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "__m.push(({n:?}.to_string(), serde::Serialize::to_value(&self.{n})));\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __m: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        (Item::Struct { name, fields }, Mode::Deserialize) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: Default::default(),\n", f.name)
                    } else {
                        format!(
                            "{n}: match __v.get({n:?}) {{\n\
                                 Some(__x) => serde::Deserialize::from_value(__x)?,\n\
                                 None => return Err(serde::Error::custom(concat!(\
                                     \"missing field `\", {n:?}, \"` in \", {name:?}))),\n\
                             }},\n",
                            n = f.name,
                            name = name
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         if __v.as_map().is_none() {{\n\
                             return Err(serde::Error::custom(concat!(\"expected map for \", {name:?})));\n\
                         }}\n\
                         Ok({name} {{\n\
                             {inits}\
                         }})\n\
                     }}\n\
                 }}"
            )
        }
        (Item::Enum { name, variants }, Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::Str({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n\
                             {arms}\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        (Item::Enum { name, variants }, Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match __v.as_str() {{\n\
                             Some(__s) => match __s {{\n\
                                 {arms}\
                                 __other => Err(serde::Error::custom(format!(\
                                     \"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             None => Err(serde::Error::custom(concat!(\"expected string for \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Parses a struct/enum item from the derive input token stream.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        _ => return Err("serde stand-in derive: expected `struct` or `enum`".to_string()),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stand-in derive: expected item name".to_string()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive: generic item `{name}` is not supported"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "serde stand-in derive: tuple struct `{name}` is not supported"
            ));
        }
        _ => {
            return Err(format!(
                "serde stand-in derive: expected braced body for `{name}`"
            ));
        }
    };

    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_fields(body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// True if an attribute group's content is `serde(... skip ...)`.
fn attr_is_serde_skip(group: &TokenTree) -> bool {
    let TokenTree::Group(g) = group else {
        return false;
    };
    let mut inner = g.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match inner.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Field attributes (collect skip markers).
        let mut skip = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(attr) = tokens.get(i + 1) {
                        skip |= attr_is_serde_skip(attr);
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err("serde stand-in derive: expected field name".to_string());
        };
        let name = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde stand-in derive: expected `:` after field `{name}`"
                ));
            }
        }
        // Consume the type up to a top-level comma (angle-bracket aware).
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // variant attributes such as #[default]
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err("serde stand-in derive: expected variant name".to_string());
        };
        let name = id.to_string();
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde stand-in derive: non-unit variant `{name}` is not supported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde stand-in derive: discriminant on `{name}` is not supported"
                ));
            }
            _ => return Err("serde stand-in derive: unexpected token in enum body".to_string()),
        }
        variants.push(name);
    }
    Ok(variants)
}
