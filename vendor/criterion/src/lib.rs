//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Compiles the repository's `harness = false` bench targets and gives
//! crude wall-clock numbers: each benchmark body runs once per sample with
//! a small fixed sample count (so `cargo test`, which executes bench
//! binaries, stays fast). No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Samples per benchmark in this stand-in (upstream defaults to 100).
const SAMPLES: usize = 3;

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
        }
    }
}

/// Throughput annotation for per-element rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// Id from a function name plus parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in always runs a fixed
    /// number of samples (`SAMPLES`).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..SAMPLES {
            f(&mut b);
        }
        self.report(&id.to_string(), &b);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..SAMPLES {
            f(&mut b, input);
        }
        self.report(&id.id, &b);
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{id}: no iterations", self.name);
            return;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / per_iter / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("{}/{id}: {:.3} ms/iter{rate}", self.name, per_iter * 1e3);
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `f` (upstream times many).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Collects benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
