//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Sampling-based property testing with upstream's call syntax: the
//! [`proptest!`] macro, `prop_assert*!`/[`prop_assume!`], range / tuple /
//! `Just` / `prop_oneof!` / `collection::{vec, hash_set}` strategies,
//! and a [`test_runner::TestRunner`]. Unlike upstream it samples randomly
//! (seeded deterministically per test name) and does **not** shrink —
//! failures report the raw failing inputs via `Debug`.

/// Strategy combinators and implementations.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Constant strategy: always yields a clone of the value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Full-domain strategy for `T` (see [`any`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Uniform samples over `T`'s full domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(std::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = self.end.abs_diff(self.start) as u128;
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident/$idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A / 0);
    impl_tuple!(A / 0, B / 1);
    impl_tuple!(A / 0, B / 1, C / 2);
    impl_tuple!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

    /// Weighted choice between boxed strategies (see `prop_oneof!`).
    pub struct Union<T: Debug> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        /// Boxes one arm (helper for `prop_oneof!`).
        pub fn arm<S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
            Box::new(s)
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.next_u64() % total.max(1);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            self.arms[0].1.sample(rng)
        }
    }
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use super::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::fmt::Debug;
    use std::hash::Hash;
    use std::ops::Range;

    /// Yields `Vec`s with length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Yields `HashSet`s with size drawn from `size` and elements from
    /// `element` (resampling on collision, best-effort up to a retry cap).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 * target.max(1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::{Any, Strategy};
    use crate::test_runner::TestRng;

    /// Uniform over `{false, true}`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyBool;

    /// Uniform over `{false, true}` (upstream `proptest::bool::ANY`).
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            Any::<bool>::default().sample(rng)
        }
    }
}

/// Test execution: RNG, config, runner, and error types.
pub mod test_runner {
    use super::strategy::Strategy;
    use std::fmt;

    /// SplitMix64 RNG used for sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash of a test name, for deterministic per-test seeds.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Per-case outcome: hard failure or input rejection.
    #[derive(Debug, Clone, PartialEq)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The inputs were rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "inputs rejected: {m}"),
            }
        }
    }

    /// A failed run: the message plus the `Debug` form of the inputs.
    #[derive(Debug, Clone, PartialEq)]
    pub struct TestError {
        /// Failure message.
        pub message: String,
        /// `Debug` rendering of the failing inputs.
        pub input: String,
    }

    impl fmt::Display for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{} (inputs: {})", self.message, self.input)
        }
    }

    impl std::error::Error for TestError {}

    /// Run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives a strategy against a property closure.
    #[derive(Debug, Default)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Runner with an explicit config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `test` against `config.cases` sampled inputs.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let mut rng = TestRng::new(0x0c70_cac4e_u64);
            let mut executed = 0u32;
            let mut attempts = 0u32;
            let max_attempts = self.config.cases.saturating_mul(10).max(16);
            while executed < self.config.cases && attempts < max_attempts {
                attempts += 1;
                let value = strategy.sample(&mut rng);
                let rendered = format!("{:?}", value);
                match test(value) {
                    Ok(()) => executed += 1,
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(message)) => {
                        return Err(TestError {
                            message,
                            input: rendered,
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case unless `cond` holds (does not fail the test).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Weighted (or unweighted) choice between strategies yielding one type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Union::arm($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Union::arm($strat)) ),+
        ])
    };
}

/// Declares property tests with upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in 0u16..16, v in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __seed = $crate::test_runner::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = $crate::test_runner::TestRng::new(__seed);
            let mut __executed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(10).max(16);
            while __executed < __config.cases && __attempts < __max_attempts {
                __attempts += 1;
                let __vals = ( $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+ );
                let __rendered = format!("{:?}", __vals);
                let ( $($pat,)+ ) = __vals;
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    Ok(()) => __executed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}\ninputs: {}",
                            __executed + 1, __config.cases, __msg, __rendered
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::{TestRng, TestRunner};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u16..16, (a, b) in (0u8..4, -1.0f64..1.0)) {
            prop_assert!(x < 16);
            prop_assert!(a < 4);
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn collections(v in crate::collection::vec(0u32..10, 1..20),
                       s in crate::collection::hash_set(0u16..100, 2..7)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(s.len() < 7);
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        #[derive(Debug, Clone, PartialEq)]
        enum Op {
            A(u8),
            B,
        }
        let strat = prop_oneof![
            3 => (0u8..4).prop_map(Op::A),
            1 => Just(Op::B),
        ];
        let mut rng = TestRng::new(9);
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                Op::A(v) => {
                    assert!(v < 4);
                    saw_a = true;
                }
                Op::B => saw_b = true,
            }
        }
        assert!(saw_a && saw_b);
    }

    #[test]
    fn runner_reports_failing_input() {
        let mut runner = TestRunner::default();
        let err = runner
            .run(&(0u32..100), |x| {
                prop_assert!(x < 90, "x too big: {x}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.message.contains("too big"));
    }
}
