//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Non-poisoning [`Mutex`]/[`RwLock`] over `std::sync`, matching upstream's
//! API shape: `lock()` returns the guard directly (a poisoned std lock —
//! only possible if a holder panicked — is recovered into its inner value).

use std::sync::{self, TryLockError};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
