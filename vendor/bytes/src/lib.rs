//! Offline stand-in for `bytes` (see `vendor/README.md`).
//!
//! [`BytesMut`]/[`Bytes`] over `Vec<u8>`, with big-endian [`Buf`]/[`BufMut`]
//! covering the accessors this workspace uses.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian write access.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Big-endian read access over a cursor-like buffer.
///
/// Methods panic when the buffer is exhausted, matching upstream; callers
/// in this workspace check `remaining()` before every typed read.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes({
            let mut b = [0u8; 4];
            self.copy_to_slice(&mut b);
            b
        })
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes({
            let mut b = [0u8; 8];
            self.copy_to_slice(&mut b);
            b
        })
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"MAGC");
        buf.put_f64(0.05);
        buf.put_u8(16);
        buf.put_f32(-1.5);
        let bytes = buf.freeze();

        let mut rd: &[u8] = &bytes;
        assert_eq!(&rd[..4], b"MAGC");
        rd.advance(4);
        assert_eq!(rd.get_f64(), 0.05);
        assert_eq!(rd.get_u8(), 16);
        assert_eq!(rd.get_f32(), -1.5);
        assert!(!rd.has_remaining());
    }
}
