//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides [`rngs::StdRng`] (a SplitMix64 generator — deterministic per
//! seed, but a different stream than upstream's ChaCha12-based `StdRng`),
//! the [`SeedableRng`] constructor trait, and [`RngExt::random_range`].

use std::ops::Range;

/// Core generator interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods (upstream `Rng`).
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (half-open).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, &range)
    }

    /// Uniform sample in `[0, 1)`.
    fn random<T: SampleUniform + Default>(&mut self) -> T {
        T::sample_unit(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `range`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
    /// Uniform sample from the type's unit interval / full domain.
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(
            range.start < range.end,
            "random_range: empty range {}..{}",
            range.start,
            range.end
        );
        let unit = Self::sample_unit(rng);
        range.start + unit * (range.end - range.start)
    }

    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range: empty range");
        range.start + Self::sample_unit(rng) * (range.end - range.start)
    }

    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range: empty range");
                let span = range.end.abs_diff(range.start) as u128;
                // Modulo bias is negligible for the spans used here
                // (u128 accumulator over a u64 draw).
                let offset = (rng.next_u64() as u128 % span) as Self;
                range.start.wrapping_add(offset as Self)
            }

            fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as Self
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator (stand-in for upstream's ChaCha12 `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(
                a.random_range(0.0..1.0_f64).to_bits(),
                b.random_range(0.0..1.0_f64).to_bits()
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-2.5..7.25);
            assert!((-2.5..7.25).contains(&x));
            let n: usize = rng.random_range(3..9);
            assert!((3..9).contains(&n));
        }
    }
}
