//! 3D environment construction (the paper's §5.2 workload): build the
//! FR-079-corridor-like dataset with vanilla OctoMap and with OctoCache,
//! compare runtimes, and serialise the resulting octree.
//!
//! ```sh
//! cargo run --release --example build_map
//! ```

use std::time::Instant;

use octocache::pipeline::{MappingSystem, OctoMapSystem};
use octocache::{CacheConfig, SerialOctoCache};
use octocache_datasets::{Dataset, DatasetConfig};
use octocache_geom::VoxelGrid;
use octocache_octomap::{io, OccupancyParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::Fr079Corridor;
    let seq = dataset.generate(&DatasetConfig::default());
    let resolution = 0.1;
    let grid = VoxelGrid::new(resolution, 16)?;
    println!(
        "dataset {}: {} scans, {} points, {} m range, {} m resolution",
        seq.name(),
        seq.scans().len(),
        seq.total_points(),
        seq.max_range(),
        resolution
    );

    // Vanilla OctoMap.
    let mut octomap = OctoMapSystem::new(grid, OccupancyParams::default());
    let t0 = Instant::now();
    for scan in seq.scans() {
        octomap.insert_scan(scan.origin, &scan.points, seq.max_range())?;
    }
    let octomap_time = t0.elapsed();
    println!("octomap:   {octomap_time:?}");

    // Serial OctoCache, sized per the paper's 3-4x rule.
    let cache = CacheConfig::builder().num_buckets(1 << 15).tau(4).build()?;
    let mut cached = SerialOctoCache::new(grid, OccupancyParams::default(), cache);
    let t1 = Instant::now();
    for scan in seq.scans() {
        cached.insert_scan(scan.origin, &scan.points, seq.max_range())?;
    }
    cached.finish();
    let cached_time = t1.elapsed();
    println!(
        "octocache: {cached_time:?}  ({:.2}x, {:.1}% hit rate)",
        octomap_time.as_secs_f64() / cached_time.as_secs_f64(),
        cached.cache_stats().hit_rate() * 100.0
    );

    // Both maps agree — serialise the OctoCache one.
    let tree = cached.into_tree();
    let bytes = io::write_tree(&tree);
    let path = std::env::temp_dir().join("octocache_map.ot1");
    std::fs::write(&path, &bytes)?;
    println!(
        "serialised {} nodes to {} ({:.1} KiB)",
        tree.num_nodes(),
        path.display(),
        bytes.len() as f64 / 1024.0
    );

    let restored = io::read_tree(&std::fs::read(&path)?)?;
    assert_eq!(restored.num_nodes(), tree.num_nodes());
    println!("roundtrip OK: {} nodes", restored.num_nodes());
    Ok(())
}
