//! Quickstart: build an OctoCache-backed map, insert scans, query it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use octocache::pipeline::MappingSystem;
use octocache::{CacheConfig, SerialOctoCache};
use octocache_geom::{Point3, VoxelGrid};
use octocache_octomap::OccupancyParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10 cm map over a 16-level octree, with the paper's default sensor
    // model and a 2^14-bucket cache (tau = 4).
    let grid = VoxelGrid::new(0.1, 16)?;
    let cache = CacheConfig::builder().num_buckets(1 << 14).tau(4).build()?;
    let mut map = SerialOctoCache::new(grid, OccupancyParams::default(), cache);

    // Simulate a sensor seeing a wall at x = 3 m from two nearby poses.
    for step in 0..5 {
        let origin = Point3::new(0.1 * step as f64, 0.0, 1.0);
        let cloud: Vec<Point3> = (-20..=20)
            .flat_map(|y| {
                (0..10).map(move |z| Point3::new(3.0, y as f64 * 0.05, 0.8 + z as f64 * 0.05))
            })
            .collect();
        let report = map.insert_scan(origin, &cloud, 10.0)?;
        println!(
            "scan {step}: {} observations, {} cache hits, {} voxels to octree, {:?} total",
            report.observations,
            report.cache_hits,
            report.octree_updates,
            report.times.total()
        );
    }

    // Queries are OctoMap-consistent and served through the cache.
    let wall = Point3::new(3.0, 0.0, 1.0);
    let free = Point3::new(1.5, 0.0, 1.0);
    println!("wall voxel occupied: {:?}", map.is_occupied_at(wall)?);
    println!("mid-air voxel occupied: {:?}", map.is_occupied_at(free)?);

    let stats = map.cache_stats();
    println!(
        "cache: {} insertions, {:.1}% hit rate, {} evictions",
        stats.insertions,
        stats.hit_rate() * 100.0,
        stats.evictions
    );

    // Flush the cache and hand the completed octree over.
    let tree = map.into_tree();
    println!(
        "final octree: {} nodes, {} leaves, {:.1} KiB",
        tree.num_nodes(),
        tree.num_leaves(),
        tree.memory_usage() as f64 / 1024.0
    );
    Ok(())
}
