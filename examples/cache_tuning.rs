//! Cache tuning walkthrough (the paper's §6.2.3/§6.2.4): how hit rate and
//! construction time respond to cache size and bucket depth τ.
//!
//! ```sh
//! cargo run --release --example cache_tuning
//! ```

use std::time::Instant;

use octocache::pipeline::MappingSystem;
use octocache::{CacheConfig, SerialOctoCache};
use octocache_datasets::{Dataset, DatasetConfig};
use octocache_geom::VoxelGrid;
use octocache_octomap::OccupancyParams;

fn run(seq: &octocache_datasets::ScanSequence, cfg: CacheConfig) -> (f64, f64) {
    let grid = VoxelGrid::new(0.2, 16).expect("valid grid");
    let mut map = SerialOctoCache::new(grid, OccupancyParams::default(), cfg);
    let t = Instant::now();
    for scan in seq.scans() {
        map.insert_scan(scan.origin, &scan.points, seq.max_range())
            .expect("in-grid scan");
    }
    map.finish();
    (t.elapsed().as_secs_f64(), map.cache_stats().hit_rate())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seq = Dataset::NewCollege.generate(&DatasetConfig::default());
    println!(
        "dataset {}: {} scans, {} points",
        seq.name(),
        seq.scans().len(),
        seq.total_points()
    );

    println!("\n-- cache size sweep (tau = 4) --");
    println!(
        "{:>10} {:>10} {:>9} {:>9}",
        "buckets", "capacity", "time(s)", "hit-rate"
    );
    for k in [8u32, 10, 12, 14, 16] {
        let cfg = CacheConfig::builder().num_buckets(1 << k).tau(4).build()?;
        let (time, hits) = run(&seq, cfg);
        println!(
            "{:>10} {:>10} {:>9.3} {:>8.1}%",
            format!("2^{k}"),
            cfg.capacity_after_eviction(),
            time,
            hits * 100.0
        );
    }

    println!("\n-- tau sweep at fixed capacity (2^16 cells) --");
    println!(
        "{:>6} {:>10} {:>9} {:>9}",
        "tau", "buckets", "time(s)", "hit-rate"
    );
    for tau in [1usize, 2, 4, 8, 16] {
        let buckets = (1usize << 16) / tau;
        let cfg = CacheConfig::builder()
            .num_buckets(buckets.next_power_of_two())
            .tau(tau)
            .build()?;
        let (time, hits) = run(&seq, cfg);
        println!("{tau:>6} {buckets:>10} {time:>9.3} {:>8.1}%", hits * 100.0);
    }

    println!("\npaper: hit rate plateaus with size; optimal tau is 2-4");
    Ok(())
}
