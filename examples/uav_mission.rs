//! A closed-loop UAV navigation mission (the paper's §5.1 workload): fly an
//! AscTec Pelican through the Room environment with OctoMap and with
//! OctoCache and compare end-to-end metrics.
//!
//! ```sh
//! cargo run --release --example uav_mission
//! ```

use octocache::pipeline::OctoMapSystem;
use octocache::{CacheConfig, ParallelOctoCache};
use octocache_geom::VoxelGrid;
use octocache_octomap::OccupancyParams;
use octocache_sim::{Environment, Mission, MissionConfig, MissionReport, UavModel};

fn show(label: &str, r: &MissionReport) {
    println!(
        "{label:<22} reached={} cycles={} e2e={:.1}ms v̄={:.2}m/s T={:.1}s collisions={}",
        r.reached_goal,
        r.cycles,
        r.avg_cycle_compute_s * 1e3,
        r.avg_velocity,
        r.completion_time_s,
        r.collisions
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Environment::Room;
    let uav = UavModel::asctec_pelican();
    let params = env.baseline_params();
    let grid = VoxelGrid::new(params.resolution, 16)?;
    let config = MissionConfig {
        sensing_range: Some(params.sensing_range),
        ..MissionConfig::default()
    };
    println!(
        "environment {env}: goal {} m, range {} m, resolution {} m",
        env.goal_distance(),
        params.sensing_range,
        params.resolution
    );

    let base =
        Mission::new(env, uav, config).run(OctoMapSystem::new(grid, OccupancyParams::default()))?;
    show("octomap", &base);

    let cache = CacheConfig::builder().num_buckets(1 << 16).tau(4).build()?;
    let cached = Mission::new(env, uav, config).run(ParallelOctoCache::new(
        grid,
        OccupancyParams::default(),
        cache,
    ))?;
    show("octocache-parallel", &cached);

    println!(
        "speedup: e2e {:.2}x, mission time saved {:.0}%",
        base.avg_cycle_compute_s / cached.avg_cycle_compute_s.max(1e-12),
        (1.0 - cached.completion_time_s / base.completion_time_s) * 100.0
    );
    Ok(())
}
