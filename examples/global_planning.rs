//! Global path planning on an OctoCache-built map: build the Factory
//! environment map from simulated scans, then plan a start→goal path with
//! the A* lattice planner and smooth it.
//!
//! ```sh
//! cargo run --release --example global_planning
//! ```

use octocache::pipeline::MappingSystem;
use octocache::{CacheConfig, SerialOctoCache};
use octocache_datasets::DepthSensor;
use octocache_datasets::Pose;
use octocache_geom::{Point3, VoxelGrid};
use octocache_octomap::OccupancyParams;
use octocache_sim::astar::{AStarConfig, AStarPlanner};
use octocache_sim::Environment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Environment::Factory;
    let scene = env.scene(7);
    let params = env.baseline_params();
    let grid = VoxelGrid::new(params.resolution, 16)?;
    let cache = CacheConfig::builder().num_buckets(1 << 14).tau(4).build()?;
    let mut map = SerialOctoCache::new(grid, OccupancyParams::default(), cache);

    // Survey flight: scan the environment along the nominal corridor.
    let sensor = DepthSensor::new(2.0, 1.0, 96, 64, params.sensing_range);
    let altitude = env.flight_altitude();
    let mut scans = 0;
    let mut x = 0.0;
    while x < env.goal_distance() {
        let pose = Pose::new(Point3::new(x, 0.0, altitude), 0.0);
        let cloud = sensor.scan(&scene, &pose, 11 + scans as u64);
        if !cloud.is_empty() {
            map.insert_scan(pose.position, &cloud, params.sensing_range)?;
        }
        scans += 1;
        x += params.sensing_range * 0.4;
    }
    println!(
        "surveyed {} scans; cache hit rate {:.1} %",
        scans,
        map.cache_stats().hit_rate() * 100.0
    );

    // Plan through the mapped space.
    let planner = AStarPlanner::new(AStarConfig {
        cell: params.resolution.max(0.25),
        ..Default::default()
    });
    let start = env.start();
    let goal = env.goal();
    let Some(path) = planner.plan(&mut map, start, goal) else {
        println!("no path found (try more survey scans)");
        return Ok(());
    };
    println!(
        "A*: {} waypoints, {:.1} m, {} expansions, {} occupancy queries",
        path.waypoints.len(),
        path.length(),
        path.expansions,
        path.queries
    );
    let smoothed = planner.smooth(&mut map, &path);
    println!(
        "smoothed: {} waypoints, {:.1} m",
        smoothed.waypoints.len(),
        smoothed.length()
    );
    for wp in smoothed.waypoints.iter().take(10) {
        println!("  {wp}");
    }
    if smoothed.waypoints.len() > 10 {
        println!("  … ({} more)", smoothed.waypoints.len() - 10);
    }
    Ok(())
}
