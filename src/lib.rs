//! Umbrella crate for the OctoCache reproduction workspace.
//!
//! This crate only re-exports the member crates so that the repository-level
//! `examples/` and `tests/` directories can exercise the whole system through
//! one dependency. Library users should depend on the individual crates
//! ([`octocache`], [`octocache_octomap`], …) directly.

pub use octocache;
pub use octocache_datasets as datasets;
pub use octocache_geom as geom;
pub use octocache_octomap as octomap;
pub use octocache_sim as sim;
