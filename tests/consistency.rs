//! Cross-crate integration tests of the paper's core guarantee: every
//! OctoCache variant answers occupancy queries exactly like vanilla OctoMap,
//! both mid-stream (cache + octree) and after a final flush (octree only).

use octocache_repro::datasets::{Dataset, DatasetConfig};
use octocache_repro::geom::{Point3, VoxelGrid, VoxelKey};
use octocache_repro::octocache::pipeline::{MappingSystem, OctoMapSystem, RayTracer};
use octocache_repro::octocache::{CacheConfig, ParallelOctoCache, SerialOctoCache};
use octocache_repro::octomap::OccupancyParams;

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.2, 16).unwrap()
}

fn small_cache() -> CacheConfig {
    // Deliberately small so evictions happen constantly.
    CacheConfig::builder()
        .num_buckets(1 << 8)
        .tau(2)
        .build()
        .unwrap()
}

/// Sampled keys covering the corridor region of the tiny dataset.
fn probe_keys() -> Vec<VoxelKey> {
    let mut keys = Vec::new();
    for x in (32730..32970).step_by(7) {
        for y in (32740..32800).step_by(5) {
            keys.push(VoxelKey::new(x, y, 32775));
        }
    }
    keys
}

#[test]
fn all_backends_agree_with_octomap_after_flush() {
    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let params = OccupancyParams::default();

    let mut reference = OctoMapSystem::new(grid(), params);
    let mut serial = SerialOctoCache::new(grid(), params, small_cache());
    let mut parallel = ParallelOctoCache::new(grid(), params, small_cache());

    for scan in seq.scans() {
        reference
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
        serial
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
        parallel
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
    }
    serial.finish();
    parallel.finish();

    let mut mismatches = 0;
    for key in probe_keys() {
        let want = reference.occupancy(key);
        for (name, got) in [
            ("serial", serial.occupancy(key)),
            ("parallel", parallel.occupancy(key)),
        ] {
            match (want, got) {
                (None, None) => {}
                (Some(a), Some(b)) if (a - b).abs() < 1e-4 => {}
                other => {
                    eprintln!("{name} mismatch at {key}: {other:?}");
                    mismatches += 1;
                }
            }
        }
    }
    assert_eq!(mismatches, 0);
}

#[test]
fn rt_backends_agree_with_octomap_rt() {
    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let params = OccupancyParams::default();

    let mut reference = OctoMapSystem::with_ray_tracer(grid(), params, RayTracer::Dedup);
    let mut serial =
        SerialOctoCache::with_ray_tracer(grid(), params, small_cache(), RayTracer::Dedup);

    for scan in seq.scans() {
        reference
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
        serial
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
    }
    serial.finish();

    for key in probe_keys() {
        let want = reference.occupancy(key);
        let got = serial.occupancy(key);
        match (want, got) {
            (None, None) => {}
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-4, "{key}: {a} vs {b}"),
            other => panic!("{key}: {other:?}"),
        }
    }
}

#[test]
fn mid_stream_queries_match_octomap() {
    // After EVERY scan (not just at the end), cached backends must answer
    // like OctoMap — the paper's query-consistency guarantee.
    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let params = OccupancyParams::default();

    let mut reference = OctoMapSystem::new(grid(), params);
    let mut serial = SerialOctoCache::new(grid(), params, small_cache());
    let mut parallel = ParallelOctoCache::new(grid(), params, small_cache());
    let probes = probe_keys();

    for scan in seq.scans() {
        reference
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
        serial
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
        parallel
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();

        for &key in probes.iter().step_by(11) {
            let want = reference.occupancy(key);
            let got_s = serial.occupancy(key);
            let got_p = parallel.occupancy(key);
            for (name, got) in [("serial", got_s), ("parallel", got_p)] {
                match (want, got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-4, "{name} {key}: {a} vs {b}")
                    }
                    other => panic!("{name} {key}: {other:?}"),
                }
            }
        }
    }
}

#[test]
fn map_diff_certifies_bitwise_identity() {
    // The EXPERIMENTS.md certification: after identical scan streams, the
    // flushed OctoCache trees are voxel-for-voxel identical to OctoMap's.
    use octocache_repro::octocache::pipeline::MappingSystem as _;
    use octocache_repro::octomap::compare;

    let seq = Dataset::NewCollege.generate(&DatasetConfig::tiny());
    let params = OccupancyParams::default();
    let mut reference = OctoMapSystem::new(grid(), params);
    let mut serial = SerialOctoCache::new(grid(), params, small_cache());
    let mut parallel = ParallelOctoCache::new(grid(), params, small_cache());
    for scan in seq.scans() {
        reference
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
        serial
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
        parallel
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
    }
    let t_ref = Box::new(reference).take_tree();
    let t_ser = Box::new(serial).take_tree();
    let t_par = Box::new(parallel).take_tree();

    let d_ser = compare::diff(&t_ref, &t_ser, 1e-4);
    assert!(d_ser.is_identical(), "serial diverged: {d_ser:?}");
    assert_eq!(d_ser.occupied_iou(), 1.0);
    let d_par = compare::diff(&t_ref, &t_par, 1e-4);
    assert!(d_par.is_identical(), "parallel diverged: {d_par:?}");
}

#[test]
fn sharded_take_tree_matches_octomap() {
    use octocache_repro::octocache::ShardedOctoMap;
    use octocache_repro::octomap::compare;

    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let params = OccupancyParams::default();
    let mut reference = OctoMapSystem::new(grid(), params);
    let mut sharded = ShardedOctoMap::new(grid(), params, 8);
    for scan in seq.scans() {
        reference
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
        sharded
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
    }
    let t_ref = Box::new(reference).take_tree();
    let t_shard = Box::new(sharded).take_tree();
    let d = compare::diff(&t_ref, &t_shard, 1e-4);
    assert!(d.is_identical(), "sharded diverged: {d:?}");
}

#[test]
fn occupancy_decisions_match_world_geometry() {
    // End-to-end sanity: after mapping the corridor, wall voxels read
    // occupied and the corridor interior reads free.
    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let params = OccupancyParams::default();
    let mut map = SerialOctoCache::new(grid(), params, small_cache());
    for scan in seq.scans() {
        map.insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
    }
    // Interior of the corridor near the start: free.
    assert_eq!(
        map.is_occupied_at(Point3::new(1.0, 0.0, 1.4)).unwrap(),
        Some(false)
    );
    // Inside the side wall (y ≈ 2.2): occupied or unknown, never free.
    let wall = map.is_occupied_at(Point3::new(1.0, 2.1, 1.4)).unwrap();
    assert_ne!(wall, Some(false), "wall must not read free");
}
