//! Integration of the planner-facing octree queries (ray casting,
//! multi-resolution search, bounding-box scans) with maps built through the
//! OctoCache pipeline — the full perception→planning dependency chain of the
//! paper's Figure 3.

use octocache_repro::datasets::{Dataset, DatasetConfig};
use octocache_repro::geom::{Aabb, Point3, VoxelGrid};
use octocache_repro::octocache::pipeline::MappingSystem;
use octocache_repro::octocache::{CacheConfig, SerialOctoCache};
use octocache_repro::octomap::query::{self, RayCastResult};
use octocache_repro::octomap::OccupancyParams;

fn corridor_tree() -> octocache_repro::octomap::OccupancyOcTree {
    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let grid = VoxelGrid::new(0.2, 16).unwrap();
    let cache = CacheConfig::builder()
        .num_buckets(1 << 10)
        .tau(4)
        .build()
        .unwrap();
    let mut map = SerialOctoCache::new(grid, OccupancyParams::default(), cache);
    for scan in seq.scans() {
        map.insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
    }
    map.into_tree()
}

#[test]
fn cast_ray_finds_corridor_walls() {
    let tree = corridor_tree();
    let origin = Point3::new(3.0, 0.0, 1.4);
    // Sideways ray must hit the corridor wall at |y| ≈ 2. (Probe mid-walk:
    // the wall there has been inside the sensor FOV of earlier poses.)
    let result = query::cast_ray(&tree, origin, Point3::new(0.0, 1.0, 0.0), 10.0, true).unwrap();
    match result {
        RayCastResult::Hit { distance, .. } => {
            assert!(
                (1.2..3.2).contains(&distance),
                "wall expected around 2 m, got {distance}"
            );
        }
        other => panic!("expected wall hit, got {other:?}"),
    }
}

#[test]
fn cast_ray_down_corridor_is_free_nearby() {
    let tree = corridor_tree();
    let origin = Point3::new(0.5, 0.0, 1.4);
    // Short forward cast within scanned free space: no hit.
    let result = query::cast_ray(&tree, origin, Point3::new(1.0, 0.0, 0.0), 1.5, true).unwrap();
    assert_eq!(result, RayCastResult::Miss);
}

#[test]
fn collision_boxes_along_the_corridor() {
    let tree = corridor_tree();
    // A UAV-sized box in mid-corridor: free.
    let body = Aabb::from_center_size(Point3::new(3.0, 0.0, 1.4), Point3::splat(0.6));
    assert!(!query::any_occupied_in_box(&tree, &body).unwrap());
    // The same box shoved into the wall: collision.
    let crashed = Aabb::from_center_size(Point3::new(3.0, 2.1, 1.4), Point3::splat(0.6));
    assert!(query::any_occupied_in_box(&tree, &crashed).unwrap());
}

#[test]
fn coarse_search_is_conservative() {
    let tree = corridor_tree();
    let grid = *tree.grid();
    // For every occupied fine voxel, every coarser lookup on the same key
    // must also be occupied (inner nodes hold the max of their children).
    let mut checked = 0;
    for leaf in tree.leaves() {
        if leaf.level == 0 && tree.params().is_occupied(leaf.log_odds) {
            for level in 1..=4u8 {
                let coarse = query::search_at_level(&tree, leaf.key, level).unwrap();
                assert!(
                    tree.params().is_occupied(coarse),
                    "level {level} lookup lost occupancy at {}",
                    leaf.key
                );
            }
            checked += 1;
            if checked > 500 {
                break;
            }
        }
    }
    assert!(checked > 10, "too few occupied voxels to check");
    let _ = grid;
}
