//! End-to-end integration: dataset generation → map construction →
//! serialisation → UAV mission, across crate boundaries.

use octocache_repro::datasets::{stats, Dataset, DatasetConfig};
use octocache_repro::geom::VoxelGrid;
use octocache_repro::octocache::pipeline::MappingSystem;
use octocache_repro::octocache::{CacheConfig, SerialOctoCache};
use octocache_repro::octomap::{io, OccupancyParams};
use octocache_repro::sim::{Environment, Mission, MissionConfig, UavModel};

#[test]
fn construct_serialize_restore() {
    let seq = Dataset::NewCollege.generate(&DatasetConfig::tiny());
    let grid = VoxelGrid::new(0.4, 16).unwrap();
    let cache = CacheConfig::builder()
        .num_buckets(1 << 10)
        .tau(4)
        .build()
        .unwrap();
    let mut map = SerialOctoCache::new(grid, OccupancyParams::default(), cache);
    for scan in seq.scans() {
        map.insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
    }
    let tree = map.into_tree();
    assert!(
        tree.num_nodes() > 100,
        "map too small: {}",
        tree.num_nodes()
    );

    let bytes = io::write_tree(&tree);
    let restored = io::read_tree(&bytes).unwrap();
    assert_eq!(restored.num_nodes(), tree.num_nodes());
    assert_eq!(restored.occupied_voxel_count(), tree.occupied_voxel_count());
}

#[test]
fn cache_absorbs_documented_duplication() {
    // The whole premise: the duplication measured by the dataset stats must
    // show up as cache hits during construction.
    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let grid = VoxelGrid::new(0.2, 16).unwrap();
    let row = stats::table2_row(&seq, 0.2).unwrap();
    let expected_dup_ratio = row.duplicate_voxels as f64 / row.nonduplicate_voxels as f64;
    assert!(expected_dup_ratio > 1.5, "dataset not duplicated enough");

    let cache = CacheConfig::builder()
        .num_buckets(1 << 14)
        .tau(4)
        .build()
        .unwrap();
    let mut map = SerialOctoCache::new(grid, OccupancyParams::default(), cache);
    for scan in seq.scans() {
        map.insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
    }
    let hit_rate = map.cache_stats().hit_rate();
    // With a generous cache, the hit rate approaches 1 - 1/dup_ratio.
    let ideal = 1.0 - 1.0 / expected_dup_ratio;
    assert!(
        hit_rate > ideal * 0.85,
        "hit rate {hit_rate:.3} far below ideal {ideal:.3}"
    );
}

#[test]
fn mission_on_every_environment_with_octocache() {
    for env in Environment::ALL {
        let p = env.baseline_params();
        let grid = VoxelGrid::new(p.resolution, 16).unwrap();
        let cache = CacheConfig::builder()
            .num_buckets(1 << 12)
            .tau(4)
            .build()
            .unwrap();
        let map = SerialOctoCache::new(grid, OccupancyParams::default(), cache);
        let report = Mission::new(env, UavModel::asctec_pelican(), MissionConfig::tiny())
            .run(map)
            .unwrap();
        assert!(report.reached_goal, "{env}: {report:?}");
        assert_eq!(report.collisions, 0, "{env} collided");
    }
}
