//! Property-based verification of the paper's §4.3 main theorem across
//! crates: Morton order minimises the locality functional 𝓕(S), and lower 𝓕
//! corresponds to fewer octree node visits (the mechanism behind Figure 10).

use octocache_repro::geom::{VoxelGrid, VoxelKey};
use octocache_repro::octocache::locality::{locality_f, morton_is_optimal_for, VoxelOrder};
use octocache_repro::octomap::{OccupancyOcTree, OccupancyParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Main theorem, exhaustively on small random voxel sets.
    #[test]
    fn morton_achieves_exhaustive_minimum(
        coords in proptest::collection::hash_set((0u16..32, 0u16..32, 0u16..32), 2..7)
    ) {
        let keys: Vec<VoxelKey> = coords
            .into_iter()
            .map(|(x, y, z)| VoxelKey::new(x, y, z))
            .collect();
        let (morton_f, best) = morton_is_optimal_for(&keys, 16);
        prop_assert_eq!(morton_f, best);
    }

    /// Mechanism check: for the same voxel set, the Morton order never
    /// incurs more octree node visits than a random order, and its 𝓕 is
    /// never larger.
    #[test]
    fn lower_f_means_fewer_node_visits(
        coords in proptest::collection::hash_set((0u16..64, 0u16..64, 0u16..64), 50..150),
        seed in any::<u64>(),
    ) {
        let keys: Vec<VoxelKey> = coords
            .into_iter()
            .map(|(x, y, z)| VoxelKey::new(x, y, z))
            .collect();
        let grid = VoxelGrid::new(0.1, 16).unwrap();

        let visits = |ordered: &[VoxelKey]| {
            let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
            tree.stats().reset();
            for &k in ordered {
                tree.update_node(k, true);
            }
            tree.stats().snapshot().node_visits
        };

        let mut morton = keys.clone();
        VoxelOrder::Morton.apply(&mut morton);
        let mut random = keys.clone();
        VoxelOrder::Random { seed }.apply(&mut random);

        prop_assert!(locality_f(&morton, 16) <= locality_f(&random, 16));
        // Node visits: tree creation work is order-independent, but
        // expansion/prune churn tracks locality; Morton must not be worse
        // beyond noise (allow 1% slack for prune-path differences).
        let vm = visits(&morton) as f64;
        let vr = visits(&random) as f64;
        prop_assert!(vm <= vr * 1.01, "morton visits {vm} vs random {vr}");
    }
}

#[test]
fn figure10_ordering_ranks_as_paper() {
    // A structured voxel block: Morton's F must beat axis sorts, which beat
    // random shuffles — the ranking of Figure 10.
    let keys: Vec<VoxelKey> = (0..16u16)
        .flat_map(|x| (0..16u16).flat_map(move |y| (0..4u16).map(move |z| VoxelKey::new(x, y, z))))
        .collect();
    let f_of = |order: VoxelOrder| {
        let mut v = keys.clone();
        order.apply(&mut v);
        locality_f(&v, 16)
    };
    let morton = f_of(VoxelOrder::Morton);
    let axis = f_of(VoxelOrder::AxisX);
    let random = f_of(VoxelOrder::Random { seed: 3 });
    assert!(morton <= axis, "morton {morton} vs axis {axis}");
    assert!(axis < random, "axis {axis} vs random {random}");
}
