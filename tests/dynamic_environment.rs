//! Dynamic-environment integration: the paper's §2.2 rationale for log-odds
//! clamping is that a changed world (an obstacle that disappears) can be
//! re-learned quickly. Both the OctoMap baseline and the cached pipelines
//! must flip the vacated voxels from occupied back to free.

use octocache_repro::datasets::dynamic::{vanishing_obstacle, OBSTACLE_FACE};
use octocache_repro::geom::VoxelGrid;
use octocache_repro::octocache::pipeline::{MappingSystem, OctoMapSystem};
use octocache_repro::octocache::{CacheConfig, ParallelOctoCache, SerialOctoCache};
use octocache_repro::octomap::OccupancyParams;

fn run_backend(mut map: impl MappingSystem) -> (Option<bool>, Option<bool>) {
    let seq = vanishing_obstacle(4, 17);
    let half = seq.scans().len() / 2;
    let mut mid_state = None;
    for (i, scan) in seq.scans().iter().enumerate() {
        map.insert_scan(scan.origin, &scan.points, seq.max_range())
            .unwrap();
        if i + 1 == half {
            mid_state = map.is_occupied_at(OBSTACLE_FACE).unwrap();
        }
    }
    let end_state = map.is_occupied_at(OBSTACLE_FACE).unwrap();
    (mid_state, end_state)
}

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.25, 16).unwrap()
}

fn cache() -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(1 << 10)
        .tau(4)
        .build()
        .unwrap()
}

#[test]
fn octomap_relearns_vanished_obstacle() {
    let params = OccupancyParams::default();
    let (mid, end) = run_backend(OctoMapSystem::new(grid(), params));
    assert_eq!(mid, Some(true), "obstacle not learned while present");
    assert_eq!(end, Some(false), "obstacle not unlearned after removal");
}

#[test]
fn serial_octocache_relearns_vanished_obstacle() {
    let params = OccupancyParams::default();
    let (mid, end) = run_backend(SerialOctoCache::new(grid(), params, cache()));
    assert_eq!(mid, Some(true));
    assert_eq!(end, Some(false));
}

#[test]
fn parallel_octocache_relearns_vanished_obstacle() {
    let params = OccupancyParams::default();
    let (mid, end) = run_backend(ParallelOctoCache::new(grid(), params, cache()));
    assert_eq!(mid, Some(true));
    assert_eq!(end, Some(false));
}

#[test]
fn clamping_is_what_makes_relearning_fast() {
    // With an absurdly high clamp, the occupied value saturates so far up
    // that the second half cannot pull it below threshold — demonstrating
    // that the bounded log-odds (min_occ/max_occ) are load-bearing.
    let params = OccupancyParams {
        clamp_max: 100.0,
        ..OccupancyParams::default()
    };
    let (mid, end) = run_backend(OctoMapSystem::new(grid(), params));
    assert_eq!(mid, Some(true));
    assert_eq!(
        end,
        Some(true),
        "without clamping the stale obstacle should persist"
    );
}
