//! Ray tracing through the voxel grid (OctoMap's `computeRayKeys`).
//!
//! Given a sensor origin and a measured surface point, [`trace_into`] computes
//! the keys of every voxel the ray crosses *between* the origin and the
//! endpoint using the Amanatides–Woo 3D digital differential analyzer. Those
//! voxels are observed as *free*; the endpoint voxel itself (which contains
//! the sampled obstacle surface) is *occupied* and is deliberately excluded,
//! matching OctoMap's convention where the caller updates the endpoint
//! separately.
//!
//! # Example
//!
//! ```
//! # use octocache_geom::{Point3, VoxelGrid, ray};
//! # fn main() -> Result<(), octocache_geom::GeomError> {
//! let grid = VoxelGrid::new(1.0, 8)?;
//! let keys = ray::trace(&grid, Point3::ZERO, Point3::new(3.5, 0.0, 0.0))?;
//! assert_eq!(keys.len(), 3); // crosses 3 free voxels before the endpoint
//! # Ok(())
//! # }
//! ```

use crate::{GeomError, Point3, VoxelGrid, VoxelKey};

/// A reusable buffer of voxel keys produced by ray traversal.
///
/// Mirrors OctoMap's `KeyRay`: allocate once, [`KeyRay::clear`] between rays.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyRay {
    keys: Vec<VoxelKey>,
}

impl KeyRay {
    /// Creates an empty ray buffer.
    pub fn new() -> Self {
        KeyRay::default()
    }

    /// Creates an empty buffer with space for `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        KeyRay {
            keys: Vec::with_capacity(capacity),
        }
    }

    /// Number of keys currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Clears the buffer, retaining its allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.keys.clear();
    }

    /// The keys as a slice, in traversal order (origin first).
    #[inline]
    pub fn as_slice(&self) -> &[VoxelKey] {
        &self.keys
    }

    /// Iterates over the keys in traversal order.
    pub fn iter(&self) -> std::slice::Iter<'_, VoxelKey> {
        self.keys.iter()
    }

    #[inline]
    fn push(&mut self, key: VoxelKey) {
        self.keys.push(key);
    }
}

impl<'a> IntoIterator for &'a KeyRay {
    type Item = &'a VoxelKey;
    type IntoIter = std::slice::Iter<'a, VoxelKey>;
    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter()
    }
}

impl IntoIterator for KeyRay {
    type Item = VoxelKey;
    type IntoIter = std::vec::IntoIter<VoxelKey>;
    fn into_iter(self) -> Self::IntoIter {
        self.keys.into_iter()
    }
}

impl From<KeyRay> for Vec<VoxelKey> {
    fn from(r: KeyRay) -> Self {
        r.keys
    }
}

/// Traces the ray from `origin` to `end`, appending the keys of the free
/// voxels crossed (excluding the endpoint voxel) to `out`.
///
/// `out` is cleared first. The traversal is exact: consecutive keys always
/// differ by one step along exactly one axis.
///
/// # Errors
///
/// Returns an error when either endpoint is non-finite or outside the grid.
pub fn trace_into(
    grid: &VoxelGrid,
    origin: Point3,
    end: Point3,
    out: &mut KeyRay,
) -> Result<(), GeomError> {
    out.clear();
    if !origin.is_finite() || !end.is_finite() {
        return Err(GeomError::NotFinite);
    }
    let key_origin = grid.key_of(origin)?;
    let key_end = grid.key_of(end)?;
    if key_origin == key_end {
        return Ok(());
    }

    let direction = end - origin;
    let length = direction.norm();
    if length <= f64::EPSILON {
        return Ok(());
    }
    let dir = direction / length;

    let res = grid.resolution();
    let mut current = key_origin;
    let mut step = [0i32; 3];
    let mut t_max = [f64::INFINITY; 3];
    let mut t_delta = [f64::INFINITY; 3];

    let origin_arr = [origin.x, origin.y, origin.z];
    let dir_arr = [dir.x, dir.y, dir.z];
    let current_center = grid.center_of(current);
    let center_arr = [current_center.x, current_center.y, current_center.z];

    for i in 0..3 {
        if dir_arr[i] > 1e-12 {
            step[i] = 1;
        } else if dir_arr[i] < -1e-12 {
            step[i] = -1;
        }
        if step[i] != 0 {
            // Distance from the origin to the first boundary crossed along i.
            let voxel_border = center_arr[i] + step[i] as f64 * res * 0.5 - origin_arr[i];
            t_max[i] = voxel_border / dir_arr[i];
            t_delta[i] = res / dir_arr[i].abs();
        }
    }

    // Upper bound on steps: the Manhattan key distance plus slack for corner
    // crossings; prevents infinite loops on degenerate float input.
    let max_steps = key_origin.manhattan_distance(key_end) as usize + 6;

    out.push(current);
    for _ in 0..max_steps {
        // Advance along the axis with the nearest boundary.
        let axis = if t_max[0] < t_max[1] {
            if t_max[0] < t_max[2] {
                0
            } else {
                2
            }
        } else if t_max[1] < t_max[2] {
            1
        } else {
            2
        };
        t_max[axis] += t_delta[axis];
        match axis {
            0 => current.x = (current.x as i32 + step[0]) as u16,
            1 => current.y = (current.y as i32 + step[1]) as u16,
            _ => current.z = (current.z as i32 + step[2]) as u16,
        }
        if current == key_end {
            return Ok(());
        }
        out.push(current);
    }
    // The endpoint is numerically adjacent; terminate quietly rather than
    // looping. (Matches OctoMap, which caps the ray length the same way.)
    Ok(())
}

/// Convenience wrapper around [`trace_into`] returning a fresh [`KeyRay`].
///
/// # Errors
///
/// See [`trace_into`].
pub fn trace(grid: &VoxelGrid, origin: Point3, end: Point3) -> Result<KeyRay, GeomError> {
    let mut out = KeyRay::new();
    trace_into(grid, origin, end, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid() -> VoxelGrid {
        VoxelGrid::new(1.0, 8).unwrap() // 256 voxels/axis, cube [-128, 128)
    }

    #[test]
    fn same_voxel_yields_empty_ray() {
        let g = grid();
        let r = trace(&g, Point3::new(0.1, 0.1, 0.1), Point3::new(0.4, 0.2, 0.3)).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn axis_aligned_ray_counts_voxels() {
        let g = grid();
        let r = trace(&g, Point3::new(0.5, 0.5, 0.5), Point3::new(4.5, 0.5, 0.5)).unwrap();
        // Voxels at x-offsets 0,1,2,3 are free; endpoint voxel (offset 4) excluded.
        assert_eq!(r.len(), 4);
        let first = *r.as_slice().first().unwrap();
        let last = *r.as_slice().last().unwrap();
        assert_eq!(first, g.key_of(Point3::new(0.5, 0.5, 0.5)).unwrap());
        assert_eq!(last.x, first.x + 3);
    }

    #[test]
    fn negative_direction_ray() {
        let g = grid();
        let r = trace(&g, Point3::new(0.5, 0.5, 0.5), Point3::new(-3.5, 0.5, 0.5)).unwrap();
        assert_eq!(r.len(), 4);
        let keys = r.as_slice();
        for w in keys.windows(2) {
            assert_eq!(w[0].x, w[1].x + 1);
        }
    }

    #[test]
    fn first_key_is_origin_voxel_endpoint_excluded() {
        let g = grid();
        let origin = Point3::new(0.2, 0.7, -0.3);
        let end = Point3::new(6.3, 4.1, 2.9);
        let r = trace(&g, origin, end).unwrap();
        assert_eq!(r.as_slice()[0], g.key_of(origin).unwrap());
        let end_key = g.key_of(end).unwrap();
        assert!(r.iter().all(|&k| k != end_key));
    }

    #[test]
    fn consecutive_keys_are_face_adjacent() {
        let g = grid();
        let r = trace(&g, Point3::new(0.1, 0.2, 0.3), Point3::new(9.8, 7.6, -5.4)).unwrap();
        for w in r.as_slice().windows(2) {
            assert_eq!(w[0].manhattan_distance(w[1]), 1, "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn diagonal_ray_visits_expected_count() {
        let g = grid();
        // Perfect diagonal from voxel center: crosses ~3 voxels per unit cube
        // diagonal. From (0.5,0.5,0.5) to (3.5,3.5,3.5): keys differ by 3 per
        // axis -> manhattan distance 9, so 9 boundary crossings; 9 voxels
        // visited before the endpoint (including origin).
        let r = trace(&g, Point3::new(0.5, 0.5, 0.5), Point3::new(3.5, 3.5, 3.5)).unwrap();
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn out_of_bounds_endpoint_errors() {
        let g = grid();
        assert!(trace(&g, Point3::ZERO, Point3::new(1e6, 0.0, 0.0)).is_err());
        assert!(trace(&g, Point3::new(f64::NAN, 0.0, 0.0), Point3::ZERO).is_err());
    }

    #[test]
    fn buffer_reuse_clears_previous_contents() {
        let g = grid();
        let mut buf = KeyRay::with_capacity(64);
        trace_into(&g, Point3::ZERO, Point3::new(5.5, 0.5, 0.5), &mut buf).unwrap();
        let n1 = buf.len();
        assert!(n1 > 0);
        trace_into(&g, Point3::ZERO, Point3::new(0.2, 0.2, 0.2), &mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn into_iterators() {
        let g = grid();
        let r = trace(&g, Point3::new(0.5, 0.5, 0.5), Point3::new(3.5, 0.5, 0.5)).unwrap();
        let by_ref: Vec<_> = (&r).into_iter().copied().collect();
        let owned: Vec<_> = r.clone().into_iter().collect();
        assert_eq!(by_ref, owned);
        let v: Vec<VoxelKey> = r.into();
        assert_eq!(v, owned);
    }

    proptest! {
        #[test]
        fn prop_ray_keys_adjacent_and_unique(
            ox in -20.0f64..20.0, oy in -20.0f64..20.0, oz in -20.0f64..20.0,
            ex in -20.0f64..20.0, ey in -20.0f64..20.0, ez in -20.0f64..20.0,
        ) {
            let g = grid();
            let origin = Point3::new(ox, oy, oz);
            let end = Point3::new(ex, ey, ez);
            let r = trace(&g, origin, end).unwrap();
            let keys = r.as_slice();
            for w in keys.windows(2) {
                prop_assert_eq!(w[0].manhattan_distance(w[1]), 1);
            }
            let mut sorted: Vec<_> = keys.to_vec();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), keys.len(), "ray revisited a voxel");
            // Length sanity: between chebyshev and manhattan key distance.
            let (ko, ke) = (g.key_of(origin).unwrap(), g.key_of(end).unwrap());
            if ko != ke {
                prop_assert!(keys.len() as u32 >= ko.chebyshev_distance(ke) as u32);
                prop_assert!(keys.len() as u32 <= ko.manhattan_distance(ke) + 6);
            }
        }

        #[test]
        fn prop_every_ray_voxel_near_segment(
            ex in -15.0f64..15.0, ey in -15.0f64..15.0, ez in -15.0f64..15.0,
        ) {
            let g = grid();
            let origin = Point3::new(0.3, -0.2, 0.6);
            let end = Point3::new(ex, ey, ez);
            let r = trace(&g, origin, end).unwrap();
            let dir = end - origin;
            let len2 = dir.norm_squared().max(1e-12);
            for &k in r.as_slice() {
                let c = g.center_of(k);
                // Project the voxel center onto the segment; the distance to
                // the segment must be below half the voxel diagonal.
                let t = ((c - origin).dot(dir) / len2).clamp(0.0, 1.0);
                let closest = origin + dir * t;
                prop_assert!(c.distance(closest) <= 3f64.sqrt() / 2.0 + 1e-9);
            }
        }
    }
}
