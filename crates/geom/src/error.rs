use std::fmt;

/// Errors produced by geometric conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A world coordinate falls outside the mapped cube for the grid's depth
    /// and resolution.
    OutOfBounds {
        /// The offending coordinate value (metres).
        coordinate: f64,
        /// Half-extent of the mapped cube (metres); valid coordinates lie in
        /// `[-half_extent, half_extent)`.
        half_extent: f64,
    },
    /// A coordinate was NaN or infinite.
    NotFinite,
    /// The requested mapping resolution is zero, negative, or not finite.
    InvalidResolution(f64),
    /// The requested tree depth is zero or exceeds the 16-bit key budget.
    InvalidDepth(u8),
    /// A ray was degenerate (zero-length direction) where a direction was
    /// required.
    DegenerateRay,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::OutOfBounds {
                coordinate,
                half_extent,
            } => write!(
                f,
                "coordinate {coordinate} outside mapped cube [-{half_extent}, {half_extent})"
            ),
            GeomError::NotFinite => write!(f, "coordinate was NaN or infinite"),
            GeomError::InvalidResolution(r) => {
                write!(f, "invalid mapping resolution {r}; must be finite and > 0")
            }
            GeomError::InvalidDepth(d) => {
                write!(f, "invalid tree depth {d}; must be in 1..=16")
            }
            GeomError::DegenerateRay => write!(f, "ray direction has zero length"),
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GeomError::OutOfBounds {
                coordinate: 5000.0,
                half_extent: 3276.8,
            },
            GeomError::NotFinite,
            GeomError::InvalidResolution(-1.0),
            GeomError::InvalidDepth(0),
            GeomError::DegenerateRay,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
