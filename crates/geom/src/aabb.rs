use serde::{Deserialize, Serialize};

use crate::Point3;

/// An axis-aligned bounding box in world coordinates.
///
/// Used by the synthetic scene models (dataset generators, UAV simulator) for
/// obstacle geometry and by [`VoxelGrid`](crate::VoxelGrid) for voxel and map
/// extents.
///
/// # Example
///
/// ```
/// # use octocache_geom::{Aabb, Point3};
/// let b = Aabb::new(Point3::ZERO, Point3::new(2.0, 2.0, 2.0));
/// assert!(b.contains(Point3::new(1.0, 1.0, 1.0)));
/// assert_eq!(b.center(), Point3::new(1.0, 1.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Point3,
    /// Maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// Creates a box from two opposite corners (re-ordered component-wise, so
    /// the arguments may be given in any order).
    #[inline]
    pub fn new(a: Point3, b: Point3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box from its center and full side lengths.
    #[inline]
    pub fn from_center_size(center: Point3, size: Point3) -> Self {
        let h = size / 2.0;
        Aabb {
            min: center - h,
            max: center + h,
        }
    }

    /// The center point of the box.
    #[inline]
    pub fn center(&self) -> Point3 {
        (self.min + self.max) / 2.0
    }

    /// The side lengths of the box.
    #[inline]
    pub fn size(&self) -> Point3 {
        self.max - self.min
    }

    /// True when `p` lies inside or on the boundary of the box.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True when the two boxes overlap (touching counts as overlapping).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// The smallest box containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows the box by `margin` on every side.
    #[inline]
    pub fn inflate(&self, margin: f64) -> Aabb {
        Aabb {
            min: self.min - Point3::splat(margin),
            max: self.max + Point3::splat(margin),
        }
    }

    /// Slab-test intersection of the ray `origin + t * direction` with the
    /// box, for `t` in `[0, t_max]`.
    ///
    /// Returns the entry parameter `t` (0 when the origin starts inside), or
    /// `None` when the ray misses the box within the range. `direction` need
    /// not be normalised; `t` is expressed in units of `direction`'s length.
    pub fn intersect_ray(&self, origin: Point3, direction: Point3, t_max: f64) -> Option<f64> {
        let mut t_enter = 0.0f64;
        let mut t_exit = t_max;
        for axis in 0..3 {
            let (o, d, lo, hi) = match axis {
                0 => (origin.x, direction.x, self.min.x, self.max.x),
                1 => (origin.y, direction.y, self.min.y, self.max.y),
                _ => (origin.z, direction.z, self.min.z, self.max.z),
            };
            if d.abs() < 1e-15 {
                if o < lo || o > hi {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (t0, t1) = {
                let a = (lo - o) * inv;
                let b = (hi - o) * inv;
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            };
            t_enter = t_enter.max(t0);
            t_exit = t_exit.min(t1);
            if t_enter > t_exit {
                return None;
            }
        }
        Some(t_enter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_reorders_corners() {
        let b = Aabb::new(Point3::new(2.0, -1.0, 5.0), Point3::new(0.0, 3.0, 4.0));
        assert_eq!(b.min, Point3::new(0.0, -1.0, 4.0));
        assert_eq!(b.max, Point3::new(2.0, 3.0, 5.0));
    }

    #[test]
    fn center_size_roundtrip() {
        let b = Aabb::from_center_size(Point3::new(1.0, 2.0, 3.0), Point3::new(4.0, 6.0, 8.0));
        assert_eq!(b.center(), Point3::new(1.0, 2.0, 3.0));
        assert_eq!(b.size(), Point3::new(4.0, 6.0, 8.0));
    }

    #[test]
    fn contains_boundary() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(1.0));
        assert!(b.contains(Point3::ZERO));
        assert!(b.contains(Point3::splat(1.0)));
        assert!(!b.contains(Point3::new(1.0001, 0.5, 0.5)));
    }

    #[test]
    fn intersects_and_union() {
        let a = Aabb::new(Point3::ZERO, Point3::splat(2.0));
        let b = Aabb::new(Point3::splat(1.0), Point3::splat(3.0));
        let c = Aabb::new(Point3::splat(5.0), Point3::splat(6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!(u.min, Point3::ZERO);
        assert_eq!(u.max, Point3::splat(6.0));
    }

    #[test]
    fn inflate_grows_every_side() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(1.0)).inflate(0.5);
        assert_eq!(b.min, Point3::splat(-0.5));
        assert_eq!(b.max, Point3::splat(1.5));
    }

    #[test]
    fn ray_hits_box_front_face() {
        let b = Aabb::new(Point3::new(1.0, -1.0, -1.0), Point3::new(2.0, 1.0, 1.0));
        let t = b
            .intersect_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 10.0)
            .unwrap();
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ray_from_inside_returns_zero() {
        let b = Aabb::new(Point3::splat(-1.0), Point3::splat(1.0));
        let t = b
            .intersect_ray(Point3::ZERO, Point3::new(0.0, 1.0, 0.0), 10.0)
            .unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn ray_misses_box() {
        let b = Aabb::new(Point3::new(1.0, 1.0, 1.0), Point3::new(2.0, 2.0, 2.0));
        assert!(b
            .intersect_ray(Point3::ZERO, Point3::new(-1.0, 0.0, 0.0), 10.0)
            .is_none());
        // Parallel to a slab and outside it.
        assert!(b
            .intersect_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 10.0)
            .is_none());
    }

    #[test]
    fn ray_respects_t_max() {
        let b = Aabb::new(Point3::new(5.0, -1.0, -1.0), Point3::new(6.0, 1.0, 1.0));
        assert!(b
            .intersect_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 4.0)
            .is_none());
        assert!(b
            .intersect_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 5.5)
            .is_some());
    }

    proptest! {
        #[test]
        fn prop_ray_hit_point_is_on_or_in_box(
            ox in -10.0f64..10.0, oy in -10.0f64..10.0, oz in -10.0f64..10.0,
            dx in -1.0f64..1.0, dy in -1.0f64..1.0, dz in -1.0f64..1.0,
        ) {
            let b = Aabb::new(Point3::splat(-2.0), Point3::splat(2.0));
            let o = Point3::new(ox, oy, oz);
            let d = Point3::new(dx, dy, dz);
            prop_assume!(d.norm() > 1e-6);
            if let Some(t) = b.intersect_ray(o, d, 100.0) {
                let hit = o + d * t;
                // Allow generous tolerance for grazing hits.
                prop_assert!(b.inflate(1e-6).contains(hit));
            }
        }

        #[test]
        fn prop_union_contains_both(
            ax in -5.0f64..5.0, ay in -5.0f64..5.0, az in -5.0f64..5.0,
            bx in -5.0f64..5.0, by in -5.0f64..5.0, bz in -5.0f64..5.0,
        ) {
            let a = Aabb::new(Point3::new(ax, ay, az), Point3::new(ax + 1.0, ay + 1.0, az + 1.0));
            let b = Aabb::new(Point3::new(bx, by, bz), Point3::new(bx + 2.0, by + 0.5, bz + 1.5));
            let u = a.union(&b);
            prop_assert!(u.contains(a.min) && u.contains(a.max));
            prop_assert!(u.contains(b.min) && u.contains(b.max));
        }
    }
}
