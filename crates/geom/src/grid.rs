use serde::{Deserialize, Serialize};

use crate::{Aabb, GeomError, Point3, VoxelKey};

/// The world↔key mapping for a voxel grid of a given resolution and depth.
///
/// Follows OctoMap's conventions: the mapped region is a cube centered on the
/// world origin with side `2^depth * resolution`; a world coordinate maps to
/// the discrete key `floor(c / resolution) + 2^(depth-1)` per axis, so the
/// origin lives at key `(2^(depth-1), …)`.
///
/// # Example
///
/// ```
/// # use octocache_geom::{Point3, VoxelGrid, VoxelKey};
/// # fn main() -> Result<(), octocache_geom::GeomError> {
/// let grid = VoxelGrid::new(0.05, 16)?;
/// let key = grid.key_of(Point3::ZERO)?;
/// assert_eq!(key, VoxelKey::new(32768, 32768, 32768));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoxelGrid {
    resolution: f64,
    depth: u8,
    /// `2^(depth-1)`: the key offset placing the origin mid-range.
    center_key: u16,
}

impl VoxelGrid {
    /// Creates a grid with the given mapping resolution (voxel edge length in
    /// metres) and tree depth (levels below the root, 1..=16).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidResolution`] for non-positive or non-finite
    /// resolutions and [`GeomError::InvalidDepth`] for depths outside 1..=16.
    pub fn new(resolution: f64, depth: u8) -> Result<Self, GeomError> {
        if !resolution.is_finite() || resolution <= 0.0 {
            return Err(GeomError::InvalidResolution(resolution));
        }
        if depth == 0 || depth > 16 {
            return Err(GeomError::InvalidDepth(depth));
        }
        Ok(VoxelGrid {
            resolution,
            depth,
            center_key: 1u16 << (depth - 1),
        })
    }

    /// The voxel edge length in metres.
    #[inline]
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Tree depth (levels below the root).
    #[inline]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Number of voxels along each axis (`2^depth`).
    #[inline]
    pub fn voxels_per_axis(&self) -> u32 {
        1u32 << self.depth
    }

    /// Half the side length of the mapped cube, in metres.
    #[inline]
    pub fn half_extent(&self) -> f64 {
        self.center_key as f64 * self.resolution
    }

    /// The mapped region as an axis-aligned box.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        let h = self.half_extent();
        Aabb::new(Point3::splat(-h), Point3::splat(h))
    }

    /// Converts one world coordinate to its discrete key component.
    ///
    /// # Errors
    ///
    /// [`GeomError::NotFinite`] for NaN/inf input, [`GeomError::OutOfBounds`]
    /// when the coordinate falls outside the mapped cube.
    #[inline]
    pub fn key_component(&self, coordinate: f64) -> Result<u16, GeomError> {
        if !coordinate.is_finite() {
            return Err(GeomError::NotFinite);
        }
        let idx = (coordinate / self.resolution).floor() as i64 + self.center_key as i64;
        if idx < 0 || idx >= self.voxels_per_axis() as i64 {
            return Err(GeomError::OutOfBounds {
                coordinate,
                half_extent: self.half_extent(),
            });
        }
        Ok(idx as u16)
    }

    /// Converts a world point to the key of the voxel containing it.
    ///
    /// # Errors
    ///
    /// See [`VoxelGrid::key_component`].
    #[inline]
    pub fn key_of(&self, p: Point3) -> Result<VoxelKey, GeomError> {
        Ok(VoxelKey::new(
            self.key_component(p.x)?,
            self.key_component(p.y)?,
            self.key_component(p.z)?,
        ))
    }

    /// World coordinate of the center of a voxel along one axis.
    #[inline]
    pub fn coordinate_of(&self, key_component: u16) -> f64 {
        (key_component as f64 - self.center_key as f64 + 0.5) * self.resolution
    }

    /// World-space center of the voxel addressed by `key`.
    #[inline]
    pub fn center_of(&self, key: VoxelKey) -> Point3 {
        Point3::new(
            self.coordinate_of(key.x),
            self.coordinate_of(key.y),
            self.coordinate_of(key.z),
        )
    }

    /// World-space box covered by the voxel addressed by `key`.
    #[inline]
    pub fn voxel_bounds(&self, key: VoxelKey) -> Aabb {
        let c = self.center_of(key);
        let h = self.resolution / 2.0;
        Aabb::new(c - Point3::splat(h), c + Point3::splat(h))
    }

    /// Clamps a world point into the mapped cube (useful for truncating
    /// sensor rays at the map boundary before key conversion).
    #[inline]
    pub fn clamp_point(&self, p: Point3) -> Point3 {
        // Keep strictly inside so `floor` lands on a valid key.
        let h = self.half_extent() - self.resolution * 1e-6;
        Point3::new(p.x.clamp(-h, h), p.y.clamp(-h, h), p.z.clamp(-h, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(VoxelGrid::new(0.1, 16).is_ok());
        assert_eq!(
            VoxelGrid::new(0.0, 16),
            Err(GeomError::InvalidResolution(0.0))
        );
        assert_eq!(
            VoxelGrid::new(-0.1, 16),
            Err(GeomError::InvalidResolution(-0.1))
        );
        assert!(VoxelGrid::new(f64::NAN, 16).is_err());
        assert_eq!(VoxelGrid::new(0.1, 0), Err(GeomError::InvalidDepth(0)));
        assert_eq!(VoxelGrid::new(0.1, 17), Err(GeomError::InvalidDepth(17)));
    }

    #[test]
    fn origin_maps_to_center_key() {
        let grid = VoxelGrid::new(0.1, 16).unwrap();
        assert_eq!(grid.key_of(Point3::ZERO).unwrap(), VoxelKey::origin(16));
    }

    #[test]
    fn key_boundaries_use_floor() {
        let grid = VoxelGrid::new(1.0, 4).unwrap(); // keys 0..16, center 8
        assert_eq!(grid.key_component(0.0).unwrap(), 8);
        assert_eq!(grid.key_component(0.999).unwrap(), 8);
        assert_eq!(grid.key_component(1.0).unwrap(), 9);
        assert_eq!(grid.key_component(-0.001).unwrap(), 7);
        assert_eq!(grid.key_component(-1.0).unwrap(), 7);
        assert_eq!(grid.key_component(-1.001).unwrap(), 6);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let grid = VoxelGrid::new(1.0, 4).unwrap(); // cube [-8, 8)
        assert!(grid.key_component(7.999).is_ok());
        assert!(matches!(
            grid.key_component(8.0),
            Err(GeomError::OutOfBounds { .. })
        ));
        assert!(grid.key_component(-8.0).is_ok());
        assert!(matches!(
            grid.key_component(-8.001),
            Err(GeomError::OutOfBounds { .. })
        ));
        assert_eq!(grid.key_component(f64::NAN), Err(GeomError::NotFinite));
    }

    #[test]
    fn center_of_inverts_key_of_to_half_voxel() {
        let grid = VoxelGrid::new(0.25, 16).unwrap();
        let p = Point3::new(3.1, -2.7, 0.4);
        let key = grid.key_of(p).unwrap();
        let c = grid.center_of(key);
        assert!((c.x - p.x).abs() <= 0.125 + 1e-12);
        assert!((c.y - p.y).abs() <= 0.125 + 1e-12);
        assert!((c.z - p.z).abs() <= 0.125 + 1e-12);
    }

    #[test]
    fn voxel_bounds_contain_center() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let key = VoxelKey::new(100, 120, 130);
        let b = grid.voxel_bounds(key);
        assert!(b.contains(grid.center_of(key)));
        assert!((b.size().x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bounds_cube_side_matches_depth() {
        let grid = VoxelGrid::new(0.1, 16).unwrap();
        let b = grid.bounds();
        // 65536 voxels * 0.1 m = 6553.6 m side.
        assert!((b.size().x - 6553.6).abs() < 1e-9);
    }

    #[test]
    fn clamp_point_stays_in_bounds() {
        let grid = VoxelGrid::new(1.0, 4).unwrap();
        let p = grid.clamp_point(Point3::new(100.0, -100.0, 0.0));
        assert!(grid.key_of(p).is_ok());
    }

    proptest! {
        #[test]
        fn prop_key_roundtrip_within_resolution(
            x in -100.0f64..100.0,
            y in -100.0f64..100.0,
            z in -100.0f64..100.0,
        ) {
            let grid = VoxelGrid::new(0.1, 16).unwrap();
            let p = Point3::new(x, y, z);
            let key = grid.key_of(p).unwrap();
            let c = grid.center_of(key);
            prop_assert!((c - p).norm() <= 0.1 * 3f64.sqrt() / 2.0 + 1e-9);
        }

        #[test]
        fn prop_same_voxel_same_key(
            x in -50.0f64..50.0,
            y in -50.0f64..50.0,
            z in -50.0f64..50.0,
        ) {
            let grid = VoxelGrid::new(0.2, 16).unwrap();
            let p = Point3::new(x, y, z);
            let key = grid.key_of(p).unwrap();
            // The voxel center must map back to the same key.
            prop_assert_eq!(grid.key_of(grid.center_of(key)).unwrap(), key);
        }
    }
}
