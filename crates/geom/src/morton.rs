//! Morton (Z-order) codes for voxel keys.
//!
//! Morton codes transform 3D integer coordinates into a single integer by
//! interleaving the coordinate bits (Stocco & Schrack's integer dilation).
//! Ordering voxels by their Morton code is the eviction order that the paper
//! proves optimal for octree insertion locality (§4.3): leaf nodes with small
//! Morton-code differences share more common ancestors, so inserting them
//! consecutively re-uses the upper tree path that is already hot in the CPU
//! cache.
//!
//! Bit layout: within each 3-bit group, **Z is the most significant bit,
//! then Y, then X**, matching the worked example in the paper's §4.3 where
//! voxel `(1, 5, 3)` encodes to `167`. (The binary string printed in the
//! paper's prose contains a typo — `000110111₂` is 55 — but its stated
//! decimal result 167 corresponds exactly to this z,y,x layout.)
//!
//! # Example
//!
//! ```
//! # use octocache_geom::{morton, VoxelKey};
//! let code = morton::encode(VoxelKey::new(1, 5, 3));
//! assert_eq!(code, 167);
//! assert_eq!(morton::decode(code), VoxelKey::new(1, 5, 3));
//! ```

use crate::VoxelKey;

/// Spreads the 16 bits of `v` so that bit `i` moves to bit `3 * i`.
///
/// This is the classic magic-mask integer dilation; the masks below are the
/// standard constants for dilating up to 21 bits into a 63-bit word.
#[inline]
pub fn dilate(v: u16) -> u64 {
    let mut v = v as u64;
    v = (v | (v << 32)) & 0x001f_0000_0000_ffff;
    v = (v | (v << 16)) & 0x001f_0000_ff00_00ff;
    v = (v | (v << 8)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v << 4)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v << 2)) & 0x1249_2492_4924_9249;
    v
}

/// Inverse of [`dilate`]: collects every third bit back into a compact `u16`.
#[inline]
pub fn contract(v: u64) -> u16 {
    let mut v = v & 0x1249_2492_4924_9249;
    v = (v | (v >> 2)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v >> 4)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v >> 8)) & 0x001f_0000_ff00_00ff;
    v = (v | (v >> 16)) & 0x001f_0000_0000_ffff;
    v = (v | (v >> 32)) & 0xffff;
    v as u16
}

/// Encodes a voxel key into its 48-bit Morton code.
///
/// Within each 3-bit group Z occupies the most significant position, then Y,
/// then X (see module docs).
#[inline]
pub fn encode(key: VoxelKey) -> u64 {
    dilate(key.x) | (dilate(key.y) << 1) | (dilate(key.z) << 2)
}

/// Decodes a Morton code back into a voxel key.
///
/// Bits above position 47 are ignored.
#[inline]
pub fn decode(code: u64) -> VoxelKey {
    VoxelKey::new(contract(code), contract(code >> 1), contract(code >> 2))
}

/// Compares two keys by Morton order without materialising the codes.
///
/// Uses the classic "most significant differing dimension" trick: the
/// dimension whose XOR has the highest set bit decides the comparison.
/// Equivalent to `encode(a).cmp(&encode(b))` but branchier and
/// allocation-free; kept for use in hot comparators.
#[inline]
pub fn cmp_keys(a: VoxelKey, b: VoxelKey) -> std::cmp::Ordering {
    // Dimension priority on equal MSB positions follows the bit layout
    // (z > y > x), so start from z and only switch on a strictly higher MSB.
    let (mut msd_xor, mut av, mut bv) = (a.z ^ b.z, a.z, b.z);
    let y_xor = a.y ^ b.y;
    if less_msb(msd_xor, y_xor) {
        msd_xor = y_xor;
        av = a.y;
        bv = b.y;
    }
    let x_xor = a.x ^ b.x;
    if less_msb(msd_xor, x_xor) {
        av = a.x;
        bv = b.x;
    }
    av.cmp(&bv)
}

/// True when the most significant set bit of `a` is strictly below that of
/// `b` (including ties broken toward `b` when `a < a ^ b`).
#[inline]
fn less_msb(a: u16, b: u16) -> bool {
    a < b && a < (a ^ b)
}

/// Sorts a slice of keys in ascending Morton order.
///
/// This is the ordering that minimises the paper's locality functional 𝓕(S)
/// and therefore maximises octree insertion speed (paper §4.3, Figure 10).
pub fn sort_keys(keys: &mut [VoxelKey]) {
    keys.sort_by_key(|&k| encode(k));
}

/// Returns the permutation that visits `keys` in ascending Morton order:
/// `out[i]` is the index into `keys` of the `i`-th key in z-order.
///
/// The sort is stable, so duplicate keys keep their input order. Batched
/// octree reads walk this permutation to maximise root-to-leaf prefix
/// sharing between consecutive queries (the locality argument of §4.3
/// applied to the read path) while still reporting results in input order.
pub fn sort_index(keys: &[VoxelKey]) -> Vec<u32> {
    debug_assert!(keys.len() <= u32::MAX as usize);
    let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
    idx.sort_by_key(|&i| encode(keys[i as usize]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Bit-by-bit reference implementation used to validate the dilated one.
    fn encode_naive(key: VoxelKey) -> u64 {
        let mut code = 0u64;
        for i in 0..16 {
            code |= (((key.x >> i) & 1) as u64) << (3 * i);
            code |= (((key.y >> i) & 1) as u64) << (3 * i + 1);
            code |= (((key.z >> i) & 1) as u64) << (3 * i + 2);
        }
        code
    }

    #[test]
    fn paper_worked_example() {
        // Paper §4.3: voxel (1, 5, 3) has Morton code 167.
        assert_eq!(encode(VoxelKey::new(1, 5, 3)), 167);
    }

    #[test]
    fn origin_encodes_to_zero() {
        assert_eq!(encode(VoxelKey::new(0, 0, 0)), 0);
    }

    #[test]
    fn unit_axes() {
        assert_eq!(encode(VoxelKey::new(1, 0, 0)), 0b001);
        assert_eq!(encode(VoxelKey::new(0, 1, 0)), 0b010);
        assert_eq!(encode(VoxelKey::new(0, 0, 1)), 0b100);
    }

    #[test]
    fn max_key_uses_48_bits() {
        let code = encode(VoxelKey::new(u16::MAX, u16::MAX, u16::MAX));
        assert_eq!(code, (1u64 << 48) - 1);
    }

    #[test]
    fn dilate_contract_roundtrip_exhaustive_byte() {
        for v in 0..=u8::MAX as u16 {
            assert_eq!(contract(dilate(v)), v);
        }
    }

    #[test]
    fn siblings_are_consecutive_codes() {
        // The 8 children of one parent occupy 8 consecutive Morton codes.
        let base = VoxelKey::new(4, 6, 2); // even coordinates -> aligned parent
        let mut codes: Vec<u64> = (0..8)
            .map(|c| {
                let k = VoxelKey::new(
                    base.x | (c & 1),
                    base.y | ((c >> 1) & 1),
                    base.z | ((c >> 2) & 1),
                );
                encode(k)
            })
            .collect();
        codes.sort_unstable();
        for w in codes.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn sort_keys_is_ascending_by_code() {
        let mut keys = vec![
            VoxelKey::new(3, 3, 3),
            VoxelKey::new(0, 0, 0),
            VoxelKey::new(1, 5, 3),
            VoxelKey::new(2, 0, 1),
        ];
        sort_keys(&mut keys);
        let codes: Vec<u64> = keys.iter().map(|&k| encode(k)).collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sort_index_is_a_stable_morton_permutation() {
        let keys = vec![
            VoxelKey::new(3, 3, 3),
            VoxelKey::new(0, 0, 0),
            VoxelKey::new(3, 3, 3), // duplicate of index 0
            VoxelKey::new(2, 0, 1),
        ];
        let idx = sort_index(&keys);
        // A permutation of 0..len…
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // …visiting keys in ascending Morton order…
        let codes: Vec<u64> = idx.iter().map(|&i| encode(keys[i as usize])).collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
        // …with duplicates kept in input order (stability).
        let a = idx.iter().position(|&i| i == 0).unwrap();
        let b = idx.iter().position(|&i| i == 2).unwrap();
        assert!(a < b);
        assert!(sort_index(&[]).is_empty());
    }

    fn arb_key() -> impl Strategy<Value = VoxelKey> {
        (any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(x, y, z)| VoxelKey::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_encode_matches_naive(k in arb_key()) {
            prop_assert_eq!(encode(k), encode_naive(k));
        }

        #[test]
        fn prop_roundtrip(k in arb_key()) {
            prop_assert_eq!(decode(encode(k)), k);
        }

        #[test]
        fn prop_cmp_keys_matches_code_order(a in arb_key(), b in arb_key()) {
            prop_assert_eq!(cmp_keys(a, b), encode(a).cmp(&encode(b)));
        }

        #[test]
        fn prop_morton_locality_bound(a in arb_key(), b in arb_key()) {
            // Keys sharing an ancestor at level L differ by < 8^L in code.
            let level = a.common_ancestor_level(b, 16) as u32;
            let diff = encode(a).abs_diff(encode(b));
            prop_assert!(diff < 1u64 << (3 * level).min(63));
        }

        #[test]
        fn prop_code_prefix_is_ancestor(k in arb_key(), level in 0u8..16) {
            // Truncating 3*level low bits of the code corresponds to the
            // ancestor key at that level.
            let code = encode(k);
            let anc = k.ancestor_at(level);
            prop_assert_eq!(code >> (3 * level as u32), encode(anc) >> (3 * level as u32));
        }
    }
}
