use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a child voxel within its parent (0..8).
///
/// The encoding follows OctoMap: bit 0 is the X half, bit 1 the Y half and
/// bit 2 the Z half, so child `0b101` is the voxel in the upper-Z, lower-Y,
/// upper-X octant.
///
/// # Example
///
/// ```
/// # use octocache_geom::{ChildIndex, VoxelKey};
/// let key = VoxelKey::new(0b1, 0b0, 0b1);
/// // At the deepest level the child bits are the lowest key bits: x=1, z=1.
/// assert_eq!(key.child_index(0).as_usize(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChildIndex(u8);

impl ChildIndex {
    /// Creates a child index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[inline]
    pub fn new(i: u8) -> Self {
        assert!(i < 8, "child index {i} out of range 0..8");
        ChildIndex(i)
    }

    /// The index as a `usize`, suitable for indexing a `[T; 8]` child array.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all eight child indices in order.
    pub fn all() -> impl Iterator<Item = ChildIndex> {
        (0..8).map(ChildIndex)
    }
}

impl fmt::Display for ChildIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The discrete address of a voxel at the finest level of a 16-level octree.
///
/// Following OctoMap's convention, each component is an unsigned 16-bit
/// integer obtained by offsetting the signed voxel index with the tree's
/// half-range (`32768` for depth 16), so the world origin sits at key
/// `(32768, 32768, 32768)`. See [`VoxelGrid`](crate::VoxelGrid) for the
/// world-coordinate conversion.
///
/// Keys are `Ord` by (x, y, z) lexicographic order — the "XYZ order" baseline
/// evaluated in the paper's Figure 10. Morton (Z-)order is provided separately
/// by [`morton`](crate::morton).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct VoxelKey {
    /// Discrete X index.
    pub x: u16,
    /// Discrete Y index.
    pub y: u16,
    /// Discrete Z index.
    pub z: u16,
}

impl VoxelKey {
    /// Creates a key from its components.
    #[inline]
    pub const fn new(x: u16, y: u16, z: u16) -> Self {
        VoxelKey { x, y, z }
    }

    /// The key of the world origin for a tree of the given depth.
    #[inline]
    pub const fn origin(depth: u8) -> Self {
        let c = 1u16 << (depth - 1);
        VoxelKey { x: c, y: c, z: c }
    }

    /// Child index taken by this key when descending from tree level
    /// `bit + 1` to level `bit` (i.e. inspecting bit `bit` of each component).
    ///
    /// For a tree of depth `d`, descending from the root inspects bit `d - 1`
    /// first and bit `0` last.
    #[inline]
    pub fn child_index(self, bit: u8) -> ChildIndex {
        let b = ((self.x >> bit) & 1) | (((self.y >> bit) & 1) << 1) | (((self.z >> bit) & 1) << 2);
        ChildIndex(b as u8)
    }

    /// The key of this voxel's ancestor node at `level` levels above the
    /// leaves, with the low bits cleared. Level 0 returns the key itself.
    #[inline]
    pub fn ancestor_at(self, level: u8) -> VoxelKey {
        if level == 0 {
            return self;
        }
        if level >= 16 {
            return VoxelKey::new(0, 0, 0);
        }
        let mask = !0u16 << level;
        VoxelKey::new(self.x & mask, self.y & mask, self.z & mask)
    }

    /// Offsets the key by signed steps along each axis, saturating at the
    /// key-space boundary.
    #[inline]
    pub fn offset(self, dx: i32, dy: i32, dz: i32) -> VoxelKey {
        fn add(v: u16, d: i32) -> u16 {
            (v as i32 + d).clamp(0, u16::MAX as i32) as u16
        }
        VoxelKey::new(add(self.x, dx), add(self.y, dy), add(self.z, dz))
    }

    /// Chebyshev (L∞) distance between two keys, in voxels.
    #[inline]
    pub fn chebyshev_distance(self, other: VoxelKey) -> u16 {
        let dx = self.x.abs_diff(other.x);
        let dy = self.y.abs_diff(other.y);
        let dz = self.z.abs_diff(other.z);
        dx.max(dy).max(dz)
    }

    /// Manhattan (L1) distance between two keys, in voxels.
    #[inline]
    pub fn manhattan_distance(self, other: VoxelKey) -> u32 {
        self.x.abs_diff(other.x) as u32
            + self.y.abs_diff(other.y) as u32
            + self.z.abs_diff(other.z) as u32
    }

    /// The level of the closest common ancestor of `self` and `other` in a
    /// tree of depth `depth` (0 means the keys are equal at the leaf level;
    /// `depth` means they only share the root).
    ///
    /// This is the quantity behind the paper's tree distance `D(a, b)`:
    /// `D(a, b) = 2 * common_ancestor_level`.
    #[inline]
    pub fn common_ancestor_level(self, other: VoxelKey, depth: u8) -> u8 {
        let diff = (self.x ^ other.x) | (self.y ^ other.y) | (self.z ^ other.z);
        if diff == 0 {
            0
        } else {
            let highest = 15 - diff.leading_zeros() as u8;
            (highest + 1).min(depth)
        }
    }

    /// Tree ("shortest-path") distance between two leaves of a perfect tree
    /// of depth `depth`: twice the level of the closest common ancestor.
    ///
    /// This is `D(a, b)` from the paper's §4.3 locality functional 𝓕.
    #[inline]
    pub fn tree_distance(self, other: VoxelKey, depth: u8) -> u32 {
        2 * self.common_ancestor_level(other, depth) as u32
    }
}

impl fmt::Display for VoxelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}]", self.x, self.y, self.z)
    }
}

impl From<(u16, u16, u16)> for VoxelKey {
    #[inline]
    fn from(t: (u16, u16, u16)) -> Self {
        VoxelKey::new(t.0, t.1, t.2)
    }
}

impl From<VoxelKey> for (u16, u16, u16) {
    #[inline]
    fn from(k: VoxelKey) -> Self {
        (k.x, k.y, k.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn child_index_extracts_bits() {
        let k = VoxelKey::new(0b10, 0b01, 0b11);
        // bit 0: x=0, y=1, z=1 -> 0b110
        assert_eq!(k.child_index(0).as_usize(), 0b110);
        // bit 1: x=1, y=0, z=1 -> 0b101
        assert_eq!(k.child_index(1).as_usize(), 0b101);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn child_index_rejects_large() {
        ChildIndex::new(8);
    }

    #[test]
    fn child_index_all_covers_each_octant() {
        let v: Vec<usize> = ChildIndex::all().map(|c| c.as_usize()).collect();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn origin_is_half_range() {
        assert_eq!(VoxelKey::origin(16), VoxelKey::new(32768, 32768, 32768));
        assert_eq!(VoxelKey::origin(4), VoxelKey::new(8, 8, 8));
    }

    #[test]
    fn ancestor_clears_low_bits() {
        let k = VoxelKey::new(0b1011, 0b0110, 0b1111);
        assert_eq!(k.ancestor_at(0), k);
        assert_eq!(k.ancestor_at(2), VoxelKey::new(0b1000, 0b0100, 0b1100));
        assert_eq!(k.ancestor_at(16), VoxelKey::new(0, 0, 0));
    }

    #[test]
    fn offset_saturates() {
        let k = VoxelKey::new(0, 5, u16::MAX);
        let moved = k.offset(-3, 2, 10);
        assert_eq!(moved, VoxelKey::new(0, 7, u16::MAX));
    }

    #[test]
    fn distances() {
        let a = VoxelKey::new(0, 0, 0);
        let b = VoxelKey::new(3, 1, 2);
        assert_eq!(a.chebyshev_distance(b), 3);
        assert_eq!(a.manhattan_distance(b), 6);
        assert_eq!(b.chebyshev_distance(a), 3);
    }

    #[test]
    fn common_ancestor_level_cases() {
        let depth = 16;
        let a = VoxelKey::new(0b0000, 0, 0);
        assert_eq!(a.common_ancestor_level(a, depth), 0);
        // differ in bit 0 -> parent is one level up
        let b = VoxelKey::new(0b0001, 0, 0);
        assert_eq!(a.common_ancestor_level(b, depth), 1);
        // differ in bit 3 -> ancestor at level 4
        let c = VoxelKey::new(0b1000, 0, 0);
        assert_eq!(a.common_ancestor_level(c, depth), 4);
        // difference in y dominates
        let d = VoxelKey::new(0b0001, 0b100000, 0);
        assert_eq!(a.common_ancestor_level(d, depth), 6);
    }

    #[test]
    fn tree_distance_matches_paper_definition() {
        // Two siblings share a parent: distance 2 (one hop up, one down).
        let a = VoxelKey::new(0, 0, 0);
        let b = VoxelKey::new(1, 0, 0);
        assert_eq!(a.tree_distance(b, 16), 2);
        // Identical leaves: distance 0.
        assert_eq!(a.tree_distance(a, 16), 0);
    }

    #[test]
    fn common_ancestor_saturates_at_depth() {
        let a = VoxelKey::new(0, 0, 0);
        let b = VoxelKey::new(u16::MAX, 0, 0);
        // Highest differing bit is 15 -> level 16, capped at depth.
        assert_eq!(a.common_ancestor_level(b, 16), 16);
        assert_eq!(a.common_ancestor_level(b, 8), 8);
    }

    #[test]
    fn ordering_is_xyz_lexicographic() {
        let mut keys = vec![
            VoxelKey::new(2, 0, 0),
            VoxelKey::new(1, 9, 9),
            VoxelKey::new(1, 2, 5),
            VoxelKey::new(1, 2, 3),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                VoxelKey::new(1, 2, 3),
                VoxelKey::new(1, 2, 5),
                VoxelKey::new(1, 9, 9),
                VoxelKey::new(2, 0, 0),
            ]
        );
    }

    fn arb_key() -> impl Strategy<Value = VoxelKey> {
        (any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(x, y, z)| VoxelKey::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_common_ancestor_symmetric(a in arb_key(), b in arb_key()) {
            prop_assert_eq!(
                a.common_ancestor_level(b, 16),
                b.common_ancestor_level(a, 16)
            );
        }

        #[test]
        fn prop_tree_distance_triangle(a in arb_key(), b in arb_key(), c in arb_key()) {
            // Tree distance is a metric on leaves of the tree.
            let ab = a.tree_distance(b, 16);
            let bc = b.tree_distance(c, 16);
            let ac = a.tree_distance(c, 16);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_ancestor_at_is_prefix(k in arb_key(), level in 0u8..16) {
            let anc = k.ancestor_at(level);
            // The ancestor agrees with the key on all bits >= level.
            prop_assert_eq!(anc.x >> level, k.x >> level);
            prop_assert_eq!(anc.y >> level, k.y >> level);
            prop_assert_eq!(anc.z >> level, k.z >> level);
            // And is zero below.
            if level > 0 {
                let mask = (1u16 << level) - 1;
                prop_assert_eq!(anc.x & mask, 0);
            }
        }

        #[test]
        fn prop_child_indices_reconstruct_key(k in arb_key()) {
            let mut x = 0u16;
            let mut y = 0u16;
            let mut z = 0u16;
            for bit in (0..16u8).rev() {
                let c = k.child_index(bit).as_usize() as u16;
                x |= (c & 1) << bit;
                y |= ((c >> 1) & 1) << bit;
                z |= ((c >> 2) & 1) << bit;
            }
            prop_assert_eq!(VoxelKey::new(x, y, z), k);
        }
    }
}
