//! Voxel geometry foundation for the OctoCache reproduction.
//!
//! This crate provides the spatial primitives shared by the OctoMap baseline
//! (`octocache-octomap`), the OctoCache layer (`octocache`), the dataset
//! generators and the UAV simulator:
//!
//! * [`Point3`] — a 3D point/vector in metric world coordinates.
//! * [`VoxelKey`] — the discrete address of a voxel at the finest tree level,
//!   following OctoMap's convention of an unsigned key centered on the map
//!   origin.
//! * [`VoxelGrid`] — the world↔key mapping for a given mapping resolution and
//!   tree depth.
//! * [`morton`] — Morton (Z-order) encoding of voxel keys, the ordering at the
//!   heart of OctoCache's eviction policy (paper §4.3).
//! * [`ray`] — Amanatides–Woo 3D DDA traversal producing the voxel keys
//!   crossed by a sensor ray ("KeyRay"), i.e. OctoMap's ray tracing kernel.
//! * [`Aabb`] — axis-aligned boxes with ray intersection, used by the scene
//!   models in the dataset generators and the UAV simulator.
//!
//! # Example
//!
//! ```
//! # use octocache_geom::{Point3, VoxelGrid};
//! # fn main() -> Result<(), octocache_geom::GeomError> {
//! let grid = VoxelGrid::new(0.1, 16)?; // 10 cm voxels, 16-level tree
//! let key = grid.key_of(Point3::new(1.23, -0.4, 0.05))?;
//! let center = grid.center_of(key);
//! assert!((center.x - 1.25).abs() < 0.051);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aabb;
mod error;
mod grid;
mod key;
pub mod morton;
mod point;
pub mod ray;

pub use aabb::Aabb;
pub use error::GeomError;
pub use grid::VoxelGrid;
pub use key::{ChildIndex, VoxelKey};
pub use point::Point3;

/// Tree depth used by reference OctoMap and throughout the paper (16 levels
/// below the root, i.e. 2^16 voxels per axis).
pub const DEFAULT_TREE_DEPTH: u8 = 16;
