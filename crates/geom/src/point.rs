use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point (or vector) in 3D metric world coordinates.
///
/// `Point3` doubles as a vector type: differences of points are directions,
/// and the usual arithmetic operators are provided. All components are `f64`
/// because sensor poses and ray endpoints need the full precision before they
/// are discretised into [`VoxelKey`](crate::VoxelKey)s.
///
/// # Example
///
/// ```
/// # use octocache_geom::Point3;
/// let a = Point3::new(1.0, 2.0, 3.0);
/// let b = Point3::new(4.0, 6.0, 3.0);
/// assert_eq!((b - a).norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// X component (metres).
    pub x: f64,
    /// Y component (metres).
    pub y: f64,
    /// Z component (metres).
    pub z: f64,
}

impl Point3 {
    /// The origin / zero vector.
    pub const ZERO: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Creates a point with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Point3 { x: v, y: v, z: v }
    }

    /// Euclidean length of the vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Point3::norm`]).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point3) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (cheaper than
    /// [`Point3::distance`]; use for range comparisons).
    #[inline]
    pub fn distance_squared(self, other: Point3) -> f64 {
        (self - other).norm_squared()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Point3) -> Point3 {
        Point3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns `None` when the vector is (numerically) zero, rather than
    /// producing NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Point3> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point3, t: f64) -> Point3 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point3) -> Point3 {
        Point3 {
            x: self.x.min(other.x),
            y: self.y.min(other.y),
            z: self.z.min(other.z),
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point3) -> Point3 {
        Point3 {
            x: self.x.max(other.x),
            y: self.y.max(other.y),
            z: self.z.max(other.z),
        }
    }

    /// True when every component is finite (no NaN / ±inf).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    #[inline]
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Point3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Point3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, rhs: f64) -> Point3 {
        Point3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, rhs: f64) -> Point3 {
        Point3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

impl From<[f64; 3]> for Point3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Point3::new(a[0], a[1], a[2])
    }
}

impl From<Point3> for [f64; 3] {
    #[inline]
    fn from(p: Point3) -> Self {
        [p.x, p.y, p.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic_basics() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Point3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Point3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Point3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut a = Point3::new(1.0, 1.0, 1.0);
        a += Point3::splat(2.0);
        assert_eq!(a, Point3::splat(3.0));
        a -= Point3::splat(1.0);
        assert_eq!(a, Point3::splat(2.0));
    }

    #[test]
    fn norm_and_distance() {
        assert_eq!(Point3::new(3.0, 4.0, 0.0).norm(), 5.0);
        assert_eq!(Point3::ZERO.norm(), 0.0);
        assert_eq!(
            Point3::new(1.0, 0.0, 0.0).distance(Point3::new(4.0, 4.0, 0.0)),
            5.0
        );
    }

    #[test]
    fn dot_and_cross() {
        let x = Point3::new(1.0, 0.0, 0.0);
        let y = Point3::new(0.0, 1.0, 0.0);
        let z = Point3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Point3::ZERO.normalized().is_none());
        let n = Point3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point3::new(1.0, 5.0, -2.0);
        let b = Point3::new(3.0, 2.0, 0.0);
        assert_eq!(a.min(b), Point3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Point3::new(3.0, 5.0, 0.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Point3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn array_conversions_roundtrip() {
        let p = Point3::new(1.5, -2.5, 3.5);
        let a: [f64; 3] = p.into();
        assert_eq!(Point3::from(a), p);
    }

    #[test]
    fn display_format() {
        let s = Point3::new(1.0, 2.0, 3.0).to_string();
        assert_eq!(s, "(1.000, 2.000, 3.000)");
    }

    fn finite_pt() -> impl Strategy<Value = Point3> {
        (-1e3f64..1e3, -1e3f64..1e3, -1e3f64..1e3).prop_map(|(x, y, z)| Point3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in finite_pt(), b in finite_pt()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_sub_then_add_roundtrips(a in finite_pt(), b in finite_pt()) {
            let d = a - b;
            let back = b + d;
            prop_assert!((back - a).norm() < 1e-9);
        }

        #[test]
        fn prop_cross_orthogonal(a in finite_pt(), b in finite_pt()) {
            let c = a.cross(b);
            // |a·(a×b)| should be ~0 relative to the magnitudes involved.
            let scale = (a.norm() * a.norm() * b.norm()).max(1.0);
            prop_assert!(a.dot(c).abs() / scale < 1e-9);
            prop_assert!(b.dot(c).abs() / scale < 1e-9);
        }

        #[test]
        fn prop_triangle_inequality(a in finite_pt(), b in finite_pt()) {
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }

        #[test]
        fn prop_normalized_is_unit(a in finite_pt()) {
            if let Some(n) = a.normalized() {
                prop_assert!((n.norm() - 1.0).abs() < 1e-9);
            }
        }
    }
}
