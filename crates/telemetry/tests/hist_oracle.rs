//! Property test: histogram quantiles against a sorted-vector oracle.
//!
//! The log-bucketed [`Histogram`] promises that `quantile(q)` is an upper
//! bound on the exact rank-`ceil(q·n)` sample, within one sub-bucket
//! (≤ 6.25 % relative error), and never above the exact maximum.

use octocache_telemetry::Histogram;
use proptest::collection;
use proptest::prelude::*;

/// The exact quantile the histogram approximates: the sample of rank
/// `ceil(q · n)` (1-based) in sorted order.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn quantiles_bound_the_oracle(
        values in collection::vec(0u64..2_000_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        let exact = oracle_quantile(&sorted, q);
        let approx = hist.quantile(q);
        // Lower bound: never under-reports the exact quantile.
        prop_assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
        // Upper bound: within one log-linear bucket (6.25 %) of the exact
        // value, and never above the true maximum.
        let slack = exact / 16 + 1;
        prop_assert!(
            approx <= exact.saturating_add(slack),
            "q={q}: approx {approx} > exact {exact} + {slack}"
        );
        prop_assert!(approx <= *sorted.last().unwrap());
    }

    #[test]
    fn count_sum_max_are_exact(values in collection::vec(0u64..1_000_000, 0..200)) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(hist.max(), values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn merge_matches_single_histogram(
        a in collection::vec(0u64..1_000_000_000, 0..150),
        b in collection::vec(0u64..1_000_000_000, 0..150),
    ) {
        let mut ha = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.sum(), hall.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hall.quantile(q));
        }
    }

    #[test]
    fn serde_round_trip(values in collection::vec(0u64..u64::MAX, 0..100)) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let json = serde::json::to_string(&hist);
        let back: Histogram = serde::json::from_str(&json).unwrap();
        prop_assert_eq!(back.count(), hist.count());
        prop_assert_eq!(back.sum(), hist.sum());
        prop_assert_eq!(back.max(), hist.max());
        prop_assert_eq!(back.p99(), hist.p99());
    }
}
