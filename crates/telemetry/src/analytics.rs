//! Analytics over a recorded [`Event`](crate::Event) stream.
//!
//! [`EventAnalytics::from_events`] folds a raw sub-scan event stream into
//! the locality evidence the paper argues from (§3–§4):
//!
//! * **Reuse-distance histogram** — for each cache access, the number of
//!   *distinct* voxels touched since the previous access to the same voxel
//!   (exact, computed with a Fenwick tree in `O(n log n)`); first-touch
//!   accesses are counted separately as *cold*. Small distances are what
//!   make a τ-cell bucket cache effective.
//! * **Cache residency** — for each evicted cell, the number of scans
//!   between its insertion and its eviction, plus the hits it absorbed
//!   while resident (the paper's duplication argument, measured).
//! * **Per-octant hit ratios** — accesses bucketed by top-level octant of
//!   the *observed* key space (depth inferred from the largest Morton code
//!   in the stream), showing which spatial regions drive the hit ratio.
//! * **Bucket heatmap** — per-bucket access/hit/eviction counts, i.e. the
//!   occupancy/conflict picture of the `w × τ` cache itself.
//! * **Worker timelines** — batch spans, queue traffic and stall time per
//!   thread lane (also the input to [`crate::chrome_trace_json`]).

use std::collections::HashMap;

use crate::event::{Event, EventKind};
use crate::hist::Histogram;

/// A matched `BatchBegin`/`BatchEnd` pair on one worker lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpan {
    /// Span start, nanoseconds since the run epoch.
    pub begin_ns: u64,
    /// Span end, nanoseconds since the run epoch.
    pub end_ns: u64,
    /// Scan index the batch belongs to.
    pub scan: u64,
    /// Cells the batch applied (taken from the `BatchEnd` payload).
    pub cells: u64,
}

impl BatchSpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

/// Everything one thread lane did: spans, queue traffic, stalls.
#[derive(Debug, Clone, Default)]
pub struct WorkerTimeline {
    /// Thread lane (0 = producer / serial thread, workers are 1-based).
    pub worker: u32,
    /// Completed batch spans in time order.
    pub spans: Vec<BatchSpan>,
    /// `BatchBegin` events with no matching `BatchEnd` (crash/partial
    /// batches — nonzero only on faulted runs).
    pub unmatched_begins: u64,
    /// Chunks enqueued *to* this lane.
    pub enqueues: u64,
    /// Chunks dequeued by this lane.
    pub dequeues: u64,
    /// Stall events observed on this lane.
    pub stalls: u64,
    /// Total nanoseconds spent stalled.
    pub stall_ns: u64,
    /// Largest queue depth observed at enqueue or dequeue.
    pub max_queue_depth: u64,
}

impl WorkerTimeline {
    /// Total nanoseconds inside batch spans.
    pub fn busy_ns(&self) -> u64 {
        self.spans.iter().map(BatchSpan::duration_ns).sum()
    }
}

/// Access/hit/eviction counts of one top-level octant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OctantStats {
    /// Cache accesses whose key falls in this octant.
    pub accesses: u64,
    /// Accesses absorbed by a resident cell.
    pub hits: u64,
    /// Cells evicted out of this octant.
    pub evictions: u64,
}

impl OctantStats {
    /// Hit ratio of this octant (0 when it saw no accesses).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Per-bucket counters for the occupancy/conflict heatmap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BucketStats {
    /// Bucket index in the cache.
    pub bucket: u32,
    /// Cache accesses that indexed this bucket.
    pub accesses: u64,
    /// Accesses absorbed by a cell already in this bucket.
    pub hits: u64,
    /// τ-evictions this bucket triggered.
    pub evictions: u64,
}

/// Fenwick (binary indexed) tree over access positions; `O(log n)` prefix
/// sums give exact reuse distances.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// The folded analytics of one event stream.
#[derive(Debug, Default)]
pub struct EventAnalytics {
    /// Total cache accesses (`CacheHit` + `CacheMiss`).
    pub accesses: u64,
    /// Accesses absorbed by the cache.
    pub hits: u64,
    /// Accesses that allocated a new cell.
    pub misses: u64,
    /// Cells evicted to the octree.
    pub evictions: u64,
    /// First-touch accesses (infinite reuse distance, excluded from the
    /// reuse histogram).
    pub cold_accesses: u64,
    /// Exact reuse distances (distinct voxels between successive accesses
    /// to the same voxel).
    pub reuse: Histogram,
    /// Scans between a cell's insertion and its eviction.
    pub residency_scans: Histogram,
    /// Hits a cell absorbed while resident (sampled at eviction).
    pub hits_at_eviction: Histogram,
    /// Cells still resident when the stream ended (inserted, never
    /// evicted).
    pub still_resident: u64,
    /// Tree depth inferred from the largest Morton code in the stream
    /// (levels needed to contain the observed key space).
    pub inferred_depth: u8,
    /// Top-level octant statistics, indexed by the 3-bit octant.
    pub octants: [OctantStats; 8],
    /// Bucket heatmap, sorted by descending access count.
    pub buckets: Vec<BucketStats>,
    /// Per-lane timelines, sorted by lane id.
    pub workers: Vec<WorkerTimeline>,
    /// Total scans spanned by the stream (max scan index + 1).
    pub scans: u64,
}

impl EventAnalytics {
    /// Folds a raw event stream into analytics. Events are processed in
    /// stream order for cache semantics (the cache is accessed by one
    /// thread, so stream order is access order) and per-lane order for
    /// span matching.
    pub fn from_events(events: &[Event]) -> Self {
        let mut a = EventAnalytics::default();
        if events.is_empty() {
            return a;
        }

        a.scans = events.iter().map(|e| e.scan).max().unwrap_or(0) + 1;
        a.inferred_depth = infer_depth(events);
        let octant_shift = 3 * (a.inferred_depth.saturating_sub(1)) as u32;

        // -- Cache-side passes (reuse, residency, octants, buckets) --
        let cache_accesses = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CacheHit | EventKind::CacheMiss))
            .count();
        let mut fenwick = Fenwick::new(cache_accesses);
        let mut last_pos: HashMap<u64, usize> = HashMap::new();
        let mut inserted_at: HashMap<u64, u64> = HashMap::new();
        let mut buckets: HashMap<u32, BucketStats> = HashMap::new();
        let mut pos = 0usize;

        for e in events {
            match e.kind {
                EventKind::CacheHit | EventKind::CacheMiss => {
                    a.accesses += 1;
                    let hit = e.kind == EventKind::CacheHit;
                    if hit {
                        a.hits += 1;
                    } else {
                        a.misses += 1;
                        inserted_at.insert(e.key, e.scan);
                    }
                    let oct = ((e.key >> octant_shift) & 7) as usize;
                    a.octants[oct].accesses += 1;
                    if hit {
                        a.octants[oct].hits += 1;
                    }
                    let b = buckets.entry(e.bucket).or_insert(BucketStats {
                        bucket: e.bucket,
                        ..Default::default()
                    });
                    b.accesses += 1;
                    if hit {
                        b.hits += 1;
                    }
                    // Exact reuse distance: distinct keys accessed strictly
                    // between the previous access to this key and now.
                    match last_pos.insert(e.key, pos) {
                        Some(prev) => {
                            let between = if pos == 0 {
                                0
                            } else {
                                fenwick.prefix(pos - 1) - fenwick.prefix(prev)
                            };
                            a.reuse.record(between);
                            fenwick.add(prev, -1);
                        }
                        None => a.cold_accesses += 1,
                    }
                    fenwick.add(pos, 1);
                    pos += 1;
                }
                EventKind::CacheEvict => {
                    a.evictions += 1;
                    let oct = ((e.key >> octant_shift) & 7) as usize;
                    a.octants[oct].evictions += 1;
                    buckets
                        .entry(e.bucket)
                        .or_insert(BucketStats {
                            bucket: e.bucket,
                            ..Default::default()
                        })
                        .evictions += 1;
                    a.hits_at_eviction.record(e.hits as u64);
                    // Residency: prefer the live insert-scan map; fall back
                    // to the payload the cache stamped on the event.
                    let born = inserted_at.remove(&e.key).unwrap_or(e.value);
                    a.residency_scans.record(e.scan.saturating_sub(born));
                }
                _ => {}
            }
        }
        a.still_resident = inserted_at.len() as u64;

        a.buckets = buckets.into_values().collect();
        a.buckets
            .sort_by(|x, y| y.accesses.cmp(&x.accesses).then(x.bucket.cmp(&y.bucket)));

        // -- Per-lane timelines --
        let mut lanes: HashMap<u32, WorkerTimeline> = HashMap::new();
        let mut open: HashMap<u32, (u64, u64)> = HashMap::new(); // lane -> (begin_ns, scan)
        for e in events {
            let lane = lanes.entry(e.worker).or_insert_with(|| WorkerTimeline {
                worker: e.worker,
                ..Default::default()
            });
            match e.kind {
                EventKind::QueueEnqueue => {
                    lane.enqueues += 1;
                    lane.max_queue_depth = lane.max_queue_depth.max(e.value);
                }
                EventKind::QueueDequeue => {
                    lane.dequeues += 1;
                    lane.max_queue_depth = lane.max_queue_depth.max(e.value);
                }
                EventKind::QueueStall => {
                    lane.stalls += 1;
                    lane.stall_ns += e.value;
                }
                EventKind::BatchBegin if open.insert(e.worker, (e.t_ns, e.scan)).is_some() => {
                    lane.unmatched_begins += 1;
                }
                EventKind::BatchBegin => {}
                EventKind::BatchEnd => {
                    if let Some((begin_ns, scan)) = open.remove(&e.worker) {
                        lane.spans.push(BatchSpan {
                            begin_ns,
                            end_ns: e.t_ns.max(begin_ns),
                            scan,
                            cells: e.value,
                        });
                    }
                }
                _ => {}
            }
        }
        for (worker, _) in open {
            if let Some(lane) = lanes.get_mut(&worker) {
                lane.unmatched_begins += 1;
            }
        }
        a.workers = lanes.into_values().collect();
        a.workers.sort_by_key(|w| w.worker);
        for w in &mut a.workers {
            w.spans.sort_by_key(|s| s.begin_ns);
        }
        a
    }

    /// Overall hit ratio of the stream.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Renders the analytics as the human tables `octocache analyze`
    /// prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "event analytics");
        let _ = writeln!(
            out,
            "  scans {}  accesses {}  hits {}  misses {}  evictions {}  hit-ratio {:.4}",
            self.scans,
            self.accesses,
            self.hits,
            self.misses,
            self.evictions,
            self.hit_ratio()
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "reuse distance (distinct voxels between accesses; {} cold first-touches)",
            self.cold_accesses
        );
        if self.reuse.is_empty() {
            let _ = writeln!(out, "  (no repeated accesses)");
        } else {
            let _ = writeln!(
                out,
                "  {:>10} {:>10} {:>10} {:>10} {:>10}",
                "count", "p50", "p90", "p99", "max"
            );
            let _ = writeln!(
                out,
                "  {:>10} {:>10} {:>10} {:>10} {:>10}",
                self.reuse.count(),
                self.reuse.p50(),
                self.reuse.p90(),
                self.reuse.p99(),
                self.reuse.max()
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "cache residency (scans resident before eviction; {} never evicted)",
            self.still_resident
        );
        if self.residency_scans.is_empty() {
            let _ = writeln!(out, "  (no evictions)");
        } else {
            let _ = writeln!(
                out,
                "  scans resident : p50 {:>6}  p90 {:>6}  p99 {:>6}  max {:>6}",
                self.residency_scans.p50(),
                self.residency_scans.p90(),
                self.residency_scans.p99(),
                self.residency_scans.max()
            );
            let _ = writeln!(
                out,
                "  hits@eviction  : p50 {:>6}  p90 {:>6}  p99 {:>6}  max {:>6}  mean {:.2}",
                self.hits_at_eviction.p50(),
                self.hits_at_eviction.p90(),
                self.hits_at_eviction.p99(),
                self.hits_at_eviction.max(),
                self.hits_at_eviction.mean()
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "per-octant hit ratio (top level of observed key space, depth {})",
            self.inferred_depth
        );
        let _ = writeln!(
            out,
            "  {:>6} {:>12} {:>12} {:>12} {:>9}",
            "octant", "accesses", "hits", "evictions", "hit-ratio"
        );
        for (i, o) in self.octants.iter().enumerate() {
            if o.accesses == 0 && o.evictions == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:>6} {:>12} {:>12} {:>12} {:>9.4}",
                i,
                o.accesses,
                o.hits,
                o.evictions,
                o.hit_ratio()
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "bucket heatmap ({} buckets touched; top {} by accesses)",
            self.buckets.len(),
            self.buckets.len().min(10)
        );
        let _ = writeln!(
            out,
            "  {:>8} {:>12} {:>12} {:>12}",
            "bucket", "accesses", "hits", "evictions"
        );
        for b in self.buckets.iter().take(10) {
            let _ = writeln!(
                out,
                "  {:>8} {:>12} {:>12} {:>12}",
                b.bucket, b.accesses, b.hits, b.evictions
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "worker timelines");
        let _ = writeln!(
            out,
            "  {:>5} {:>8} {:>12} {:>10} {:>10} {:>8} {:>12} {:>10}",
            "lane", "spans", "busy-ms", "enqueues", "dequeues", "stalls", "stall-ms", "max-depth"
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "  {:>5} {:>8} {:>12.3} {:>10} {:>10} {:>8} {:>12.3} {:>10}",
                w.worker,
                w.spans.len(),
                w.busy_ns() as f64 / 1e6,
                w.enqueues,
                w.dequeues,
                w.stalls,
                w.stall_ns as f64 / 1e6,
                w.max_queue_depth
            );
        }
        out
    }
}

/// Depth (levels) needed to contain every Morton code in the stream.
fn infer_depth(events: &[Event]) -> u8 {
    let max_key = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::CacheHit | EventKind::CacheMiss | EventKind::CacheEvict
            )
        })
        .map(|e| e.key)
        .max()
        .unwrap_or(0);
    if max_key == 0 {
        return 1;
    }
    let bits = 64 - max_key.leading_zeros();
    (bits.div_ceil(3) as u8).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_event(kind: EventKind, key: u64, bucket: u32, scan: u64) -> Event {
        Event {
            t_ns: 0,
            scan,
            worker: 0,
            kind,
            key,
            bucket,
            hits: 0,
            value: 0,
        }
    }

    #[test]
    fn reuse_distance_is_exact() {
        // Access pattern: A B C A  -> reuse(A) = 2 distinct (B, C).
        //                 then B   -> reuse(B) = 2 distinct (C, A).
        //                 then A   -> reuse(A) = 1 distinct (B).
        let keys = [10u64, 20, 30, 10, 20, 10];
        let events: Vec<Event> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let kind = if keys[..i].contains(&k) {
                    EventKind::CacheHit
                } else {
                    EventKind::CacheMiss
                };
                cache_event(kind, k, 0, 0)
            })
            .collect();
        let a = EventAnalytics::from_events(&events);
        assert_eq!(a.cold_accesses, 3);
        assert_eq!(a.reuse.count(), 3);
        // Log-bucketed: distances 2, 2, 1 -> max bucket holds 2.
        assert_eq!(a.reuse.max(), 2);
        assert_eq!(a.reuse.quantile(0.0), 1);
        assert_eq!(a.accesses, 6);
        assert_eq!(a.hits, 3);
        assert_eq!(a.misses, 3);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let events = vec![
            cache_event(EventKind::CacheMiss, 5, 0, 0),
            cache_event(EventKind::CacheHit, 5, 0, 0),
        ];
        let a = EventAnalytics::from_events(&events);
        assert_eq!(a.reuse.count(), 1);
        assert_eq!(a.reuse.max(), 0);
    }

    #[test]
    fn residency_spans_insert_to_evict() {
        let mut events = vec![cache_event(EventKind::CacheMiss, 9, 3, 2)];
        let mut evict = cache_event(EventKind::CacheEvict, 9, 3, 7);
        evict.hits = 4;
        events.push(evict);
        let a = EventAnalytics::from_events(&events);
        assert_eq!(a.evictions, 1);
        assert_eq!(a.residency_scans.count(), 1);
        assert_eq!(a.residency_scans.max(), 5);
        assert_eq!(a.hits_at_eviction.max(), 4);
        assert_eq!(a.still_resident, 0);
    }

    #[test]
    fn octant_split_uses_top_morton_bits() {
        // Depth-2 key space: codes 0..64. Octant = bits 3..6.
        let events = vec![
            cache_event(EventKind::CacheMiss, 0b000_001, 0, 0), // octant 0
            cache_event(EventKind::CacheHit, 0b000_001, 0, 0),  // octant 0
            cache_event(EventKind::CacheMiss, 0b101_000, 0, 0), // octant 5
        ];
        let a = EventAnalytics::from_events(&events);
        assert_eq!(a.inferred_depth, 2);
        assert_eq!(a.octants[0].accesses, 2);
        assert_eq!(a.octants[0].hits, 1);
        assert_eq!(a.octants[5].accesses, 1);
        assert_eq!(a.octants[5].hits, 0);
    }

    #[test]
    fn spans_pair_per_lane() {
        let mk = |t_ns, worker, kind, value| Event {
            t_ns,
            scan: 1,
            worker,
            kind,
            key: 0,
            bucket: 0,
            hits: 0,
            value,
        };
        let events = vec![
            mk(10, 1, EventKind::BatchBegin, 0),
            mk(15, 2, EventKind::BatchBegin, 0),
            mk(30, 1, EventKind::BatchEnd, 100),
            mk(40, 2, EventKind::BatchEnd, 50),
            mk(50, 2, EventKind::BatchBegin, 0), // never ends
            mk(60, 1, EventKind::QueueStall, 500),
            mk(5, 0, EventKind::QueueEnqueue, 3),
        ];
        let a = EventAnalytics::from_events(&events);
        assert_eq!(a.workers.len(), 3);
        let w1 = &a.workers[1];
        assert_eq!(w1.worker, 1);
        assert_eq!(w1.spans.len(), 1);
        assert_eq!(w1.spans[0].duration_ns(), 20);
        assert_eq!(w1.stalls, 1);
        assert_eq!(w1.stall_ns, 500);
        let w2 = &a.workers[2];
        assert_eq!(w2.spans.len(), 1);
        assert_eq!(w2.unmatched_begins, 1);
        assert_eq!(a.workers[0].enqueues, 1);
        assert_eq!(a.workers[0].max_queue_depth, 3);
    }

    #[test]
    fn bucket_heatmap_sorted_by_accesses() {
        let events = vec![
            cache_event(EventKind::CacheMiss, 1, 7, 0),
            cache_event(EventKind::CacheMiss, 2, 3, 0),
            cache_event(EventKind::CacheHit, 2, 3, 0),
            cache_event(EventKind::CacheEvict, 2, 3, 1),
        ];
        let a = EventAnalytics::from_events(&events);
        assert_eq!(a.buckets[0].bucket, 3);
        assert_eq!(a.buckets[0].accesses, 2);
        assert_eq!(a.buckets[0].evictions, 1);
        assert_eq!(a.buckets[1].bucket, 7);
    }

    #[test]
    fn render_mentions_all_sections() {
        let events = vec![
            cache_event(EventKind::CacheMiss, 1, 0, 0),
            cache_event(EventKind::CacheHit, 1, 0, 1),
        ];
        let text = EventAnalytics::from_events(&events).render();
        assert!(text.contains("reuse distance"));
        assert!(text.contains("cache residency"));
        assert!(text.contains("per-octant hit ratio"));
        assert!(text.contains("bucket heatmap"));
        assert!(text.contains("worker timelines"));
    }

    #[test]
    fn empty_stream_is_benign() {
        let a = EventAnalytics::from_events(&[]);
        assert_eq!(a.accesses, 0);
        assert_eq!(a.hit_ratio(), 0.0);
        assert!(!a.render().is_empty());
    }
}
