//! The per-scan trace event emitted by every mapping backend.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::phase::PhaseTimes;

/// Everything one `insert_scan` call did, in one flat event.
///
/// Every backend emits the same schema; fields that do not apply to a
/// backend stay zero (e.g. queue depths on the serial backend). A recorded
/// run is a JSONL stream of these, one per line — see
/// [`crate::write_jsonl`] / [`crate::read_jsonl`] and [`crate::TraceSummary`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScanRecord {
    /// Scan index within the run (0-based, assigned by
    /// [`crate::Telemetry`]).
    pub seq: u64,
    /// Backend name (e.g. `octocache-serial`), assigned by
    /// [`crate::Telemetry`].
    pub backend: String,
    /// Per-phase wall-clock durations of this scan.
    pub times: PhaseTimes,
    /// Voxel observations produced by ray tracing this scan.
    pub observations: u64,
    /// Observations absorbed by the cache (hits).
    pub cache_hits: u64,
    /// Cache misses (entry allocated / octree fall-through).
    pub cache_misses: u64,
    /// Cache insertions performed.
    pub cache_insertions: u64,
    /// Cells evicted from the cache to the octree this scan.
    pub cache_evictions: u64,
    /// Octree nodes visited (descents) this scan.
    pub octree_node_visits: u64,
    /// Octree leaf log-odds updates this scan.
    pub octree_leaf_updates: u64,
    /// Octree nodes created this scan.
    pub octree_nodes_created: u64,
    /// Bytes resident in the backend's octree storage after this scan
    /// (summed across shards on the sharded/parallel backends). O(1) to
    /// sample: every layout maintains its allocation counters
    /// incrementally.
    pub memory_bytes: u64,
    /// Octree storage layout the backend runs on (`"pointer"` or
    /// `"arena"`; empty on records from before this field existed).
    pub tree_layout: String,
    /// SPSC queue depth sampled right after this scan's enqueue
    /// (parallel backend only).
    pub queue_depth_enqueue: u64,
    /// SPSC queue depth sampled by the worker at the first dequeue of this
    /// scan's batch (parallel backend only).
    pub queue_depth_dequeue: u64,
    /// Time thread 1 spent blocked acquiring the octree mutex this scan
    /// (parallel backend only; the serial backends have no mutex).
    pub mutex_wait: Duration,
    /// Largest producer-side queue depth seen per worker while enqueueing
    /// this scan's batch (N-worker parallel backend; empty elsewhere).
    pub worker_queue_depths: Vec<u64>,
    /// Voxel updates routed to each octant shard this scan (octant-sharded
    /// and N-worker parallel backends; empty elsewhere).
    pub shard_batch_sizes: Vec<u64>,
    /// Load skew of `shard_batch_sizes`: busiest shard over the fair share,
    /// `1.0` for a balanced (or empty) batch.
    pub shard_skew: f64,
    /// Per-worker busy time (dequeue + octree update) attributed to this
    /// scan, in nanoseconds (N-worker parallel backend; empty elsewhere).
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker idle time attributed to this scan, in nanoseconds
    /// (N-worker parallel backend; empty elsewhere).
    pub worker_idle_ns: Vec<u64>,
    /// Worker threads observed dead by panic during this scan (parallel
    /// backend; fault counters are deltas, zero on healthy scans).
    pub worker_panics: u64,
    /// Worker threads that failed to spawn (reported on the first scan).
    pub spawn_failures: u64,
    /// Bounded waits that expired into `QueueStalled` during this scan.
    pub stall_timeouts: u64,
    /// Batches a worker abandoned midway during this scan.
    pub partial_batches: u64,
    /// Batch shares applied inline on the producer because their worker was
    /// out of rotation.
    pub batches_rerouted: u64,
    /// True once the backend has left the intact state (any fault so far —
    /// sticky, unlike the per-scan counters above).
    pub degraded: bool,
    /// Dead workers respawned by the supervisor during this scan (delta).
    pub restarts: u64,
    /// Integrity transitions back to intact during this scan (delta).
    pub heals: u64,
    /// Time the supervisor spent respawning workers before this scan, in
    /// nanoseconds (backoff sleeps + thread spawn).
    pub restart_ns: u64,
    /// Scans shed by the admission gate or memory governor since the
    /// previous applied scan (shed scans get no record of their own; the
    /// next applied scan carries the count).
    pub sheds: u64,
    /// The memory governor's pressure rung after this scan (`"normal"`,
    /// `"elevated"`, `"critical"`, `"over-budget"`; empty when no memory
    /// budget is configured).
    pub pressure_level: String,
    /// Time to build and publish this scan's read snapshot, in nanoseconds
    /// (0 when no query handle is armed on the backend).
    pub snapshot_publish_ns: u64,
    /// Age of the snapshot this scan's publication replaced, in
    /// nanoseconds — the staleness concurrent readers had been accepting.
    pub snapshot_age_ns: u64,
    /// Snapshot batch-query lookups served by readers since the previous
    /// scan.
    pub batch_queries: u64,
    /// Octree nodes those batched lookups actually descended through.
    pub batch_nodes_visited: u64,
    /// Root-to-leaf path nodes Morton-adjacent batched lookups reused
    /// instead of re-descending (the read-path locality win).
    pub batch_nodes_reused: u64,
    /// Time spent journaling this scan before applying it, in nanoseconds
    /// (0 when the backend runs without a durability layer).
    pub journal_append_ns: u64,
    /// Time spent writing the periodic checkpoint that preceded this scan,
    /// in nanoseconds (0 on scans that triggered no checkpoint).
    pub checkpoint_write_ns: u64,
    /// Scan epoch of the newest durable checkpoint when this scan was
    /// journaled (0 when none or no durability layer).
    pub checkpoint_epoch: u64,
}

impl ScanRecord {
    /// Cache hit ratio of this scan (0 when it saw no observations).
    pub fn hit_ratio(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.observations as f64
        }
    }

    /// Assembles the full per-scan record from the three metric groups the
    /// scan lifecycle produces: what the executor measured while running
    /// the scan, what the snapshot republish cost, and what the durability
    /// layer (if any) stamped for it.
    ///
    /// This is the **only** sanctioned way for a mapping backend to build a
    /// [`ScanRecord`] — backends report [`ScanMetrics`] and the engine fills
    /// in the rest, so the schema can grow without touching every backend.
    /// `seq` and `backend` stay at their defaults; [`crate::Telemetry`]
    /// stamps them on `record()`.
    pub fn assemble(
        scan: ScanMetrics,
        snapshot: SnapshotMetrics,
        durable: DurableMetrics,
    ) -> ScanRecord {
        ScanRecord {
            seq: 0,
            backend: String::new(),
            times: scan.times,
            observations: scan.observations,
            cache_hits: scan.cache_hits,
            cache_misses: scan.cache_misses,
            cache_insertions: scan.cache_insertions,
            cache_evictions: scan.cache_evictions,
            octree_node_visits: scan.octree_node_visits,
            octree_leaf_updates: scan.octree_leaf_updates,
            octree_nodes_created: scan.octree_nodes_created,
            memory_bytes: scan.memory_bytes,
            tree_layout: scan.tree_layout,
            queue_depth_enqueue: scan.queue_depth_enqueue,
            queue_depth_dequeue: scan.queue_depth_dequeue,
            mutex_wait: scan.mutex_wait,
            worker_queue_depths: scan.worker_queue_depths,
            shard_batch_sizes: scan.shard_batch_sizes,
            shard_skew: scan.shard_skew,
            worker_busy_ns: scan.worker_busy_ns,
            worker_idle_ns: scan.worker_idle_ns,
            worker_panics: scan.worker_panics,
            spawn_failures: scan.spawn_failures,
            stall_timeouts: scan.stall_timeouts,
            partial_batches: scan.partial_batches,
            batches_rerouted: scan.batches_rerouted,
            degraded: scan.degraded,
            restarts: scan.restarts,
            heals: scan.heals,
            restart_ns: scan.restart_ns,
            sheds: scan.sheds,
            pressure_level: scan.pressure_level,
            snapshot_publish_ns: snapshot.snapshot_publish_ns,
            snapshot_age_ns: snapshot.snapshot_age_ns,
            batch_queries: snapshot.batch_queries,
            batch_nodes_visited: snapshot.batch_nodes_visited,
            batch_nodes_reused: snapshot.batch_nodes_reused,
            journal_append_ns: durable.journal_append_ns,
            checkpoint_write_ns: durable.checkpoint_write_ns,
            checkpoint_epoch: durable.checkpoint_epoch,
        }
    }
}

/// What a scan executor measured while running one scan: the phase
/// timings plus every counter the execution strategy itself owns.
///
/// Field semantics mirror the identically named [`ScanRecord`] fields.
/// Fields that do not apply to an execution strategy stay at their
/// defaults — the serial backends leave the queue/worker group empty, the
/// cache-less baselines leave the cache group zero. The snapshot and
/// durability groups are deliberately *absent*: those belong to the engine
/// ([`SnapshotMetrics`], [`DurableMetrics`]), not to executors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanMetrics {
    /// Per-phase wall-clock durations of this scan.
    pub times: PhaseTimes,
    /// Voxel observations produced by ray tracing this scan.
    pub observations: u64,
    /// Observations absorbed by the cache (hits).
    pub cache_hits: u64,
    /// Cache misses (entry allocated / octree fall-through).
    pub cache_misses: u64,
    /// Cache insertions performed.
    pub cache_insertions: u64,
    /// Cells evicted from the cache to the octree this scan.
    pub cache_evictions: u64,
    /// Octree nodes visited (descents) this scan.
    pub octree_node_visits: u64,
    /// Octree leaf log-odds updates this scan.
    pub octree_leaf_updates: u64,
    /// Octree nodes created this scan.
    pub octree_nodes_created: u64,
    /// Bytes resident in the backend's octree storage after this scan.
    pub memory_bytes: u64,
    /// Octree storage layout the backend runs on.
    pub tree_layout: String,
    /// SPSC queue depth sampled right after this scan's enqueue.
    pub queue_depth_enqueue: u64,
    /// SPSC queue depth sampled by the worker at the first dequeue.
    pub queue_depth_dequeue: u64,
    /// Time spent blocked acquiring the octree mutex this scan.
    pub mutex_wait: Duration,
    /// Largest producer-side queue depth seen per worker this scan.
    pub worker_queue_depths: Vec<u64>,
    /// Voxel updates routed to each octant shard this scan.
    pub shard_batch_sizes: Vec<u64>,
    /// Load skew of `shard_batch_sizes`.
    pub shard_skew: f64,
    /// Per-worker busy nanoseconds attributed to this scan.
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker idle nanoseconds attributed to this scan.
    pub worker_idle_ns: Vec<u64>,
    /// Worker threads observed dead by panic during this scan.
    pub worker_panics: u64,
    /// Worker threads that failed to spawn (reported on the first scan).
    pub spawn_failures: u64,
    /// Bounded waits that expired into a stall fault during this scan.
    pub stall_timeouts: u64,
    /// Batches a worker abandoned midway during this scan.
    pub partial_batches: u64,
    /// Batch shares applied inline because their worker was out of
    /// rotation.
    pub batches_rerouted: u64,
    /// True once the backend has left the intact state.
    pub degraded: bool,
    /// Dead workers respawned by the supervisor during this scan (delta).
    pub restarts: u64,
    /// Integrity transitions back to intact during this scan (delta).
    pub heals: u64,
    /// Nanoseconds spent respawning workers before this scan.
    pub restart_ns: u64,
    /// Scans shed since the previous applied scan (stamped by the engine;
    /// executors leave it zero).
    pub sheds: u64,
    /// Pressure rung after this scan (stamped by the engine; executors
    /// leave it empty).
    pub pressure_level: String,
}

/// What one snapshot republish cost, measured by the engine around the
/// executor: publish latency, the staleness of the snapshot replaced, and
/// the reader-side batch-query counters drained at the publish boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotMetrics {
    /// Time to build and publish this scan's read snapshot, in nanoseconds.
    pub snapshot_publish_ns: u64,
    /// Age of the snapshot this publication replaced, in nanoseconds.
    pub snapshot_age_ns: u64,
    /// Snapshot batch-query lookups served by readers since the previous
    /// scan.
    pub batch_queries: u64,
    /// Octree nodes those batched lookups actually descended through.
    pub batch_nodes_visited: u64,
    /// Root-to-leaf path nodes Morton-adjacent batched lookups reused.
    pub batch_nodes_reused: u64,
}

/// What the durability layer did for the scan about to be recorded —
/// stamped onto the engine via `MappingSystem::stamp_durable` *before* the
/// scan is applied (write-ahead ordering), and folded into the record at
/// assembly. All zeros when no durability layer wraps the backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableMetrics {
    /// Time spent journaling this scan before applying it, in nanoseconds.
    pub journal_append_ns: u64,
    /// Time spent writing the periodic checkpoint that preceded this scan,
    /// in nanoseconds.
    pub checkpoint_write_ns: u64,
    /// Scan epoch of the newest durable checkpoint when this scan was
    /// journaled.
    pub checkpoint_epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_round_trip() {
        let r = ScanRecord {
            seq: 7,
            backend: "octocache-parallel".to_string(),
            times: PhaseTimes {
                ray_tracing: Duration::from_micros(120),
                wait: Duration::from_nanos(35),
                ..Default::default()
            },
            observations: 4096,
            cache_hits: 3000,
            cache_misses: 1096,
            cache_insertions: 4096,
            cache_evictions: 800,
            octree_node_visits: 12_000,
            octree_leaf_updates: 800,
            octree_nodes_created: 20,
            memory_bytes: 1_234_567,
            tree_layout: "arena".to_string(),
            queue_depth_enqueue: 3,
            queue_depth_dequeue: 1,
            mutex_wait: Duration::from_nanos(90),
            worker_queue_depths: vec![3, 1],
            shard_batch_sizes: vec![500, 300],
            shard_skew: 1.25,
            worker_busy_ns: vec![900, 450],
            worker_idle_ns: vec![10, 460],
            worker_panics: 1,
            spawn_failures: 0,
            stall_timeouts: 2,
            partial_batches: 1,
            batches_rerouted: 3,
            degraded: true,
            restarts: 1,
            heals: 1,
            restart_ns: 42_000,
            sheds: 2,
            pressure_level: "elevated".to_string(),
            snapshot_publish_ns: 52_000,
            snapshot_age_ns: 1_400_000,
            batch_queries: 256,
            batch_nodes_visited: 700,
            batch_nodes_reused: 3_400,
            journal_append_ns: 8_500,
            checkpoint_write_ns: 1_200_000,
            checkpoint_epoch: 64,
        };
        let json = serde::json::to_string(&r);
        let back: ScanRecord = serde::json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!((back.hit_ratio() - 3000.0 / 4096.0).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_handles_empty_scan() {
        assert_eq!(ScanRecord::default().hit_ratio(), 0.0);
    }

    #[test]
    fn assemble_covers_every_field() {
        let scan = ScanMetrics {
            times: PhaseTimes {
                ray_tracing: Duration::from_micros(10),
                ..Default::default()
            },
            observations: 100,
            cache_hits: 60,
            cache_misses: 40,
            cache_insertions: 100,
            cache_evictions: 12,
            octree_node_visits: 320,
            octree_leaf_updates: 12,
            octree_nodes_created: 3,
            memory_bytes: 4096,
            tree_layout: "pointer".to_string(),
            queue_depth_enqueue: 2,
            queue_depth_dequeue: 1,
            mutex_wait: Duration::from_nanos(7),
            worker_queue_depths: vec![2],
            shard_batch_sizes: vec![12],
            shard_skew: 1.0,
            worker_busy_ns: vec![500],
            worker_idle_ns: vec![20],
            worker_panics: 0,
            spawn_failures: 0,
            stall_timeouts: 0,
            partial_batches: 0,
            batches_rerouted: 0,
            degraded: false,
            restarts: 2,
            heals: 1,
            restart_ns: 6_000,
            sheds: 3,
            pressure_level: "critical".to_string(),
        };
        let snapshot = SnapshotMetrics {
            snapshot_publish_ns: 900,
            snapshot_age_ns: 40,
            batch_queries: 8,
            batch_nodes_visited: 24,
            batch_nodes_reused: 16,
        };
        let durable = DurableMetrics {
            journal_append_ns: 1_000,
            checkpoint_write_ns: 2_000,
            checkpoint_epoch: 5,
        };
        let r = ScanRecord::assemble(scan.clone(), snapshot, durable);
        // Telemetry stamps these two on record().
        assert_eq!(r.seq, 0);
        assert!(r.backend.is_empty());
        assert_eq!(r.times, scan.times);
        assert_eq!(r.observations, 100);
        assert_eq!(r.cache_hits, 60);
        assert_eq!(r.tree_layout, "pointer");
        assert_eq!(r.worker_busy_ns, vec![500]);
        assert_eq!(r.snapshot_publish_ns, 900);
        assert_eq!(r.batch_nodes_reused, 16);
        assert_eq!(r.journal_append_ns, 1_000);
        assert_eq!(r.checkpoint_epoch, 5);
        assert_eq!(r.restarts, 2);
        assert_eq!(r.heals, 1);
        assert_eq!(r.restart_ns, 6_000);
        assert_eq!(r.sheds, 3);
        assert_eq!(r.pressure_level, "critical");
        // The default groups assemble to the default record.
        assert_eq!(
            ScanRecord::assemble(
                ScanMetrics::default(),
                SnapshotMetrics::default(),
                DurableMetrics::default()
            ),
            ScanRecord::default()
        );
    }
}
