//! JSONL trace IO and the offline report built from a recorded trace.

use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::phase::{Phase, PhaseHistograms, PhaseTimes};
use crate::record::ScanRecord;

/// Writes records as JSON Lines (one per line).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_jsonl<W: Write>(mut out: W, records: &[ScanRecord]) -> std::io::Result<()> {
    for r in records {
        writeln!(out, "{}", serde::json::to_string(r))?;
    }
    Ok(())
}

/// Reads a JSONL trace; blank lines are skipped.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn read_jsonl<R: BufRead>(input: R) -> Result<Vec<ScanRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let record = serde::json::from_str(&line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        records.push(record);
    }
    Ok(records)
}

/// Reads a JSONL trace file.
///
/// # Errors
///
/// Returns a message for I/O or parse failures.
pub fn read_jsonl_path(path: impl AsRef<Path>) -> Result<Vec<ScanRecord>, String> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    read_jsonl(std::io::BufReader::new(file))
}

/// Reads the parseable prefix of a JSONL trace, tolerating a damaged tail.
///
/// A process killed mid-run (or a torn final write) leaves a trace whose
/// last line may be truncated; [`JsonlRecorder`](crate::JsonlRecorder)'s
/// per-record flush guarantees everything before it is intact. This reader
/// returns every record up to the first malformed line plus a description
/// of the damage (`None` when the stream was clean). Callers decide policy:
/// a damaged tail with zero preceding records is indistinguishable from a
/// non-trace file and should usually stay an error.
///
/// # Errors
///
/// Only I/O failures while reading; parse damage is reported in the
/// returned tuple, never as `Err`.
pub fn read_jsonl_prefix<R: BufRead>(
    input: R,
) -> Result<(Vec<ScanRecord>, Option<String>), String> {
    let mut records = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        match serde::json::from_str(&line) {
            Ok(record) => records.push(record),
            Err(e) => {
                return Ok((
                    records,
                    Some(format!("damaged tail at line {}: {e:?}", i + 1)),
                ))
            }
        }
    }
    Ok((records, None))
}

/// Reads the parseable prefix of a JSONL trace file (see
/// [`read_jsonl_prefix`]).
///
/// # Errors
///
/// Only I/O failures (e.g. the file does not exist).
pub fn read_jsonl_prefix_path(
    path: impl AsRef<Path>,
) -> Result<(Vec<ScanRecord>, Option<String>), String> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    read_jsonl_prefix(std::io::BufReader::new(file))
}

/// Percentiles of one phase over a trace, in microseconds (the `report`
/// table row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseQuantiles {
    /// Phase label.
    pub phase: String,
    /// Scans in which this phase ran (non-zero duration).
    pub count: u64,
    /// Median, µs.
    pub p50_us: f64,
    /// 90th percentile, µs.
    pub p90_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// Maximum, µs.
    pub max_us: f64,
    /// Total across the trace, ms.
    pub total_ms: f64,
}

/// One point of the cache hit-ratio time series: a window of consecutive
/// scans and its aggregate hit ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitRatioPoint {
    /// First scan of the window (inclusive).
    pub first_scan: u64,
    /// Last scan of the window (inclusive).
    pub last_scan: u64,
    /// Observations in the window.
    pub observations: u64,
    /// Aggregate cache hit ratio of the window, in `[0, 1]`.
    pub hit_ratio: f64,
}

/// Aggregate view of a recorded trace: per-phase latency histograms, cache
/// totals, and the hit-ratio time series — what `octocache report` prints
/// and what `BENCH_telemetry.json` stores per run.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Backend name (from the first record; traces are per-run).
    pub backend: String,
    /// Octree storage layout (from the first record carrying one; empty
    /// for traces recorded before the layout tag existed).
    pub tree_layout: String,
    /// Largest octree-storage footprint sampled across the trace, bytes.
    pub peak_memory_bytes: u64,
    /// Scans in the trace.
    pub scans: u64,
    /// Total voxel observations.
    pub observations: u64,
    /// Total cache hits.
    pub cache_hits: u64,
    /// Total cache evictions.
    pub cache_evictions: u64,
    /// Total octree node visits.
    pub octree_node_visits: u64,
    /// Total octree leaf updates.
    pub octree_leaf_updates: u64,
    /// Largest SPSC queue depth seen at enqueue.
    pub max_queue_depth: u64,
    /// Largest per-scan shard skew seen (N-worker parallel traces; 0 when
    /// the trace carries no shard data).
    pub max_shard_skew: f64,
    /// Per-worker busy nanoseconds summed over the trace (N-worker parallel
    /// traces; empty elsewhere).
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker idle nanoseconds summed over the trace (N-worker parallel
    /// traces; empty elsewhere).
    pub worker_idle_ns: Vec<u64>,
    /// Total worker panics over the trace.
    pub worker_panics: u64,
    /// Total worker spawn failures over the trace.
    pub spawn_failures: u64,
    /// Total expired bounded waits (`QueueStalled`) over the trace.
    pub stall_timeouts: u64,
    /// Total batches abandoned midway over the trace.
    pub partial_batches: u64,
    /// Total batch shares applied inline (degraded mode) over the trace.
    pub batches_rerouted: u64,
    /// Scans recorded while the backend was in a degraded state.
    pub degraded_scans: u64,
    /// Total worker respawns performed by the supervisor over the trace.
    pub restarts: u64,
    /// Total integrity heals (Degraded → Intact after respawn) over the
    /// trace.
    pub heals: u64,
    /// Total nanoseconds spent respawning workers over the trace.
    pub restart_ns: u64,
    /// Total scans shed by admission control over the trace.
    pub sheds: u64,
    /// Most severe memory-pressure level recorded on any scan (empty for
    /// traces without a governor).
    pub peak_pressure: String,
    /// Total nanoseconds spent journaling scans (0 for non-durable runs).
    pub journal_append_ns: u64,
    /// Total nanoseconds spent writing durable checkpoints.
    pub checkpoint_write_ns: u64,
    /// Durable checkpoints written during the trace (scans whose record
    /// carries a non-zero checkpoint write time).
    pub checkpoints: u64,
    /// Newest durable checkpoint epoch seen in the trace.
    pub last_checkpoint_epoch: u64,
    /// Cumulative phase times.
    pub totals: PhaseTimes,
    /// Per-phase latency histograms (nanoseconds).
    pub per_phase: PhaseHistograms,
    /// Windowed cache hit-ratio series.
    pub hit_ratio_series: Vec<HitRatioPoint>,
}

/// Number of windows the hit-ratio series is bucketed into (fewer when the
/// trace has fewer scans).
const SERIES_WINDOWS: usize = 20;

/// Severity order of the governor's pressure labels (empty = no governor,
/// least severe); unknown labels from newer writers rank above known ones
/// so they are preserved rather than dropped.
fn pressure_rank(level: &str) -> u8 {
    match level {
        "" => 0,
        "normal" => 1,
        "elevated" => 2,
        "critical" => 3,
        "over-budget" => 4,
        _ => 5,
    }
}

impl TraceSummary {
    /// Folds a record stream into a summary. The hit-ratio series uses at
    /// most `SERIES_WINDOWS` (20) equal windows of consecutive scans.
    pub fn from_records(records: &[ScanRecord]) -> Self {
        let mut s = TraceSummary {
            backend: records
                .first()
                .map(|r| r.backend.clone())
                .unwrap_or_default(),
            scans: records.len() as u64,
            ..Default::default()
        };
        for r in records {
            s.observations += r.observations;
            s.cache_hits += r.cache_hits;
            s.cache_evictions += r.cache_evictions;
            s.octree_node_visits += r.octree_node_visits;
            s.octree_leaf_updates += r.octree_leaf_updates;
            if s.tree_layout.is_empty() && !r.tree_layout.is_empty() {
                s.tree_layout = r.tree_layout.clone();
            }
            s.peak_memory_bytes = s.peak_memory_bytes.max(r.memory_bytes);
            s.max_queue_depth = s.max_queue_depth.max(r.queue_depth_enqueue);
            s.max_shard_skew = s.max_shard_skew.max(r.shard_skew);
            if s.worker_busy_ns.len() < r.worker_busy_ns.len() {
                s.worker_busy_ns.resize(r.worker_busy_ns.len(), 0);
            }
            for (acc, v) in s.worker_busy_ns.iter_mut().zip(&r.worker_busy_ns) {
                *acc += v;
            }
            if s.worker_idle_ns.len() < r.worker_idle_ns.len() {
                s.worker_idle_ns.resize(r.worker_idle_ns.len(), 0);
            }
            for (acc, v) in s.worker_idle_ns.iter_mut().zip(&r.worker_idle_ns) {
                *acc += v;
            }
            s.worker_panics += r.worker_panics;
            s.spawn_failures += r.spawn_failures;
            s.stall_timeouts += r.stall_timeouts;
            s.partial_batches += r.partial_batches;
            s.batches_rerouted += r.batches_rerouted;
            s.degraded_scans += u64::from(r.degraded);
            s.restarts += r.restarts;
            s.heals += r.heals;
            s.restart_ns += r.restart_ns;
            s.sheds += r.sheds;
            if pressure_rank(&r.pressure_level) > pressure_rank(&s.peak_pressure) {
                s.peak_pressure = r.pressure_level.clone();
            }
            s.journal_append_ns += r.journal_append_ns;
            s.checkpoint_write_ns += r.checkpoint_write_ns;
            s.checkpoints += u64::from(r.checkpoint_write_ns > 0);
            s.last_checkpoint_epoch = s.last_checkpoint_epoch.max(r.checkpoint_epoch);
            s.totals += r.times;
            s.per_phase.record_times(&r.times);
        }
        let window = records.len().div_ceil(SERIES_WINDOWS).max(1);
        for chunk in records.chunks(window) {
            let observations: u64 = chunk.iter().map(|r| r.observations).sum();
            let hits: u64 = chunk.iter().map(|r| r.cache_hits).sum();
            s.hit_ratio_series.push(HitRatioPoint {
                first_scan: chunk.first().map(|r| r.seq).unwrap_or(0),
                last_scan: chunk.last().map(|r| r.seq).unwrap_or(0),
                observations,
                hit_ratio: if observations == 0 {
                    0.0
                } else {
                    hits as f64 / observations as f64
                },
            });
        }
        s
    }

    /// Aggregate cache hit ratio of the whole trace.
    pub fn hit_ratio(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.observations as f64
        }
    }

    /// Octree node visits per leaf update (the tree-locality metric of the
    /// paper's §4.3); 0 when no leaves were updated.
    pub fn visits_per_update(&self) -> f64 {
        if self.octree_leaf_updates == 0 {
            0.0
        } else {
            self.octree_node_visits as f64 / self.octree_leaf_updates as f64
        }
    }

    /// True when any fault or degraded scan was recorded in the trace.
    pub fn any_faults(&self) -> bool {
        self.worker_panics
            + self.spawn_failures
            + self.stall_timeouts
            + self.partial_batches
            + self.batches_rerouted
            + self.degraded_scans
            > 0
    }

    /// True when the supervisor did anything worth reporting: a respawn, a
    /// heal, a shed scan, or memory pressure above the normal rung.
    pub fn any_supervisor_activity(&self) -> bool {
        self.restarts + self.heals + self.sheds > 0
            || pressure_rank(&self.peak_pressure) > pressure_rank("normal")
    }

    /// Per-worker utilization over the trace: busy / (busy + idle), in
    /// `[0, 1]`; one entry per octree-update worker, empty for traces with
    /// no worker data.
    pub fn worker_utilization(&self) -> Vec<f64> {
        self.worker_busy_ns
            .iter()
            .enumerate()
            .map(|(i, &busy)| {
                let idle = self.worker_idle_ns.get(i).copied().unwrap_or(0);
                let total = busy + idle;
                if total == 0 {
                    0.0
                } else {
                    busy as f64 / total as f64
                }
            })
            .collect()
    }

    /// The per-phase percentile table rows (phases that never ran are
    /// omitted).
    pub fn phase_quantiles(&self) -> Vec<PhaseQuantiles> {
        let us = |nanos: u64| nanos as f64 / 1e3;
        Phase::ALL
            .iter()
            .map(|&p| (p, self.per_phase.get(p)))
            .filter(|(_, h)| !h.is_empty())
            .map(|(p, h)| PhaseQuantiles {
                phase: p.label().to_string(),
                count: h.count(),
                p50_us: us(h.p50()),
                p90_us: us(h.p90()),
                p99_us: us(h.p99()),
                max_us: us(h.max()),
                total_ms: h.sum() as f64 / 1e6,
            })
            .collect()
    }

    /// Machine-readable JSON of the whole summary (the `report --json`
    /// payload), so CI and benches can assert on hit ratio or p99 without
    /// scraping the rendered percentile table.
    pub fn to_json(&self) -> String {
        use serde::Value;
        fn obj(fields: Vec<(&str, Value)>) -> Value {
            Value::Map(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }
        let u64s = |v: &[u64]| Value::Seq(v.iter().map(|&n| Value::U64(n)).collect());
        let phases = Value::Seq(
            self.phase_quantiles()
                .into_iter()
                .map(|q| {
                    obj(vec![
                        ("phase", Value::Str(q.phase)),
                        ("count", Value::U64(q.count)),
                        ("p50_us", Value::F64(q.p50_us)),
                        ("p90_us", Value::F64(q.p90_us)),
                        ("p99_us", Value::F64(q.p99_us)),
                        ("max_us", Value::F64(q.max_us)),
                        ("total_ms", Value::F64(q.total_ms)),
                    ])
                })
                .collect(),
        );
        let series = Value::Seq(
            self.hit_ratio_series
                .iter()
                .map(|p| {
                    obj(vec![
                        ("first_scan", Value::U64(p.first_scan)),
                        ("last_scan", Value::U64(p.last_scan)),
                        ("observations", Value::U64(p.observations)),
                        ("hit_ratio", Value::F64(p.hit_ratio)),
                    ])
                })
                .collect(),
        );
        let doc = obj(vec![
            ("backend", Value::Str(self.backend.clone())),
            ("tree_layout", Value::Str(self.tree_layout.clone())),
            ("scans", Value::U64(self.scans)),
            ("observations", Value::U64(self.observations)),
            ("cache_hits", Value::U64(self.cache_hits)),
            ("hit_ratio", Value::F64(self.hit_ratio())),
            ("cache_evictions", Value::U64(self.cache_evictions)),
            ("octree_node_visits", Value::U64(self.octree_node_visits)),
            ("octree_leaf_updates", Value::U64(self.octree_leaf_updates)),
            ("visits_per_update", Value::F64(self.visits_per_update())),
            ("peak_memory_bytes", Value::U64(self.peak_memory_bytes)),
            ("max_queue_depth", Value::U64(self.max_queue_depth)),
            ("max_shard_skew", Value::F64(self.max_shard_skew)),
            ("worker_busy_ns", u64s(&self.worker_busy_ns)),
            ("worker_idle_ns", u64s(&self.worker_idle_ns)),
            (
                "worker_utilization",
                Value::Seq(
                    self.worker_utilization()
                        .into_iter()
                        .map(Value::F64)
                        .collect(),
                ),
            ),
            ("worker_panics", Value::U64(self.worker_panics)),
            ("spawn_failures", Value::U64(self.spawn_failures)),
            ("stall_timeouts", Value::U64(self.stall_timeouts)),
            ("partial_batches", Value::U64(self.partial_batches)),
            ("batches_rerouted", Value::U64(self.batches_rerouted)),
            ("degraded_scans", Value::U64(self.degraded_scans)),
            ("restarts", Value::U64(self.restarts)),
            ("heals", Value::U64(self.heals)),
            ("restart_ns", Value::U64(self.restart_ns)),
            ("sheds", Value::U64(self.sheds)),
            ("peak_pressure", Value::Str(self.peak_pressure.clone())),
            ("journal_append_ns", Value::U64(self.journal_append_ns)),
            ("checkpoint_write_ns", Value::U64(self.checkpoint_write_ns)),
            ("checkpoints", Value::U64(self.checkpoints)),
            (
                "last_checkpoint_epoch",
                Value::U64(self.last_checkpoint_epoch),
            ),
            ("phases", phases),
            ("hit_ratio_series", series),
        ]);
        serde::json::to_string(&doc)
    }

    /// Renders the human-readable report: a per-phase percentile table
    /// followed by the hit-ratio time series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} scans, backend {}",
            self.scans,
            if self.backend.is_empty() {
                "?"
            } else {
                &self.backend
            }
        );
        let _ = writeln!(
            out,
            "  observations {}, cache hits {} ({:.1} %), evictions {}",
            self.observations,
            self.cache_hits,
            self.hit_ratio() * 100.0,
            self.cache_evictions
        );
        let _ = writeln!(
            out,
            "  octree: {} node visits, {} leaf updates ({:.2} visits/update)",
            self.octree_node_visits,
            self.octree_leaf_updates,
            self.visits_per_update()
        );
        if !self.tree_layout.is_empty() {
            let _ = writeln!(
                out,
                "  storage: {} layout, peak {:.1} KiB",
                self.tree_layout,
                self.peak_memory_bytes as f64 / 1024.0
            );
        }
        if self.max_queue_depth > 0 {
            let _ = writeln!(
                out,
                "  max queue depth at enqueue: {}",
                self.max_queue_depth
            );
        }
        let util = self.worker_utilization();
        if !util.is_empty() {
            let cols: Vec<String> = util
                .iter()
                .enumerate()
                .map(|(i, u)| format!("w{i} {:.1} %", u * 100.0))
                .collect();
            let _ = writeln!(out, "  worker utilization: {}", cols.join(", "));
            if self.max_shard_skew > 0.0 {
                let _ = writeln!(out, "  max shard skew: {:.2}", self.max_shard_skew);
            }
        }
        if self.journal_append_ns > 0 || self.checkpoints > 0 {
            let _ = writeln!(
                out,
                "  durability: journal {:.2} ms, {} checkpoints ({:.2} ms), newest epoch {}",
                self.journal_append_ns as f64 / 1e6,
                self.checkpoints,
                self.checkpoint_write_ns as f64 / 1e6,
                self.last_checkpoint_epoch
            );
        }
        if self.any_faults() {
            let _ = writeln!(
                out,
                "  faults: {} panics, {} spawn failures, {} stalls, {} partial batches, \
                 {} rerouted; {} degraded scans",
                self.worker_panics,
                self.spawn_failures,
                self.stall_timeouts,
                self.partial_batches,
                self.batches_rerouted,
                self.degraded_scans
            );
        }
        if self.any_supervisor_activity() {
            let mut line = format!(
                "  supervisor: {} restarts ({:.2} ms), {} heals, {} shed scans",
                self.restarts,
                self.restart_ns as f64 / 1e6,
                self.heals,
                self.sheds
            );
            if pressure_rank(&self.peak_pressure) > pressure_rank("normal") {
                let _ = write!(line, ", peak pressure {}", self.peak_pressure);
            }
            let _ = writeln!(out, "{line}");
        }

        let _ = writeln!(out, "\nper-phase latency percentiles (per scan):");
        let _ = writeln!(
            out,
            "  {:<14} {:>7} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "phase", "scans", "p50(us)", "p90(us)", "p99(us)", "max(us)", "total(ms)"
        );
        for q in self.phase_quantiles() {
            let _ = writeln!(
                out,
                "  {:<14} {:>7} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.3}",
                q.phase, q.count, q.p50_us, q.p90_us, q.p99_us, q.max_us, q.total_ms
            );
        }

        let _ = writeln!(out, "\ncache hit-ratio over scans:");
        for p in &self.hit_ratio_series {
            let bar_len = (p.hit_ratio * 40.0).round() as usize;
            let _ = writeln!(
                out,
                "  scans {:>6}-{:<6} {:>5.1} % |{:<40}|",
                p.first_scan,
                p.last_scan,
                p.hit_ratio * 100.0,
                "#".repeat(bar_len.min(40))
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn records(n: u64) -> Vec<ScanRecord> {
        (0..n)
            .map(|i| ScanRecord {
                seq: i,
                backend: "octocache-serial".to_string(),
                times: PhaseTimes {
                    ray_tracing: Duration::from_micros(100 + i),
                    octree_update: Duration::from_micros(10 + i % 5),
                    ..Default::default()
                },
                observations: 100,
                cache_hits: i.min(90),
                cache_evictions: 7,
                octree_node_visits: 50,
                octree_leaf_updates: 10,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn jsonl_round_trip() {
        let recs = records(25);
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &recs).unwrap();
        let back = read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn read_jsonl_skips_blank_and_reports_bad_lines() {
        let text = "\n\n";
        assert!(read_jsonl(text.as_bytes()).unwrap().is_empty());
        let err = read_jsonl("{not json}".as_bytes()).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn read_jsonl_rejects_truncated_record() {
        // A record cut off mid-stream (half its JSON) must be a typed parse
        // error naming the line, not a panic or a silently dropped record.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records(2)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let second = lines[1];
        let truncated = &second[..second.len() / 2];
        lines[1] = truncated;
        let err = read_jsonl(lines.join("\n").as_bytes()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn read_jsonl_rejects_trailing_garbage() {
        // Valid records followed by non-JSON junk (e.g. a crashed writer's
        // partial flush plus shell noise) fail with the junk's line number.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records(3)).unwrap();
        buf.extend_from_slice(b"#### trailing garbage ####\n");
        let err = read_jsonl(&buf[..]).unwrap_err();
        assert!(err.contains("line 4"), "{err}");
    }

    #[test]
    fn read_jsonl_path_empty_file_and_missing_file() {
        let dir = std::env::temp_dir();
        let empty = dir.join(format!("octocache-empty-{}.jsonl", std::process::id()));
        std::fs::write(&empty, "").unwrap();
        let records = read_jsonl_path(&empty).unwrap();
        let _ = std::fs::remove_file(&empty);
        assert!(records.is_empty(), "empty file must parse to zero records");

        let missing = dir.join(format!("octocache-missing-{}.jsonl", std::process::id()));
        let err = read_jsonl_path(&missing).unwrap_err();
        assert!(err.starts_with("open "), "{err}");
    }

    #[test]
    fn read_jsonl_prefix_recovers_records_before_torn_tail() {
        // Regression for crash-safe traces: a process killed mid-write
        // leaves N complete lines plus one torn line; the prefix reader
        // must return the N records and describe the damage.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records(3)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let keep = text.len() - 40; // tear the last record mid-JSON
        let torn = &text[..keep];
        let (recs, damage) = read_jsonl_prefix(torn.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs, records(3)[..2]);
        let damage = damage.expect("torn tail must be reported");
        assert!(damage.contains("line 3"), "{damage}");

        // A clean stream reports no damage.
        let mut clean = Vec::new();
        write_jsonl(&mut clean, &records(3)).unwrap();
        let (recs, damage) = read_jsonl_prefix(&clean[..]).unwrap();
        assert_eq!(recs.len(), 3);
        assert!(damage.is_none());

        // Pure garbage yields zero records plus damage — callers treat
        // that as "not a trace".
        let (recs, damage) = read_jsonl_prefix("#garbage#".as_bytes()).unwrap();
        assert!(recs.is_empty());
        assert!(damage.is_some());
    }

    #[test]
    fn summary_aggregates_durability_fields() {
        let mut recs = records(6);
        for r in recs.iter_mut() {
            r.journal_append_ns = 1_000;
        }
        recs[2].checkpoint_write_ns = 500_000;
        recs[2].checkpoint_epoch = 2;
        recs[5].checkpoint_write_ns = 700_000;
        recs[5].checkpoint_epoch = 5;
        let s = TraceSummary::from_records(&recs);
        assert_eq!(s.journal_append_ns, 6_000);
        assert_eq!(s.checkpoint_write_ns, 1_200_000);
        assert_eq!(s.checkpoints, 2);
        assert_eq!(s.last_checkpoint_epoch, 5);
        let text = s.render();
        assert!(text.contains("durability: journal"), "{text}");
        assert!(text.contains("2 checkpoints"), "{text}");
        // Non-durable traces render no durability line.
        let plain = TraceSummary::from_records(&records(4));
        assert!(!plain.render().contains("durability:"));
        // And the JSON payload carries the counters.
        let v: serde::Value = serde::json::from_str(&s.to_json()).unwrap();
        assert_eq!(v.get("checkpoints").and_then(serde::Value::as_u64), Some(2));
        assert_eq!(
            v.get("journal_append_ns").and_then(serde::Value::as_u64),
            Some(6_000)
        );
    }

    #[test]
    fn summary_to_json_is_parseable_and_complete() {
        let s = TraceSummary::from_records(&records(40));
        let json = s.to_json();
        let v: serde::Value = serde::json::from_str(&json).unwrap();
        assert_eq!(
            v.get("backend").and_then(serde::Value::as_str),
            Some("octocache-serial")
        );
        assert_eq!(v.get("scans").and_then(serde::Value::as_u64), Some(40));
        let hr = v.get("hit_ratio").and_then(serde::Value::as_f64).unwrap();
        assert!((hr - s.hit_ratio()).abs() < 1e-12);
        let phases = v.get("phases").and_then(serde::Value::as_seq).unwrap();
        assert_eq!(phases.len(), s.phase_quantiles().len());
        assert!(phases.iter().all(|p| p.get("p99_us").is_some()));
        let series = v
            .get("hit_ratio_series")
            .and_then(serde::Value::as_seq)
            .unwrap();
        assert_eq!(series.len(), 20);
    }

    #[test]
    fn summary_aggregates_and_windows() {
        let recs = records(100);
        let s = TraceSummary::from_records(&recs);
        assert_eq!(s.scans, 100);
        assert_eq!(s.observations, 100 * 100);
        assert_eq!(s.cache_evictions, 700);
        assert_eq!(s.backend, "octocache-serial");
        assert!((s.visits_per_update() - 5.0).abs() < 1e-12);
        // 100 scans in 20 windows of 5.
        assert_eq!(s.hit_ratio_series.len(), 20);
        assert_eq!(s.hit_ratio_series[0].first_scan, 0);
        assert_eq!(s.hit_ratio_series[0].last_scan, 4);
        // Hit ratio ramps up as the synthetic hits grow with i.
        assert!(s.hit_ratio_series[19].hit_ratio > s.hit_ratio_series[0].hit_ratio);
        // Phase table has exactly the phases that ran.
        let table = s.phase_quantiles();
        let names: Vec<&str> = table.iter().map(|q| q.phase.as_str()).collect();
        assert_eq!(names, ["ray_tracing", "octree_update"]);
        assert_eq!(table[0].count, 100);
        assert!(table[0].p50_us >= 100.0 && table[0].p99_us <= 220.0);
    }

    #[test]
    fn summary_aggregates_worker_stats() {
        let recs: Vec<ScanRecord> = (0..4)
            .map(|i| ScanRecord {
                seq: i,
                backend: "octocache-parallelx2".to_string(),
                worker_busy_ns: vec![100, 50],
                worker_idle_ns: vec![0, 50],
                shard_batch_sizes: vec![30, 10],
                shard_skew: 1.5,
                ..Default::default()
            })
            .collect();
        let s = TraceSummary::from_records(&recs);
        assert_eq!(s.worker_busy_ns, vec![400, 200]);
        assert_eq!(s.worker_idle_ns, vec![0, 200]);
        assert_eq!(s.max_shard_skew, 1.5);
        let util = s.worker_utilization();
        assert_eq!(util.len(), 2);
        assert!((util[0] - 1.0).abs() < 1e-12);
        assert!((util[1] - 0.5).abs() < 1e-12);
        let text = s.render();
        assert!(text.contains("worker utilization"), "{text}");
        assert!(text.contains("max shard skew"), "{text}");
    }

    #[test]
    fn summary_aggregates_fault_counters() {
        let mut recs = records(4);
        recs[1].worker_panics = 1;
        recs[1].batches_rerouted = 2;
        recs[1].degraded = true;
        recs[2].stall_timeouts = 1;
        recs[2].partial_batches = 1;
        recs[2].degraded = true;
        recs[3].degraded = true;
        let s = TraceSummary::from_records(&recs);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.stall_timeouts, 1);
        assert_eq!(s.partial_batches, 1);
        assert_eq!(s.batches_rerouted, 2);
        assert_eq!(s.degraded_scans, 3);
        assert!(s.any_faults());
        let text = s.render();
        assert!(text.contains("faults: 1 panics"), "{text}");
        assert!(text.contains("3 degraded scans"), "{text}");
        // A healthy trace prints no fault line.
        let healthy = TraceSummary::from_records(&records(4));
        assert!(!healthy.any_faults());
        assert!(!healthy.render().contains("faults:"));
    }

    #[test]
    fn summary_aggregates_supervisor_fields() {
        let mut recs = records(5);
        recs[1].restarts = 1;
        recs[1].heals = 1;
        recs[1].restart_ns = 2_000_000;
        recs[2].sheds = 3;
        recs[2].pressure_level = "critical".to_string();
        recs[3].pressure_level = "elevated".to_string();
        recs[4].pressure_level = "normal".to_string();
        let s = TraceSummary::from_records(&recs);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.heals, 1);
        assert_eq!(s.restart_ns, 2_000_000);
        assert_eq!(s.sheds, 3);
        // Peak pressure keeps the most severe level seen, not the last.
        assert_eq!(s.peak_pressure, "critical");
        assert!(s.any_supervisor_activity());
        let text = s.render();
        assert!(text.contains("supervisor: 1 restarts"), "{text}");
        assert!(text.contains("3 shed scans"), "{text}");
        assert!(text.contains("peak pressure critical"), "{text}");
        let v: serde::Value = serde::json::from_str(&s.to_json()).unwrap();
        assert_eq!(v.get("heals").and_then(serde::Value::as_u64), Some(1));
        assert_eq!(v.get("sheds").and_then(serde::Value::as_u64), Some(3));
        assert_eq!(
            v.get("peak_pressure").and_then(serde::Value::as_str),
            Some("critical")
        );
        // A trace with no supervisor activity renders no supervisor line,
        // even when the governor reported "normal" on every scan.
        let mut quiet = records(3);
        for r in quiet.iter_mut() {
            r.pressure_level = "normal".to_string();
        }
        let q = TraceSummary::from_records(&quiet);
        assert!(!q.any_supervisor_activity());
        assert!(!q.render().contains("supervisor:"));
        // And a plain trace is untouched.
        let plain = TraceSummary::from_records(&records(3));
        assert_eq!(plain.peak_pressure, "");
        assert!(!plain.render().contains("supervisor:"));
    }

    #[test]
    fn summary_tracks_layout_and_peak_memory() {
        let mut recs = records(4);
        for (i, r) in recs.iter_mut().enumerate() {
            r.tree_layout = "arena".to_string();
            r.memory_bytes = 1000 * (i as u64 + 1);
        }
        recs[2].memory_bytes = 9000; // peak mid-trace (e.g. before a prune)
        let s = TraceSummary::from_records(&recs);
        assert_eq!(s.tree_layout, "arena");
        assert_eq!(s.peak_memory_bytes, 9000);
        let text = s.render();
        assert!(text.contains("storage: arena layout"), "{text}");
        // Legacy traces without the tag render no storage line.
        let legacy = TraceSummary::from_records(&records(4));
        assert_eq!(legacy.tree_layout, "");
        assert!(!legacy.render().contains("storage:"));
    }

    #[test]
    fn render_contains_table_and_series() {
        let s = TraceSummary::from_records(&records(40));
        let text = s.render();
        assert!(text.contains("p50(us)"), "{text}");
        assert!(text.contains("p99(us)"), "{text}");
        assert!(text.contains("ray_tracing"), "{text}");
        assert!(text.contains("hit-ratio over scans"), "{text}");
        assert!(text.contains('|'), "{text}");
    }

    #[test]
    fn empty_trace_summarises_cleanly() {
        let s = TraceSummary::from_records(&[]);
        assert_eq!(s.scans, 0);
        assert_eq!(s.hit_ratio(), 0.0);
        assert!(s.phase_quantiles().is_empty());
        let _ = s.render();
    }
}
