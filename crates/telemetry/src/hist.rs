//! Log-bucketed latency histogram and a plain counter.

use std::time::Duration;

use serde::{Deserialize, Error, Serialize, Value};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error at
/// `2^-SUB_BITS` (6.25 %).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Number of buckets needed to cover the full `u64` range: values below
/// `2 * SUB` get exact width-1 buckets, every octave above contributes
/// `SUB` buckets, up to the octave of `u64::MAX`.
const BUCKETS: usize = (((64 - SUB_BITS) as usize) << SUB_BITS) + SUB;

/// Index of the bucket covering `v` (HdrHistogram-style log-linear layout).
fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
}

/// Largest value falling into bucket `i` (inverse of [`bucket_index`]).
fn bucket_upper(i: usize) -> u64 {
    if i < 2 * SUB {
        return i as u64;
    }
    let octave = i >> SUB_BITS;
    let sub = (i & (SUB - 1)) as u64;
    let base = 1u64 << (octave + SUB_BITS as usize - 1);
    let width = base >> SUB_BITS;
    // Grouped so the top bucket (`base = 1 << 63`, `sub = 15`) lands exactly
    // on `u64::MAX` without overflowing.
    base + ((sub + 1) * width - 1)
}

/// A fixed-size log-bucketed histogram of `u64` samples (nanoseconds by
/// convention), with ≤ 6.25 % relative quantile error, O(1) record, and
/// exact `count`/`sum`/`max`.
///
/// Buckets are width 1 up to 31 and grow geometrically above, so a single
/// histogram spans nanoseconds to centuries. Histograms merge losslessly
/// ([`Histogram::merge`]), which is how sharded backends and multi-run
/// reports aggregate.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Records a [`Duration`] as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`): an upper bound on the
    /// sample of rank `ceil(q · count)` that is at most one bucket width
    /// (≤ 6.25 %) above it, and never above the exact maximum. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self` (lossless: bucket layouts
    /// are identical).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

// Hand-written (sparse) serialisation: the dense bucket array is almost all
// zeros, so the wire form is a list of `[index, count]` pairs.
impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Seq(vec![Value::U64(i as u64), Value::U64(c)]))
            .collect();
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::U64(self.sum)),
            ("max".to_string(), Value::U64(self.max)),
            ("buckets".to_string(), Value::Seq(buckets)),
        ])
    }
}

impl Deserialize for Histogram {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| Error::custom(format!("histogram: missing `{k}`")))
        };
        let mut h = Histogram::new();
        h.count = field("count")?
            .as_u64()
            .ok_or_else(|| Error::custom("histogram: count"))?;
        h.sum = field("sum")?
            .as_u64()
            .ok_or_else(|| Error::custom("histogram: sum"))?;
        h.max = field("max")?
            .as_u64()
            .ok_or_else(|| Error::custom("histogram: max"))?;
        let buckets = field("buckets")?
            .as_seq()
            .ok_or_else(|| Error::custom("histogram: buckets"))?;
        for pair in buckets {
            let pair = pair
                .as_seq()
                .ok_or_else(|| Error::custom("histogram: bucket pair"))?;
            let (Some(i), Some(c)) = (
                pair.first().and_then(Value::as_u64),
                pair.get(1).and_then(Value::as_u64),
            ) else {
                return Err(Error::custom("histogram: bucket pair shape"));
            };
            let i = usize::try_from(i)
                .ok()
                .filter(|&i| i < BUCKETS)
                .ok_or_else(|| Error::custom("histogram: bucket index out of range"))?;
            h.counts[i] = c;
        }
        Ok(h)
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    n: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.n += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.n += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.n
    }

    /// Adds another counter's value (for shard aggregation).
    pub fn merge(&mut self, other: &Counter) {
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every value maps to a bucket whose bounds contain it, and bucket
        // indices never decrease as values grow.
        let mut prev = 0usize;
        for v in (0u64..4096).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "v={v} index={i}");
            assert!(bucket_upper(i) >= v, "v={v} upper={}", bucket_upper(i));
            assert!(i >= prev || v < 4096, "index decreased at {v}");
            if v < 4096 {
                prev = i;
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 7, 12, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 30);
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.p50(), 7);
        assert_eq!(h.quantile(1.0), 30);
    }

    #[test]
    fn quantile_bounds_large_values() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000);
        }
        let p50 = h.p50();
        assert!((500_000..=532_000).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((990_000..=1_053_000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn serde_round_trip_preserves_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 17, 100, 100, 5_000, 1 << 40] {
            h.record(v);
        }
        let json = serde::json::to_string(&h);
        let back: Histogram = serde::json::from_str(&json).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.max(), h.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn counter_counts_and_merges() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        let mut d = Counter::new();
        d.add(10);
        c.merge(&d);
        assert_eq!(c.get(), 15);
        let back: Counter = serde::json::from_str(&serde::json::to_string(&c)).unwrap();
        assert_eq!(back, c);
    }
}
