//! Workflow phases: the per-phase time decomposition ([`PhaseTimes`]) and
//! its histogram-backed counterpart ([`PhaseHistograms`]).

use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::Duration;

use serde::{Deserialize, Error, Serialize, Value};

use crate::hist::Histogram;

/// Wall-clock time spent in each phase of the mapping workflow.
///
/// Mirrors the decomposition of the paper's Figure 13/22 and Table 3:
/// ray tracing, cache insertion, cache eviction, octree update, shared-buffer
/// enqueue/dequeue and thread-1 wait (the mutex acquisition gap of the
/// parallel design). Phases that do not apply to a given backend stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Point cloud → voxel batch conversion.
    pub ray_tracing: Duration,
    /// Cache insertion (including octree seeding on misses).
    pub cache_insert: Duration,
    /// Cache eviction scan.
    pub cache_evict: Duration,
    /// Octree updates (on the critical thread for serial backends, on
    /// thread 2 for the parallel ones).
    pub octree_update: Duration,
    /// Shared-buffer enqueue on thread 1 (parallel only).
    pub enqueue: Duration,
    /// Shared-buffer dequeue on thread 2 (parallel only).
    pub dequeue: Duration,
    /// Thread 1 time spent waiting for the octree mutex (parallel only).
    pub wait: Duration,
}

impl PhaseTimes {
    /// Sum of every phase.
    pub fn total(&self) -> Duration {
        self.ray_tracing
            + self.cache_insert
            + self.cache_evict
            + self.octree_update
            + self.enqueue
            + self.dequeue
            + self.wait
    }

    /// Time spent on the critical (query-blocking) path of thread 1:
    /// everything except the octree update and dequeue, which the parallel
    /// design moves to thread 2.
    pub fn critical_path(&self) -> Duration {
        self.ray_tracing + self.cache_insert + self.cache_evict + self.enqueue + self.wait
    }

    /// The duration of one phase.
    pub fn get(&self, phase: Phase) -> Duration {
        match phase {
            Phase::RayTracing => self.ray_tracing,
            Phase::CacheInsert => self.cache_insert,
            Phase::CacheEvict => self.cache_evict,
            Phase::OctreeUpdate => self.octree_update,
            Phase::Enqueue => self.enqueue,
            Phase::Dequeue => self.dequeue,
            Phase::Wait => self.wait,
        }
    }
}

impl Add for PhaseTimes {
    type Output = PhaseTimes;
    fn add(self, rhs: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            ray_tracing: self.ray_tracing + rhs.ray_tracing,
            cache_insert: self.cache_insert + rhs.cache_insert,
            cache_evict: self.cache_evict + rhs.cache_evict,
            octree_update: self.octree_update + rhs.octree_update,
            enqueue: self.enqueue + rhs.enqueue,
            dequeue: self.dequeue + rhs.dequeue,
            wait: self.wait + rhs.wait,
        }
    }
}

impl AddAssign for PhaseTimes {
    fn add_assign(&mut self, rhs: PhaseTimes) {
        *self = *self + rhs;
    }
}

impl fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ray={:.3?} insert={:.3?} evict={:.3?} tree={:.3?} enq={:.3?} deq={:.3?} wait={:.3?}",
            self.ray_tracing,
            self.cache_insert,
            self.cache_evict,
            self.octree_update,
            self.enqueue,
            self.dequeue,
            self.wait
        )
    }
}

/// One phase of the mapping workflow (the fields of [`PhaseTimes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Point cloud → voxel batch conversion.
    RayTracing,
    /// Cache insertion.
    CacheInsert,
    /// Cache eviction scan.
    CacheEvict,
    /// Octree update.
    OctreeUpdate,
    /// Shared-buffer enqueue (thread 1).
    Enqueue,
    /// Shared-buffer dequeue (thread 2).
    Dequeue,
    /// Thread-1 wait on the octree mutex / pipeline.
    Wait,
}

impl Phase {
    /// Every phase, in the display order used by reports.
    pub const ALL: [Phase; 7] = [
        Phase::RayTracing,
        Phase::CacheInsert,
        Phase::CacheEvict,
        Phase::OctreeUpdate,
        Phase::Enqueue,
        Phase::Dequeue,
        Phase::Wait,
    ];

    /// Short stable label (used as JSON keys and table rows).
    pub fn label(&self) -> &'static str {
        match self {
            Phase::RayTracing => "ray_tracing",
            Phase::CacheInsert => "cache_insert",
            Phase::CacheEvict => "cache_evict",
            Phase::OctreeUpdate => "octree_update",
            Phase::Enqueue => "enqueue",
            Phase::Dequeue => "dequeue",
            Phase::Wait => "wait",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One latency [`Histogram`] per workflow phase.
///
/// This is the histogram-backed replacement for mean-only [`PhaseTimes`]
/// accumulation: backends record each scan's per-phase durations here, so
/// p50/p90/p99 survive aggregation (a mean hides the tail that gates the
/// UAV control loop). [`PhaseTimes`] remains the cheap summary view.
#[derive(Debug, Clone, Default)]
pub struct PhaseHistograms {
    hists: [Histogram; 7],
}

impl PhaseHistograms {
    /// Empty histograms for every phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram of one phase.
    pub fn get(&self, phase: Phase) -> &Histogram {
        &self.hists[phase as usize]
    }

    /// Records one duration for one phase.
    pub fn record(&mut self, phase: Phase, d: Duration) {
        self.hists[phase as usize].record_duration(d);
    }

    /// Records every non-zero phase of one scan's [`PhaseTimes`].
    ///
    /// Zero phases are skipped so that backends which never touch a phase
    /// (e.g. `enqueue` on the serial backend) do not drown its percentiles
    /// in zeros.
    pub fn record_times(&mut self, times: &PhaseTimes) {
        for phase in Phase::ALL {
            let d = times.get(phase);
            if !d.is_zero() {
                self.record(phase, d);
            }
        }
    }

    /// Merges another set of histograms (shard or multi-run aggregation).
    pub fn merge(&mut self, other: &PhaseHistograms) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Total recorded samples across all phases.
    pub fn samples(&self) -> u64 {
        self.hists.iter().map(Histogram::count).sum()
    }
}

impl Serialize for PhaseHistograms {
    fn to_value(&self) -> Value {
        Value::Map(
            Phase::ALL
                .iter()
                .map(|p| (p.label().to_string(), self.get(*p).to_value()))
                .collect(),
        )
    }
}

impl Deserialize for PhaseHistograms {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut out = PhaseHistograms::new();
        for phase in Phase::ALL {
            if let Some(h) = v.get(phase.label()) {
                out.hists[phase as usize] = Histogram::from_value(h)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn total_and_critical_path() {
        let t = PhaseTimes {
            ray_tracing: ms(10),
            cache_insert: ms(20),
            cache_evict: ms(5),
            octree_update: ms(40),
            enqueue: ms(1),
            dequeue: ms(2),
            wait: ms(3),
        };
        assert_eq!(t.total(), ms(81));
        assert_eq!(t.critical_path(), ms(39));
    }

    #[test]
    fn add_accumulates_fieldwise() {
        let a = PhaseTimes {
            ray_tracing: ms(1),
            ..Default::default()
        };
        let b = PhaseTimes {
            ray_tracing: ms(2),
            octree_update: ms(4),
            ..Default::default()
        };
        let mut c = a + b;
        assert_eq!(c.ray_tracing, ms(3));
        assert_eq!(c.octree_update, ms(4));
        c += b;
        assert_eq!(c.ray_tracing, ms(5));
    }

    #[test]
    fn display_mentions_phases() {
        let s = PhaseTimes::default().to_string();
        assert!(s.contains("ray=") && s.contains("wait="));
    }

    #[test]
    fn phase_times_serde_round_trip() {
        let t = PhaseTimes {
            ray_tracing: Duration::new(1, 500),
            cache_insert: ms(20),
            cache_evict: ms(5),
            octree_update: Duration::from_nanos(123_456_789),
            enqueue: ms(1),
            dequeue: ms(2),
            wait: Duration::from_micros(7),
        };
        let json = serde::json::to_string(&t);
        let back: PhaseTimes = serde::json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn get_matches_fields_for_every_phase() {
        let t = PhaseTimes {
            ray_tracing: ms(1),
            cache_insert: ms(2),
            cache_evict: ms(3),
            octree_update: ms(4),
            enqueue: ms(5),
            dequeue: ms(6),
            wait: ms(7),
        };
        let durations: Vec<Duration> = Phase::ALL.iter().map(|p| t.get(*p)).collect();
        assert_eq!(durations, (1..=7).map(ms).collect::<Vec<_>>());
        assert_eq!(t.total(), durations.iter().sum());
    }

    #[test]
    fn histograms_record_nonzero_phases_only() {
        let mut h = PhaseHistograms::new();
        h.record_times(&PhaseTimes {
            ray_tracing: ms(10),
            octree_update: ms(40),
            ..Default::default()
        });
        h.record_times(&PhaseTimes {
            ray_tracing: ms(20),
            ..Default::default()
        });
        assert_eq!(h.get(Phase::RayTracing).count(), 2);
        assert_eq!(h.get(Phase::OctreeUpdate).count(), 1);
        assert_eq!(h.get(Phase::Enqueue).count(), 0);
        assert_eq!(h.samples(), 3);
        assert_eq!(h.get(Phase::RayTracing).max(), ms(20).as_nanos() as u64);
    }

    #[test]
    fn phase_histograms_serde_round_trip() {
        let mut h = PhaseHistograms::new();
        for i in 1..100u64 {
            h.record(Phase::RayTracing, Duration::from_micros(i));
            h.record(Phase::Wait, Duration::from_nanos(i * 3));
        }
        let json = serde::json::to_string(&h);
        let back: PhaseHistograms = serde::json::from_str(&json).unwrap();
        for p in Phase::ALL {
            assert_eq!(back.get(p).count(), h.get(p).count(), "{p}");
            assert_eq!(back.get(p).p99(), h.get(p).p99(), "{p}");
        }
    }
}
