//! Chrome Trace Event Format export for recorded event streams.
//!
//! [`chrome_trace_json`] turns an [`Event`](crate::Event) stream into the
//! JSON object format (`{"traceEvents": [...]}`) that `chrome://tracing`
//! and Perfetto load directly:
//!
//! * worker batch spans become `"X"` (complete) duration events on one
//!   track per thread lane,
//! * queue depths sampled at enqueue/dequeue become `"C"` counter tracks,
//! * stalls become `"i"` instant events with the waited time in `args`,
//! * `"M"` metadata events name the process and each lane's track.
//!
//! Timestamps are microseconds since the run epoch (the format's unit);
//! sub-microsecond precision is kept as fractional `ts`.

use serde::Value;

use crate::analytics::EventAnalytics;
use crate::event::{Event, EventKind};

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn us(t_ns: u64) -> Value {
    Value::F64(t_ns as f64 / 1_000.0)
}

/// Builds a Chrome Trace Event Format document from an event stream.
///
/// The returned string is a complete JSON object; write it to `trace.json`
/// and load it in `chrome://tracing` or <https://ui.perfetto.dev>. Spans
/// are matched per lane via [`EventAnalytics`], so a stream from a faulted
/// run (unmatched `BatchBegin`s) still exports cleanly.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let analytics = EventAnalytics::from_events(events);
    let mut trace_events: Vec<Value> = Vec::new();

    // Process metadata + one named track per lane.
    trace_events.push(obj(vec![
        ("name", Value::Str("process_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::U64(0)),
        ("tid", Value::U64(0)),
        ("args", obj(vec![("name", Value::Str("octocache".into()))])),
    ]));
    for w in &analytics.workers {
        let label = if w.worker == 0 {
            "producer".to_string()
        } else {
            format!("octree worker {}", w.worker)
        };
        trace_events.push(obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(w.worker as u64)),
            ("args", obj(vec![("name", Value::Str(label))])),
        ]));
    }

    // Batch spans as complete ("X") duration events.
    for w in &analytics.workers {
        for s in &w.spans {
            trace_events.push(obj(vec![
                ("name", Value::Str("octree batch".into())),
                ("cat", Value::Str("batch".into())),
                ("ph", Value::Str("X".into())),
                ("ts", us(s.begin_ns)),
                ("dur", us(s.duration_ns())),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(w.worker as u64)),
                (
                    "args",
                    obj(vec![
                        ("scan", Value::U64(s.scan)),
                        ("cells", Value::U64(s.cells)),
                    ]),
                ),
            ]));
        }
    }

    // Queue depth counters and stall instants, straight from the stream.
    for e in events {
        match e.kind {
            EventKind::QueueEnqueue | EventKind::QueueDequeue => {
                trace_events.push(obj(vec![
                    ("name", Value::Str(format!("queue depth lane {}", e.worker))),
                    ("ph", Value::Str("C".into())),
                    ("ts", us(e.t_ns)),
                    ("pid", Value::U64(0)),
                    ("args", obj(vec![("depth", Value::U64(e.value))])),
                ]));
            }
            EventKind::QueueStall => {
                trace_events.push(obj(vec![
                    ("name", Value::Str("stall".into())),
                    ("cat", Value::Str("queue".into())),
                    ("ph", Value::Str("i".into())),
                    ("s", Value::Str("t".into())),
                    ("ts", us(e.t_ns)),
                    ("pid", Value::U64(0)),
                    ("tid", Value::U64(e.worker as u64)),
                    ("args", obj(vec![("waited_ns", Value::U64(e.value))])),
                ]));
            }
            _ => {}
        }
    }

    let doc = obj(vec![
        ("traceEvents", Value::Seq(trace_events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ]);
    serde::json::to_string(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(t_ns: u64, worker: u32, kind: EventKind, value: u64) -> Event {
        Event {
            t_ns,
            scan: 0,
            worker,
            kind,
            key: 0,
            bucket: 0,
            hits: 0,
            value,
        }
    }

    #[test]
    fn trace_parses_and_contains_spans() {
        let events = vec![
            mk(1_000, 1, EventKind::BatchBegin, 0),
            mk(2_000, 0, EventKind::QueueEnqueue, 4),
            mk(3_000, 1, EventKind::QueueStall, 777),
            mk(9_000, 1, EventKind::BatchEnd, 64),
        ];
        let json = chrome_trace_json(&events);
        let v: Value = serde::json::from_str(&json).unwrap();
        let entries = v.get("traceEvents").and_then(Value::as_seq).unwrap();
        let phases: Vec<&str> = entries
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert!(phases.contains(&"X"), "complete span missing: {phases:?}");
        assert!(phases.contains(&"C"), "counter missing");
        assert!(phases.contains(&"i"), "instant missing");
        assert!(phases.contains(&"M"), "metadata missing");
        // The span is 8 µs long on lane 1.
        let span = entries
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("tid").and_then(Value::as_u64), Some(1));
        assert_eq!(
            span.get("dur").and_then(Value::as_f64),
            Some(8.0),
            "span duration should be 8 us"
        );
    }

    #[test]
    fn empty_stream_still_valid_json() {
        let json = chrome_trace_json(&[]);
        let v: Value = serde::json::from_str(&json).unwrap();
        assert!(v.get("traceEvents").and_then(Value::as_seq).is_some());
    }
}
