//! Sub-scan event tracing: the layer *beneath* [`crate::ScanRecord`].
//!
//! A [`ScanRecord`](crate::ScanRecord) tells you *that* a scan hit the cache
//! 90% of the time; an [`Event`] stream tells you *which* voxels, buckets,
//! octants, and workers produced that ratio. Backends that are built with
//! `CacheConfig::events(true)` emit one [`Event`] per cache access, eviction,
//! queue operation, and worker batch span into per-thread [`EventBuffer`]s
//! that drain into a shared [`EventSink`] at scan/batch boundaries.
//!
//! Recording is **lossless by default but bounded**: both the per-thread
//! buffers and the shared sink have capacity caps, and every event that
//! would overflow a cap is *counted* (never silently discarded) so an
//! analysis over a truncated stream knows it is truncated. Emitting an
//! event is a timestamp read plus a `Vec` push — no locks, no I/O; the
//! mutex is only taken when a buffer drains (once per scan or batch).
//!
//! The analytics pass over a recorded stream lives in
//! [`crate::EventAnalytics`]; the Chrome Trace Event export in
//! [`crate::chrome_trace_json`].

use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Default cap on events held by one [`EventSink`] (~4M events). Chosen so
/// a full freiburg-style run fits while a runaway loop cannot exhaust
/// memory; overflow is drop-counted, never silent.
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 22;

/// Default cap on events buffered by one [`EventBuffer`] between drains
/// (one scan or batch worth of events).
pub const DEFAULT_BUFFER_CAPACITY: usize = 1 << 20;

/// What one [`Event`] describes.
///
/// A unit-variant enum (the vendored serde derive supports exactly that);
/// per-kind payloads ride in the flat numeric fields of [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A cache access absorbed by an existing cell. `key`/`bucket` identify
    /// the voxel, `hits` is the cell's accumulated hit count after this
    /// access.
    CacheHit,
    /// A cache access that allocated a new cell (octree fall-through).
    CacheMiss,
    /// A cell evicted from the cache. `hits` is the total number of hits
    /// the cell absorbed while resident; `value` is the scan index on which
    /// the cell was inserted.
    CacheEvict,
    /// A chunk of evicted cells enqueued onto a worker's SPSC ring.
    /// `worker` is the target lane, `value` the queue depth after the push.
    QueueEnqueue,
    /// A worker dequeued a chunk. `value` is the queue depth observed at
    /// the pop.
    QueueDequeue,
    /// A producer or worker stalled waiting on a full/empty queue.
    /// `value` is the time spent waiting, in nanoseconds.
    QueueStall,
    /// A batch span opened (octree-update work started). `value` is the
    /// number of cells the span will apply.
    BatchBegin,
    /// The matching span closed. `value` is the number of cells applied.
    BatchEnd,
}

impl EventKind {
    /// Short stable name (used by the Chrome-trace exporter and tables).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CacheEvict => "cache_evict",
            EventKind::QueueEnqueue => "enqueue",
            EventKind::QueueDequeue => "dequeue",
            EventKind::QueueStall => "stall",
            EventKind::BatchBegin => "batch_begin",
            EventKind::BatchEnd => "batch_end",
        }
    }
}

/// One sub-scan trace event, flat so every kind shares a schema (the
/// vendored serde derive handles named-field structs only).
///
/// Field meaning varies by [`EventKind`] — unused fields stay zero. All
/// timestamps share one epoch per run (captured when the backend was
/// constructed), so events from different threads interleave correctly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Nanoseconds since the run epoch.
    pub t_ns: u64,
    /// Scan index the event belongs to (producer-side stamp; workers carry
    /// the scan index of the batch they are applying).
    pub scan: u64,
    /// Thread lane: 0 is the producer (and the only lane on serial
    /// backends); octree workers are 1-based.
    pub worker: u32,
    /// Event kind; selects which payload fields are meaningful.
    pub kind: EventKind,
    /// Morton code of the voxel (cache events only).
    pub key: u64,
    /// Cache bucket index (cache events only).
    pub bucket: u32,
    /// Accumulated per-cell hit count (cache events only).
    pub hits: u32,
    /// Kind-specific payload: queue depth, waited ns, cell count, or
    /// insertion scan — see [`EventKind`].
    pub value: u64,
}

impl Default for Event {
    fn default() -> Self {
        Event {
            t_ns: 0,
            scan: 0,
            worker: 0,
            kind: EventKind::CacheHit,
            key: 0,
            bucket: 0,
            hits: 0,
            value: 0,
        }
    }
}

/// The merged event stream of one run plus its loss accounting.
#[derive(Debug, Default)]
pub struct EventLog {
    /// Events in drain order (per-thread order preserved within a drain;
    /// sort by [`Event::t_ns`] for a global timeline).
    pub events: Vec<Event>,
    /// Events lost to buffer or sink capacity caps.
    pub dropped: u64,
}

/// Shared, thread-safe collection point for per-thread [`EventBuffer`]s.
///
/// One sink exists per backend run; the backend creates one buffer per
/// thread lane from it. Cloning the `Arc` is how a worker thread gets its
/// handle.
#[derive(Debug)]
pub struct EventSink {
    epoch: Instant,
    capacity: usize,
    log: Mutex<SinkLog>,
}

/// Sink internals: drained buffers are kept as whole segments (a pointer
/// move per drain, never an element copy — the copy that would otherwise
/// dominate recording overhead on event-heavy runs) and flattened once in
/// [`EventSink::take`]. Emptied segments go to a small spare pool so
/// buffers get their warmed allocation back instead of re-faulting fresh
/// pages every drain.
#[derive(Debug, Default)]
struct SinkLog {
    segments: Vec<Vec<Event>>,
    len: usize,
    dropped: u64,
    spare: Vec<Vec<Event>>,
}

/// Cap on recycled segment allocations retained by a sink.
const SPARE_POOL_LIMIT: usize = 16;

impl EventSink {
    /// A sink with the default capacity cap.
    pub fn new() -> Arc<Self> {
        Self::with_capacity(DEFAULT_SINK_CAPACITY)
    }

    /// A sink capped at `capacity` retained events (extra events are
    /// counted in [`EventLog::dropped`]).
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(EventSink {
            epoch: Instant::now(),
            capacity,
            log: Mutex::new(SinkLog::default()),
        })
    }

    /// The run epoch every buffer timestamps against.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Creates the per-thread buffer for `worker` lane (0 = producer).
    pub fn buffer(self: &Arc<Self>, worker: u32) -> EventBuffer {
        EventBuffer {
            sink: Arc::clone(self),
            epoch: self.epoch,
            worker,
            scan: 0,
            capacity: DEFAULT_BUFFER_CAPACITY,
            dropped: 0,
            cached_ns: 0,
            clock_tick: 0,
            saturated: false,
            events: Vec::new(),
        }
    }

    /// Moves `events` (and `dropped`) into the shared log, honouring the
    /// sink capacity cap. The filled vector is stored whole (a segment)
    /// and `events` is replaced with a recycled empty allocation. Returns
    /// `true` once the sink is full, so buffers can stop paying emission
    /// costs for events that would only be truncated here.
    fn absorb(&self, events: &mut Vec<Event>, dropped: u64) -> bool {
        let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        log.dropped += dropped;
        let room = self.capacity.saturating_sub(log.len);
        if events.len() > room {
            log.dropped += (events.len() - room) as u64;
            events.truncate(room);
        }
        if !events.is_empty() {
            log.len += events.len();
            let recycled = log.spare.pop().unwrap_or_default();
            let full = std::mem::replace(events, recycled);
            log.segments.push(full);
        }
        log.len >= self.capacity
    }

    /// Takes the collected log, leaving the sink empty. Call after the
    /// backend has finished (all buffers drained). This is where segments
    /// are flattened into one stream — a single pass outside every hot
    /// loop.
    pub fn take(&self) -> EventLog {
        let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        let mut events = Vec::with_capacity(log.len);
        let segments = std::mem::take(&mut log.segments);
        for mut seg in segments {
            events.append(&mut seg);
            if log.spare.len() < SPARE_POOL_LIMIT {
                log.spare.push(seg);
            }
        }
        log.len = 0;
        EventLog {
            events,
            dropped: std::mem::take(&mut log.dropped),
        }
    }

    /// Events currently held (for tests and progress displays).
    pub fn len(&self) -> usize {
        self.log.lock().unwrap_or_else(|e| e.into_inner()).len
    }

    /// True when no events were collected yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-thread event buffer: lock-free emission, periodic drain into the
/// owning [`EventSink`].
///
/// Dropping the buffer drains it, so no events are lost when a worker
/// thread exits.
#[derive(Debug)]
pub struct EventBuffer {
    sink: Arc<EventSink>,
    epoch: Instant,
    worker: u32,
    scan: u64,
    capacity: usize,
    dropped: u64,
    cached_ns: u64,
    clock_tick: u32,
    saturated: bool,
    events: Vec<Event>,
}

/// How many cache events may share one cached timestamp before the clock
/// is re-read. Reading the monotonic clock (~40 ns) dominates the cost of
/// an emission (a bounds check and a `Vec` push), so the bulk cache
/// hit/miss/evict stream reuses a cached reading refreshed every
/// `CLOCK_REFRESH_INTERVAL` events; span and queue events — the ones the
/// Chrome-trace export renders on a timeline — always re-read the clock,
/// so their timestamps stay exact. Per-lane timestamps remain
/// monotonically non-decreasing either way.
const CLOCK_REFRESH_INTERVAL: u32 = 1024;

impl EventBuffer {
    /// Overrides the per-drain capacity cap (tests use tiny caps).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Stamps the scan index onto subsequently emitted events.
    pub fn set_scan(&mut self, scan: u64) {
        self.scan = scan;
    }

    /// Current scan stamp.
    pub fn scan(&self) -> u64 {
        self.scan
    }

    /// Nanoseconds since the run epoch, saturating (a run longer than ~584
    /// years would wrap, which we do not worry about).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// An exact clock reading; also refreshes the cached coarse stamp.
    #[inline]
    fn exact_ns(&mut self) -> u64 {
        self.cached_ns = self.now_ns();
        self.clock_tick = CLOCK_REFRESH_INTERVAL;
        self.cached_ns
    }

    /// The cached coarse stamp, re-read every [`CLOCK_REFRESH_INTERVAL`]
    /// events.
    #[inline]
    fn coarse_ns(&mut self) -> u64 {
        if self.clock_tick == 0 {
            return self.exact_ns();
        }
        self.clock_tick -= 1;
        self.cached_ns
    }

    /// Emits one event with the buffer's lane/scan stamps and an exact
    /// timestamp. Counts instead of pushing once the buffer cap is hit.
    #[inline]
    pub fn emit(&mut self, kind: EventKind, key: u64, bucket: u32, hits: u32, value: u64) {
        if self.saturated || self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let t_ns = self.exact_ns();
        self.events.push(Event {
            t_ns,
            scan: self.scan,
            worker: self.worker,
            kind,
            key,
            bucket,
            hits,
            value,
        });
    }

    /// Emits a cache event (`CacheHit` / `CacheMiss` / `CacheEvict`) with
    /// a coarse timestamp (see `CLOCK_REFRESH_INTERVAL`): the analytics
    /// over these events are order- and scan-based, so they trade
    /// nanosecond precision for staying off the cache hot path.
    #[inline]
    pub fn emit_cache(&mut self, kind: EventKind, key: u64, bucket: u32, hits: u32, value: u64) {
        if self.saturated || self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let t_ns = self.coarse_ns();
        self.events.push(Event {
            t_ns,
            scan: self.scan,
            worker: self.worker,
            kind,
            key,
            bucket,
            hits,
            value,
        });
    }

    /// Emits a queue or span event (no voxel payload) with an exact
    /// timestamp.
    #[inline]
    pub fn emit_plain(&mut self, kind: EventKind, value: u64) {
        self.emit(kind, 0, 0, 0, value);
    }

    /// Emits an event attributed to another lane (e.g. the producer
    /// records a `QueueEnqueue` against the target worker's lane so queue
    /// traffic groups by queue, not by emitting thread).
    #[inline]
    pub fn emit_for(&mut self, worker: u32, kind: EventKind, value: u64) {
        if self.saturated || self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let t_ns = self.exact_ns();
        self.events.push(Event {
            t_ns,
            scan: self.scan,
            worker,
            kind,
            key: 0,
            bucket: 0,
            hits: 0,
            value,
        });
    }

    /// Events buffered since the last drain.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains buffered events into the sink (called at scan/batch
    /// boundaries so the emission path itself never locks). Once the sink
    /// reports itself full, subsequent emissions short-circuit to drop
    /// counting — they could never be retained anyway.
    pub fn drain(&mut self) {
        if self.events.is_empty() && self.dropped == 0 {
            return;
        }
        let dropped = std::mem::take(&mut self.dropped);
        self.saturated = self.sink.absorb(&mut self.events, dropped);
        self.events.clear();
    }
}

impl Drop for EventBuffer {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Writes an event stream as JSON Lines (one [`Event`] per line).
///
/// # Errors
///
/// Returns the first I/O error from the writer.
pub fn write_events_jsonl<W: Write>(out: &mut W, events: &[Event]) -> std::io::Result<()> {
    for e in events {
        writeln!(out, "{}", serde::json::to_string(e))?;
    }
    Ok(())
}

/// Reads an event stream produced by [`write_events_jsonl`]. Blank lines
/// are skipped; malformed lines are reported with their line number.
///
/// # Errors
///
/// Returns an I/O error on read failure or `InvalidData` naming the first
/// malformed line.
pub fn read_events_jsonl<R: BufRead>(input: R) -> std::io::Result<Vec<Event>> {
    let mut events = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: Event = serde::json::from_str(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", idx + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Reads an event stream from a file path (see [`read_events_jsonl`]).
///
/// # Errors
///
/// Propagates open/read errors and malformed-line errors.
pub fn read_events_jsonl_path(path: impl AsRef<Path>) -> std::io::Result<Vec<Event>> {
    let file = std::fs::File::open(path)?;
    read_events_jsonl(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serde_round_trip() {
        let e = Event {
            t_ns: 123_456,
            scan: 9,
            worker: 3,
            kind: EventKind::CacheEvict,
            key: 0xABCDEF,
            bucket: 17,
            hits: 42,
            value: 5,
        };
        let json = serde::json::to_string(&e);
        let back: Event = serde::json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn buffer_drains_into_sink_in_order() {
        let sink = EventSink::new();
        let mut b = sink.buffer(1);
        b.set_scan(4);
        b.emit_cache(EventKind::CacheHit, 7, 2, 1, 0);
        b.emit_plain(EventKind::QueueStall, 99);
        assert_eq!(b.len(), 2);
        b.drain();
        assert!(b.is_empty());
        let log = sink.take();
        assert_eq!(log.dropped, 0);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].kind, EventKind::CacheHit);
        assert_eq!(log.events[0].scan, 4);
        assert_eq!(log.events[0].worker, 1);
        assert_eq!(log.events[1].kind, EventKind::QueueStall);
        assert_eq!(log.events[1].value, 99);
        assert!(log.events[1].t_ns >= log.events[0].t_ns);
    }

    #[test]
    fn buffer_cap_counts_drops() {
        let sink = EventSink::new();
        let mut b = sink.buffer(0);
        b.set_capacity(2);
        for i in 0..5 {
            b.emit_plain(EventKind::QueueEnqueue, i);
        }
        b.drain();
        let log = sink.take();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.dropped, 3);
    }

    #[test]
    fn sink_cap_counts_drops() {
        let sink = EventSink::with_capacity(3);
        let mut b = sink.buffer(0);
        for i in 0..5 {
            b.emit_plain(EventKind::QueueDequeue, i);
        }
        b.drain();
        let log = sink.take();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.dropped, 2);
        // Retained events are the earliest ones.
        assert_eq!(log.events[0].value, 0);
        assert_eq!(log.events[2].value, 2);
    }

    #[test]
    fn dropping_buffer_drains_it() {
        let sink = EventSink::new();
        {
            let mut b = sink.buffer(2);
            b.emit_plain(EventKind::BatchBegin, 10);
        }
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn events_jsonl_round_trip() {
        let mut events = Vec::new();
        for i in 0..4u64 {
            events.push(Event {
                t_ns: i * 10,
                scan: i,
                worker: (i % 2) as u32,
                kind: if i % 2 == 0 {
                    EventKind::CacheHit
                } else {
                    EventKind::QueueEnqueue
                },
                key: i * 3,
                bucket: i as u32,
                hits: 1,
                value: i,
            });
        }
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &events).unwrap();
        let back = read_events_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn read_events_reports_malformed_line() {
        let text = "{\"t_ns\":0,\"scan\":0,\"worker\":0,\"kind\":\"CacheHit\",\"key\":0,\"bucket\":0,\"hits\":0,\"value\":0}\nnot-json\n";
        let err = read_events_jsonl(std::io::Cursor::new(text)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
    }
}
