//! # OctoCache telemetry
//!
//! A dependency-free observability layer shared by every mapping backend in
//! the OctoCache reproduction. Three pieces fit together:
//!
//! 1. **Metric primitives** — a log-bucketed latency [`Histogram`]
//!    (p50/p90/p99/max, mergeable across shards and runs) and a plain
//!    [`Counter`], both serde-serialisable.
//! 2. **Per-scan trace events** — a [`ScanRecord`] captures one
//!    `insert_scan` call: phase durations ([`PhaseTimes`]), cache
//!    hit/miss/eviction deltas, octree node-visit deltas, SPSC queue depth
//!    sampled at enqueue/dequeue, and octree-mutex wait time. Backends hand
//!    records to a [`Recorder`] (no-op [`NullRecorder`], in-memory
//!    [`MemoryRecorder`]/[`SharedRecorder`], or streaming [`JsonlRecorder`]).
//! 3. **Trace analysis** — [`TraceSummary`] folds a recorded trace back into
//!    per-phase percentile tables and a cache hit-ratio time series (the
//!    `octocache report` subcommand).
//! 4. **Sub-scan events** — an [`Event`] stream beneath the per-scan layer:
//!    cache hit/miss/evict (with bucket and Morton key), queue traffic, and
//!    worker batch spans, collected through per-thread [`EventBuffer`]s into
//!    an [`EventSink`]. [`EventAnalytics`] computes reuse-distance and
//!    residency histograms, per-octant hit ratios, bucket heatmaps and
//!    worker timelines; [`chrome_trace_json`] exports the stream for
//!    `chrome://tracing` (the `octocache analyze` subcommand).
//!
//! The paper's evaluation (Figures 13/22/23, Table 3) reports exactly these
//! quantities; the field mapping is documented in `DESIGN.md`.
//!
//! ```
//! use octocache_telemetry::{Histogram, PhaseTimes, ScanRecord, Telemetry};
//! use std::time::Duration;
//!
//! let mut t = Telemetry::new("example");
//! t.record(ScanRecord {
//!     times: PhaseTimes { ray_tracing: Duration::from_micros(120), ..Default::default() },
//!     observations: 64,
//!     cache_hits: 48,
//!     ..Default::default()
//! });
//! assert_eq!(t.scans(), 1);
//! assert!(t.totals().ray_tracing >= Duration::from_micros(120));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytics;
mod chrome;
mod event;
mod hist;
mod phase;
mod record;
mod recorder;
mod trace;

pub use analytics::{BatchSpan, BucketStats, EventAnalytics, OctantStats, WorkerTimeline};
pub use chrome::chrome_trace_json;
pub use event::{
    read_events_jsonl, read_events_jsonl_path, write_events_jsonl, Event, EventBuffer, EventKind,
    EventLog, EventSink, DEFAULT_BUFFER_CAPACITY, DEFAULT_SINK_CAPACITY,
};
pub use hist::{Counter, Histogram};
pub use phase::{Phase, PhaseHistograms, PhaseTimes};
pub use record::{DurableMetrics, ScanMetrics, ScanRecord, SnapshotMetrics};
pub use recorder::{
    JsonlRecorder, MemoryRecorder, NullRecorder, Recorder, SharedRecorder, Telemetry,
};
pub use trace::{
    read_jsonl, read_jsonl_path, read_jsonl_prefix, read_jsonl_prefix_path, write_jsonl,
    HitRatioPoint, PhaseQuantiles, TraceSummary,
};
