//! Recorder sinks for [`ScanRecord`] streams and the per-backend
//! [`Telemetry`] aggregator.

use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::phase::{PhaseHistograms, PhaseTimes};
use crate::record::ScanRecord;

/// A sink for per-scan trace events.
///
/// Backends call [`Recorder::record_scan`] once per `insert_scan`;
/// recording must never change mapping behaviour (the repository's
/// `NullRecorder`-equivalence test checks map contents are identical with
/// and without a recorder attached).
pub trait Recorder: Send {
    /// Consumes one per-scan event.
    fn record_scan(&mut self, record: &ScanRecord);

    /// Flushes buffered output (called by backends from `finish`).
    fn flush(&mut self) {}
}

/// Discards every event. Useful to exercise the recording path with no
/// observable output.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record_scan(&mut self, _record: &ScanRecord) {}
}

/// Buffers every event in memory.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    records: Vec<ScanRecord>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events.
    pub fn records(&self) -> &[ScanRecord] {
        &self.records
    }

    /// Consumes the recorder, returning the events.
    pub fn into_records(self) -> Vec<ScanRecord> {
        self.records
    }
}

impl Recorder for MemoryRecorder {
    fn record_scan(&mut self, record: &ScanRecord) {
        self.records.push(record.clone());
    }
}

/// A cloneable in-memory recorder: every clone appends to the same shared
/// buffer. This is how callers read a trace back out of a backend that was
/// consumed by value (e.g. a UAV mission run or a bench harness).
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder {
    records: Arc<Mutex<Vec<ScanRecord>>>,
}

impl SharedRecorder {
    /// An empty shared recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events recorded so far.
    pub fn records(&self) -> Vec<ScanRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for SharedRecorder {
    fn record_scan(&mut self, record: &ScanRecord) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record.clone());
    }
}

/// Streams events as JSON Lines to any writer (one record per line).
///
/// The writer is flushed after **every record** (line-buffered), not just on
/// [`Recorder::flush`]/drop: a crashed or killed process leaves a trace file
/// whose complete lines are all parseable, with at most one torn line at the
/// tail — which [`crate::read_jsonl_prefix`] drops cleanly. Each line leaves
/// the buffer as a single `write`, so torn lines only happen when the kernel
/// itself splits a write.
pub struct JsonlRecorder<W: Write + Send> {
    out: W,
}

impl JsonlRecorder<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncates) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlRecorder {
            out: std::io::BufWriter::new(file),
        })
    }
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlRecorder { out }
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlRecorder<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn record_scan(&mut self, record: &ScanRecord) {
        // Trace output is best-effort: a full disk must not abort mapping.
        let _ = writeln!(self.out, "{}", serde::json::to_string(record));
        // Per-record flush keeps the on-disk trace a parseable prefix even
        // if the process dies before `flush`/drop runs.
        let _ = self.out.flush();
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl<W: Write + Send> Drop for JsonlRecorder<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Per-backend telemetry state: cumulative [`PhaseTimes`], per-phase
/// latency [`PhaseHistograms`], and an optional attached [`Recorder`].
///
/// Backends own one of these instead of a bare `PhaseTimes` accumulator.
/// [`Telemetry::record`] stamps the scan sequence number and backend name
/// onto the event, folds it into the totals and histograms, and forwards it
/// to the recorder (if any). With no recorder attached the cost is a few
/// histogram increments per scan and mapping behaviour is unchanged.
pub struct Telemetry {
    backend: String,
    seq: u64,
    totals: PhaseTimes,
    hists: PhaseHistograms,
    recorder: Option<Box<dyn Recorder>>,
}

impl Telemetry {
    /// Fresh telemetry for a backend with the given display name.
    pub fn new(backend: impl Into<String>) -> Self {
        Telemetry {
            backend: backend.into(),
            seq: 0,
            totals: PhaseTimes::default(),
            hists: PhaseHistograms::new(),
            recorder: None,
        }
    }

    /// Attaches a recorder (replacing any previous one).
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Records one scan: stamps `seq` and `backend`, accumulates totals and
    /// per-phase histograms, and forwards the event to the recorder.
    pub fn record(&mut self, mut record: ScanRecord) {
        record.seq = self.seq;
        record.backend.clone_from(&self.backend);
        self.seq += 1;
        self.totals += record.times;
        self.hists.record_times(&record.times);
        if let Some(r) = self.recorder.as_mut() {
            r.record_scan(&record);
        }
    }

    /// Adds phase time that belongs to no single scan (e.g. final flush
    /// work) to the totals only.
    pub fn add_times(&mut self, times: PhaseTimes) {
        self.totals += times;
    }

    /// Scans recorded so far.
    pub fn scans(&self) -> u64 {
        self.seq
    }

    /// Cumulative phase times (the historical `PhaseTimes` summary view).
    pub fn totals(&self) -> PhaseTimes {
        self.totals
    }

    /// Per-phase latency histograms over the recorded scans.
    pub fn histograms(&self) -> &PhaseHistograms {
        &self.hists
    }

    /// Flushes the attached recorder, if any.
    pub fn flush(&mut self) {
        if let Some(r) = self.recorder.as_mut() {
            r.flush();
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("backend", &self.backend)
            .field("scans", &self.seq)
            .field("totals", &self.totals)
            .field("recorder", &self.recorder.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn scan(ray_us: u64, obs: u64, hits: u64) -> ScanRecord {
        ScanRecord {
            times: PhaseTimes {
                ray_tracing: Duration::from_micros(ray_us),
                ..Default::default()
            },
            observations: obs,
            cache_hits: hits,
            ..Default::default()
        }
    }

    #[test]
    fn telemetry_stamps_seq_and_backend() {
        let shared = SharedRecorder::new();
        let mut t = Telemetry::new("test-backend");
        t.set_recorder(Box::new(shared.clone()));
        t.record(scan(100, 10, 5));
        t.record(scan(300, 20, 9));
        t.flush();
        let records = shared.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert!(records.iter().all(|r| r.backend == "test-backend"));
        assert_eq!(t.scans(), 2);
        assert_eq!(t.totals().ray_tracing, Duration::from_micros(400));
        assert_eq!(t.histograms().get(crate::Phase::RayTracing).count(), 2);
    }

    #[test]
    fn add_times_skips_histograms() {
        let mut t = Telemetry::new("x");
        t.add_times(PhaseTimes {
            octree_update: Duration::from_millis(3),
            ..Default::default()
        });
        assert_eq!(t.scans(), 0);
        assert_eq!(t.totals().octree_update, Duration::from_millis(3));
        assert_eq!(t.histograms().samples(), 0);
    }

    #[test]
    fn memory_recorder_buffers() {
        let mut m = MemoryRecorder::new();
        m.record_scan(&scan(1, 2, 1));
        assert_eq!(m.records().len(), 1);
        assert_eq!(m.into_records().len(), 1);
    }

    #[test]
    fn jsonl_recorder_flushes_on_drop() {
        // A BufWriter-backed recorder holds records in memory until a flush;
        // dropping the recorder (e.g. the owning backend going away without
        // `finish`) must still produce a complete trace file.
        let path =
            std::env::temp_dir().join(format!("octocache-jsonl-drop-{}.jsonl", std::process::id()));
        {
            let mut r = JsonlRecorder::create(&path).unwrap();
            r.record_scan(&scan(10, 4, 2));
            r.record_scan(&scan(20, 8, 5));
            // No explicit flush: rely on Drop.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(text.lines().count(), 2, "drop did not flush: {text:?}");
        let last: ScanRecord = serde::json::from_str(text.lines().last().unwrap()).unwrap();
        assert_eq!(last.observations, 8);
        assert_eq!(last.cache_hits, 5);
    }

    #[test]
    fn jsonl_recorder_writes_one_line_per_record() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.record_scan(&scan(10, 4, 2));
        r.record_scan(&scan(20, 4, 3));
        let text = String::from_utf8(std::mem::take(&mut r.out)).unwrap();
        assert_eq!(text.lines().count(), 2);
        let first: ScanRecord = serde::json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.observations, 4);
    }
}
