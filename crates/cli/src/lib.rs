//! Implementation of the `octocache` command-line tool.
//!
//! Subcommands:
//!
//! * `generate <dataset> <out.scanlog> [--scale S] [--seed N]` — generate a
//!   synthetic scan log (datasets: `fr079-corridor`, `freiburg-campus`,
//!   `new-college`).
//! * `build <in.scanlog> <out.map> [--backend B] [--resolution R]
//!   [--buckets N] [--tau T] [--workers N] [--tree-layout L]
//!   [--trace out.jsonl]` — build an occupancy map (backends: `octomap`,
//!   `octomap-rt`, `serial`, `serial-rt`, `parallel`, `parallel-rt`),
//!   printing per-phase timings and cache statistics; `--workers N` (1, 2,
//!   4 or 8; parallel backends only) selects the number of octree-update
//!   workers; `--tree-layout` picks the octree storage layout (`pointer`
//!   or `arena`); `--trace` streams one JSON scan record per line to a
//!   file; `--events` records the sub-scan event stream (cache
//!   hit/miss/evict, queue traffic, worker batch spans) to a JSONL file
//!   for `analyze`.
//! * `report <trace.jsonl> [--json]` — per-phase latency percentiles and
//!   the cache hit-ratio time series of a recorded trace; `--json` emits
//!   the summary as machine-readable JSON instead.
//! * `analyze <events.jsonl> [--trace-out trace.json]` — reuse-distance,
//!   cache-residency, per-octant and bucket-heatmap analytics over a
//!   recorded event stream, plus a Chrome Trace Event Format export
//!   loadable in `chrome://tracing` or Perfetto.
//! * `info <map>` — structural statistics of a serialised map, plus an
//!   `engine` line (executor, workers, tree layout, config digest)
//!   identifying the execution configuration the backend flags select.
//! * `query <map> [<x> <y> <z>] [--ray O:D] [--batch points.txt]
//!   [--box MIN:MAX]` — read queries answered through the snapshot query
//!   engine ([`octocache::MapSnapshot`]): point occupancy, ray casting,
//!   Morton-batched multi-point lookup (reporting traversal prefix reuse),
//!   and axis-aligned box queries.
//! * `diff <map_a> <map_b>` — voxel-level agreement between two maps.
//! * `recover <journal-dir> [<out.map>]` — reconstruct the map persisted by
//!   a (possibly crashed) `build --journal` run: newest intact checkpoint
//!   plus journal replay; without `<out.map>` it verifies and reports only.
//!
//! The library surface exists so the whole tool is unit-testable without
//! spawning processes; `main` is a thin wrapper around [`run`].

use std::fmt;
use std::fmt::Write as _;

use octocache::pipeline::{MappingSystem, OctoMapSystem, RayTracer};
use octocache::query::RayCastResult;
use octocache::{
    CacheConfig, DurableError, DurableMap, FaultPlan, MapSnapshot, ParallelOctoCache,
    PipelineError, SerialOctoCache, TreeLayout,
};
use octocache_datasets::{io as scanlog, Dataset, DatasetConfig};
use octocache_geom::{Aabb, Point3, VoxelGrid};
use octocache_octomap::{compare, io as mapio, io_bt, OccupancyOcTree, OccupancyParams};

/// A typed CLI failure, each category mapped to a distinct process exit
/// code (see [`CliError::exit_code`]) so scripts can tell classes of
/// failure apart without parsing stderr.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown subcommand, malformed flag or value.
    Usage(String),
    /// A filesystem operation failed (open/create/read/write).
    Io(String),
    /// An input stream (scan log or trace) could not be parsed —
    /// truncated, garbage, or the wrong format.
    ScanLog(String),
    /// A serialised map could not be parsed.
    Map(String),
    /// Well-formed input described invalid geometry (point outside the
    /// mapped cube, non-finite coordinate).
    Geom(String),
    /// The mapping pipeline failed mid-build (worker fault).
    Pipeline(PipelineError),
    /// The durability layer failed: journal/checkpoint I/O, corrupt durable
    /// state, or nothing to recover.
    Durable(DurableError),
}

impl CliError {
    /// The process exit code for this failure class: usage 2, I/O 3,
    /// scan-log/trace parse 4, map parse 5, geometry 6, pipeline fault 7,
    /// durability 8.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::ScanLog(_) => 4,
            CliError::Map(_) => 5,
            CliError::Geom(_) => 6,
            CliError::Pipeline(_) => 7,
            CliError::Durable(_) => 8,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Io(m)
            | CliError::ScanLog(m)
            | CliError::Map(m)
            | CliError::Geom(m) => f.write_str(m),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::Durable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_string())
    }
}

impl From<PipelineError> for CliError {
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Geom(g) => CliError::Geom(format!("invalid scan geometry: {g}")),
            PipelineError::Durable(d) => CliError::Durable(d),
            other => CliError::Pipeline(other),
        }
    }
}

/// Executes a command line (already split into arguments, program name
/// excluded) and returns the text to print.
///
/// # Errors
///
/// Returns a message describing what was wrong with the invocation or what
/// failed while executing it.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

fn usage() -> String {
    "octocache — occupancy mapping with a voxel cache (OctoCache reproduction)

USAGE:
  octocache generate <dataset> <out.scanlog> [--scale S] [--seed N]
  octocache build <in.scanlog> <out.map> [--backend B] [--resolution R] [--buckets N] [--tau T] [--workers N] [--tree-layout pointer|arena] [--format ot|bt] [--trace out.jsonl] [--events out.jsonl] [--strict] [--fault SPEC] [--journal DIR] [--checkpoint-every N] [--mem-budget BYTES] [--max-restarts N] [--shed-deadline MS]
  octocache report <trace.jsonl> [--json]
  octocache analyze <events.jsonl> [--trace-out trace.json]
  octocache info <map> [--backend B] [--workers N] [--buckets N] [--tau T] [--tree-layout pointer|arena]
  octocache query <map> [<x> <y> <z>] [--ray OX,OY,OZ:DX,DY,DZ] [--max-range R] [--ignore-unknown] [--batch points.txt] [--box MINX,MINY,MINZ:MAXX,MAXY,MAXZ]
  octocache diff <map_a> <map_b>
  octocache recover <journal-dir> [<out.map>] [--tree-layout pointer|arena] [--format ot|bt]
  octocache help

datasets: fr079-corridor | freiburg-campus | new-college
backends: octomap | octomap-rt | serial | serial-rt | parallel | parallel-rt
tree layouts: pointer (chased nodes, the paper's baseline) | arena (index-addressed node pool)

exit codes: 0 ok | 2 usage | 3 I/O | 4 bad scan log/trace | 5 bad map | 6 bad geometry | 7 pipeline fault | 8 durability"
        .to_string()
}

/// Flags that take no value (presence-only).
const BOOL_FLAGS: &[&str] = &["strict", "json", "ignore-unknown"];

/// Positional arguments and `--key value` flag pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits positional arguments from `--key value` flags.
fn parse_flags(args: &[String]) -> Result<ParsedArgs<'_>, CliError> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                flags.push((key, "true"));
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("flag --{key} needs a value")))?;
            flags.push((key, value.as_str()));
        } else {
            positional.push(a.as_str());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    flags.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn parse_f64(s: &str, what: &str) -> Result<f64, CliError> {
    s.parse::<f64>()
        .map_err(|_| CliError::Usage(format!("{what} must be a number, got `{s}`")))
}

fn parse_usize(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse::<usize>()
        .map_err(|_| CliError::Usage(format!("{what} must be an integer, got `{s}`")))
}

fn dataset_by_name(name: &str) -> Result<Dataset, CliError> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.name() == name)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset `{name}`")))
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = parse_flags(args)?;
    let [dataset_name, out_path] = pos.as_slice() else {
        return Err("usage: generate <dataset> <out.scanlog> [--scale S] [--seed N]".into());
    };
    let dataset = dataset_by_name(dataset_name)?;
    let mut config = DatasetConfig::default();
    if let Some(s) = flag(&flags, "scale") {
        config.scale = parse_f64(s, "--scale")?;
        if config.scale <= 0.0 || config.scale > 4.0 {
            return Err("--scale must be in (0, 4]".into());
        }
    }
    if let Some(s) = flag(&flags, "seed") {
        config.seed = parse_usize(s, "--seed")? as u64;
    }
    let seq = dataset.generate(&config);
    let file = std::fs::File::create(out_path)
        .map_err(|e| CliError::Io(format!("create {out_path}: {e}")))?;
    scanlog::write_scans(&seq, std::io::BufWriter::new(file))
        .map_err(|e| CliError::Io(format!("write {out_path}: {e}")))?;
    Ok(format!(
        "wrote {}: {} scans, {} points, range {} m (scale {})",
        out_path,
        seq.scans().len(),
        seq.total_points(),
        seq.max_range(),
        config.scale
    ))
}

fn load_scanlog(path: &str) -> Result<octocache_datasets::ScanSequence, CliError> {
    let file = std::fs::File::open(path).map_err(|e| CliError::Io(format!("open {path}: {e}")))?;
    scanlog::read_scans(std::io::BufReader::new(file))
        .map_err(|e| CliError::ScanLog(format!("bad scan log {path}: {e}")))
}

fn load_map(path: &str) -> Result<OccupancyOcTree, CliError> {
    let bytes = std::fs::read(path).map_err(|e| CliError::Io(format!("read {path}: {e}")))?;
    // Auto-detect: full log-odds stream first, then the compact binary.
    match mapio::read_tree(&bytes) {
        Ok(tree) => Ok(tree),
        Err(mapio::ReadError::BadMagic) => io_bt::read_binary_tree(&bytes)
            .map_err(|e| CliError::Map(format!("bad map {path}: {e}"))),
        Err(e) => Err(CliError::Map(format!("bad map {path}: {e}"))),
    }
}

fn cmd_build(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = parse_flags(args)?;
    let [in_path, out_path] = pos.as_slice() else {
        return Err(
            "usage: build <in.scanlog> <out.map> [--backend B] [--resolution R] [--buckets N] [--tau T] [--workers N]"
                .into(),
        );
    };
    let seq = load_scanlog(in_path)?;
    let resolution = match flag(&flags, "resolution") {
        Some(s) => parse_f64(s, "--resolution")?,
        None => 0.2,
    };
    let grid = VoxelGrid::new(resolution, 16).map_err(|e| format!("invalid resolution: {e}"))?;
    let buckets = match flag(&flags, "buckets") {
        Some(s) => parse_usize(s, "--buckets")?,
        None => 1 << 14,
    };
    let tau = match flag(&flags, "tau") {
        Some(s) => parse_usize(s, "--tau")?,
        None => 4,
    };
    let mut cache_builder = CacheConfig::builder();
    cache_builder
        .num_buckets(buckets.next_power_of_two())
        .tau(tau);
    // Supervisor knobs: a resident-memory budget for the pressure governor,
    // a worker-respawn budget, and the admission gate's latency deadline.
    // All default off — an unconfigured build behaves exactly as before.
    if let Some(s) = flag(&flags, "mem-budget") {
        let bytes = parse_usize(s, "--mem-budget")? as u64;
        if bytes == 0 {
            return Err("--mem-budget must be a non-zero byte count".into());
        }
        cache_builder.mem_budget(bytes);
    }
    if let Some(s) = flag(&flags, "max-restarts") {
        cache_builder.max_restarts(parse_usize(s, "--max-restarts")? as u32);
    }
    if let Some(s) = flag(&flags, "shed-deadline") {
        let ms = parse_f64(s, "--shed-deadline")?;
        if !ms.is_finite() || ms <= 0.0 {
            return Err("--shed-deadline must be a positive duration in ms".into());
        }
        cache_builder.shed_deadline(std::time::Duration::from_secs_f64(ms / 1e3));
    }
    // Octree storage layout; the flag overrides the `OCTO_TREE_LAYOUT`
    // environment default. Applies to every backend.
    let layout = match flag(&flags, "tree-layout") {
        Some(s) => {
            let layout: TreeLayout = s
                .parse()
                .map_err(|e: octocache::ParseLayoutError| CliError::Usage(e.to_string()))?;
            cache_builder.tree_layout(layout);
            layout
        }
        None => TreeLayout::default_from_env(),
    };
    // Deterministic fault injection: `--fault <spec>` (or the `OCTO_FAULT` /
    // `OCTO_FAULT_SEED` environment variables) schedules a worker fault.
    // The hooks only exist when the binary was built with the
    // `fault-injection` feature; otherwise the flag is refused rather than
    // silently ignored.
    if let Some(spec) = flag(&flags, "fault") {
        if !cfg!(feature = "fault-injection") {
            return Err(CliError::Usage(
                "--fault requires a binary built with `--features fault-injection`".into(),
            ));
        }
        let plan = FaultPlan::from_spec(spec).ok_or_else(|| {
            CliError::Usage(format!(
                "malformed --fault spec `{spec}` (kill:<w>@<b> | killevery:<w>@<n> | stall:<w>@<b>:<us> | spawn:<w> | fill:<w> | seed:<n>)"
            ))
        })?;
        cache_builder.fault_plan(plan);
    } else if cfg!(feature = "fault-injection") {
        if let Some(plan) = FaultPlan::from_env() {
            cache_builder.fault_plan(plan);
        }
    }
    let strict = flag(&flags, "strict").is_some();
    // Sub-scan event recording (`--events out.jsonl`): a per-run switch, so
    // it rides on the config like `fault_plan` and is never serialised.
    let events_path = flag(&flags, "events");
    if events_path.is_some() {
        cache_builder.events(true);
    }
    // Durable mapping: `--journal DIR` wraps the chosen backend in the
    // checkpoint + write-ahead-journal layer; `--checkpoint-every N` sets
    // the checkpoint cadence in scans (0 = only the final seal checkpoint).
    let journal_dir = flag(&flags, "journal");
    if let Some(s) = flag(&flags, "checkpoint-every") {
        if journal_dir.is_none() {
            return Err(CliError::Usage(
                "--checkpoint-every requires --journal".into(),
            ));
        }
        cache_builder.checkpoint_every(parse_usize(s, "--checkpoint-every")? as u64);
    }
    let cache = cache_builder.build().map_err(|e| e.to_string())?;
    let backend_name = flag(&flags, "backend").unwrap_or("serial");
    let workers = match flag(&flags, "workers") {
        Some(s) => {
            let n = parse_usize(s, "--workers")?;
            if !matches!(n, 1 | 2 | 4 | 8) {
                return Err(CliError::Usage(format!(
                    "--workers must be 1, 2, 4 or 8, got {n}"
                )));
            }
            if !matches!(backend_name, "parallel" | "parallel-rt") {
                return Err(CliError::Usage(format!(
                    "--workers only applies to the parallel backends, not `{backend_name}`"
                )));
            }
            n
        }
        None => 1,
    };
    let params = OccupancyParams::default();
    // OctoMapSystem takes no CacheConfig, so its event switch is a method.
    let octomap_with = |rt: RayTracer| {
        let mut sys = OctoMapSystem::with_layout(grid, params, rt, layout);
        if events_path.is_some() {
            sys.enable_events();
        }
        sys
    };
    let backend: Box<dyn MappingSystem> = match backend_name {
        "octomap" => Box::new(octomap_with(RayTracer::Standard)),
        "octomap-rt" => Box::new(octomap_with(RayTracer::Dedup)),
        "serial" => Box::new(SerialOctoCache::new(grid, params, cache)),
        "serial-rt" => Box::new(SerialOctoCache::with_ray_tracer(
            grid,
            params,
            cache,
            RayTracer::Dedup,
        )),
        "parallel" => Box::new(ParallelOctoCache::with_workers(
            grid,
            params,
            cache,
            RayTracer::Standard,
            workers,
        )),
        "parallel-rt" => Box::new(ParallelOctoCache::with_workers(
            grid,
            params,
            cache,
            RayTracer::Dedup,
            workers,
        )),
        other => return Err(CliError::Usage(format!("unknown backend `{other}`"))),
    };
    // The durability wrapper is applied before the trace recorder attaches,
    // so journal/checkpoint latencies get stamped onto every scan record.
    // The concrete handle is kept (not type-erased) because `seal()` and
    // `stats()` are not part of the `MappingSystem` trait.
    enum BuildBackend {
        Plain(Box<dyn MappingSystem>),
        Durable(Box<DurableMap>),
    }
    impl BuildBackend {
        fn as_dyn(&mut self) -> &mut dyn MappingSystem {
            match self {
                BuildBackend::Plain(b) => &mut **b,
                BuildBackend::Durable(d) => &mut **d,
            }
        }
    }
    let mut backend = match journal_dir {
        Some(dir) => {
            let journal_rt = if backend_name.ends_with("-rt") {
                RayTracer::Dedup
            } else {
                RayTracer::Standard
            };
            BuildBackend::Durable(Box::new(
                DurableMap::create(dir, backend, params, journal_rt, &cache)
                    .map_err(CliError::Durable)?,
            ))
        }
        None => BuildBackend::Plain(backend),
    };
    let trace_path = flag(&flags, "trace");
    if let Some(path) = trace_path {
        let recorder = octocache::JsonlRecorder::create(path)
            .map_err(|e| format!("create trace {path}: {e}"))?;
        backend.as_dyn().set_recorder(Box::new(recorder));
    }

    let t0 = std::time::Instant::now();
    let mut observations = 0usize;
    let mut hits = 0u64;
    // Worker faults degrade the build rather than abort it (the pipeline
    // reroutes the dead worker's share inline); each one is reported as a
    // diagnostic line. `--strict` makes the first fault fatal. Geometry
    // errors always abort: the scan log itself is wrong. Durability errors
    // also always abort: the write-ahead contract is broken.
    let mut scan_faults: Vec<(usize, PipelineError)> = Vec::new();
    for (i, scan) in seq.scans().iter().enumerate() {
        match backend
            .as_dyn()
            .insert_scan(scan.origin, &scan.points, seq.max_range())
        {
            Ok(report) => {
                observations += report.observations;
                hits += report.cache_hits;
            }
            Err(e @ (PipelineError::Geom(_) | PipelineError::Durable(_))) => return Err(e.into()),
            Err(e) => {
                if strict {
                    return Err(e.into());
                }
                scan_faults.push((i, e));
            }
        }
    }
    backend.as_dyn().finish();
    let elapsed = t0.elapsed();
    // Flush the recorded event stream (if any) before the tree is taken.
    let mut events_written: Option<(usize, u64)> = None;
    if let Some(path) = events_path {
        let log = backend.as_dyn().take_events().unwrap_or_default();
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::Io(format!("create events {path}: {e}")))?;
        let mut out = std::io::BufWriter::new(file);
        octocache_telemetry::write_events_jsonl(&mut out, &log.events)
            .and_then(|()| std::io::Write::flush(&mut out))
            .map_err(|e| CliError::Io(format!("write events {path}: {e}")))?;
        events_written = Some((log.events.len(), log.dropped));
    }
    let times = backend.as_dyn().phase_times();
    let cache_stats = backend.as_dyn().cache_stats();
    let tree_stats = backend.as_dyn().tree_stats();
    let integrity = backend.as_dyn().integrity();
    let fault_counters = backend.as_dyn().fault_counters();
    let integrity_history = backend.as_dyn().integrity_transitions();

    let (tree, durable_stats) = match backend {
        BuildBackend::Plain(b) => (b.take_tree(), None),
        BuildBackend::Durable(mut d) => {
            // `finish` already sealed best-effort; re-sealing is idempotent
            // and surfaces any failure as a typed exit-8 error.
            d.seal().map_err(CliError::Durable)?;
            let stats = d.stats();
            (d.take_tree(), Some(stats))
        }
    };
    let bytes = match flag(&flags, "format") {
        None | Some("ot") => mapio::write_tree(&tree),
        Some("bt") => io_bt::write_binary_tree(&tree),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown format `{other}` (use ot or bt)"
            )))
        }
    };
    std::fs::write(out_path, &bytes).map_err(|e| CliError::Io(format!("write {out_path}: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "built {out_path} with {backend_name} in {:.3} s",
        elapsed.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  observations {observations}, cache hits {hits} ({:.1} %)",
        if observations > 0 {
            hits as f64 / observations as f64 * 100.0
        } else {
            0.0
        }
    );
    let _ = writeln!(out, "  phases: {times}");
    if let Some(cs) = cache_stats {
        let _ = writeln!(
            out,
            "  cache: hit rate {:.1} %, {} evictions, {} octree seeds",
            cs.hit_rate() * 100.0,
            cs.evictions,
            cs.octree_seeds
        );
    }
    if let Some(ts) = tree_stats {
        let _ = writeln!(
            out,
            "  octree: {} node visits, {:.2} visits/update",
            ts.node_visits,
            ts.visits_per_update()
        );
    }
    if let Some(path) = trace_path {
        let _ = writeln!(out, "  trace: {} scan records -> {path}", seq.scans().len());
    }
    if let (Some(dir), Some(ds)) = (journal_dir, durable_stats) {
        let _ = writeln!(
            out,
            "  durable: {} journal records ({:.1} KiB), {} checkpoints (newest epoch {}) -> {dir}",
            ds.journal_records,
            ds.journal_bytes as f64 / 1024.0,
            ds.checkpoints_written,
            ds.last_checkpoint_epoch
        );
    }
    if let (Some(path), Some((count, dropped))) = (events_path, events_written) {
        let _ = writeln!(out, "  events: {count} events -> {path}");
        if dropped > 0 {
            let _ = writeln!(
                out,
                "  warning: {dropped} events dropped at capacity caps (stream is truncated)"
            );
        }
    }
    for (i, e) in &scan_faults {
        let _ = writeln!(out, "  scan {i}: {e}");
    }
    if integrity.is_degraded() {
        let f = fault_counters;
        let _ = writeln!(
            out,
            "  integrity: {integrity} — {} panics, {} spawn failures, {} stalls, \
             {} partial batches, {} batches rerouted (use --strict to fail fast)",
            f.worker_panics,
            f.spawn_failures,
            f.stall_timeouts,
            f.partial_batches,
            f.batches_rerouted
        );
    } else if fault_counters != octocache::FaultCounters::default() {
        // Faults occurred but the supervisor healed them: the sticky
        // verdict alone would hide that anything happened, so print the
        // full counter set here too.
        let f = fault_counters;
        let _ = writeln!(
            out,
            "  integrity: {integrity} (healed) — {} panics, {} spawn failures, {} stalls, \
             {} partial batches, {} batches rerouted",
            f.worker_panics,
            f.spawn_failures,
            f.stall_timeouts,
            f.partial_batches,
            f.batches_rerouted
        );
    }
    if fault_counters.restarts + fault_counters.heals > 0 {
        let _ = writeln!(
            out,
            "  supervisor: {} worker restarts, {} heals",
            fault_counters.restarts, fault_counters.heals
        );
    }
    if !integrity_history.is_empty() {
        let hist: Vec<String> = integrity_history.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(out, "  integrity history: {}", hist.join("; "));
    }
    let _ = write!(
        out,
        "  tree: {} nodes, {} leaves, {} layout, {:.1} KiB resident, {:.1} KiB serialised",
        tree.num_nodes(),
        tree.num_leaves(),
        tree.layout(),
        tree.memory_usage() as f64 / 1024.0,
        bytes.len() as f64 / 1024.0
    );
    Ok(out)
}

fn cmd_recover(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = parse_flags(args)?;
    let (dir, out_path) = match pos.as_slice() {
        [dir] => (*dir, None),
        [dir, out] => (*dir, Some(*out)),
        _ => {
            return Err(
                "usage: recover <journal-dir> [<out.map>] [--tree-layout pointer|arena] \
                 [--format ot|bt]"
                    .into(),
            )
        }
    };
    let layout = match flag(&flags, "tree-layout") {
        Some(s) => s
            .parse()
            .map_err(|e: octocache::ParseLayoutError| CliError::Usage(e.to_string()))?,
        None => TreeLayout::default_from_env(),
    };
    let (tree, report) =
        octocache::durable::recover_with_layout(dir, layout).map_err(CliError::Durable)?;
    let mut out = String::new();
    let _ = writeln!(out, "recovered {dir}");
    for line in report.render().lines() {
        let _ = writeln!(out, "  {line}");
    }
    let _ = writeln!(
        out,
        "  tree: {} nodes, {} leaves, {} layout",
        tree.num_nodes(),
        tree.num_leaves(),
        tree.layout()
    );
    match out_path {
        // The recovered map is written as a checksummed v2 stream stamped
        // with its scan epoch, so downstream tools can re-verify it.
        Some(path) => {
            let bytes = match flag(&flags, "format") {
                None | Some("ot") => mapio::write_tree_v2(&tree, report.final_epoch),
                Some("bt") => io_bt::write_binary_tree_v2(&tree, report.final_epoch),
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "unknown format `{other}` (use ot or bt)"
                    )))
                }
            };
            std::fs::write(path, &bytes).map_err(|e| CliError::Io(format!("write {path}: {e}")))?;
            let _ = write!(
                out,
                "  wrote {path} ({:.1} KiB)",
                bytes.len() as f64 / 1024.0
            );
        }
        None => {
            let _ = write!(out, "  (dry run: no output map written)");
        }
    }
    Ok(out)
}

fn cmd_report(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = parse_flags(args)?;
    // Reject unknown flags with the typed usage error (exit code 2) instead
    // of silently ignoring them — consistent with the never-panic/exit-code
    // contract of every other subcommand.
    let mut json = false;
    for (key, _) in &flags {
        match *key {
            "json" => json = true,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown flag --{other} for report (only --json)"
                )))
            }
        }
    }
    let [path] = pos.as_slice() else {
        return Err("usage: report <trace.jsonl> [--json]".into());
    };
    // Crash-tolerant reads: a process killed mid-run leaves a trace whose
    // final line may be torn. The parseable prefix is still reported (with
    // a warning); a file with damage and *zero* parseable records is not a
    // trace at all and stays a typed parse error.
    let (records, damage) = octocache_telemetry::read_jsonl_prefix_path(path).map_err(|e| {
        if e.starts_with("open ") {
            CliError::Io(e)
        } else {
            CliError::ScanLog(format!("bad trace {path}: {e}"))
        }
    })?;
    if let Some(d) = &damage {
        if records.is_empty() {
            return Err(CliError::ScanLog(format!("bad trace {path}: {d}")));
        }
    }
    if records.is_empty() && !json {
        return Ok(format!("{path}: empty trace"));
    }
    let summary = octocache_telemetry::TraceSummary::from_records(&records);
    Ok(if json {
        summary.to_json()
    } else {
        let mut out = summary.render();
        if let Some(d) = damage {
            let _ = write!(
                out,
                "\nwarning: {d}; reporting the {} intact records before it",
                records.len()
            );
        }
        out
    })
}

fn cmd_analyze(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = parse_flags(args)?;
    let mut trace_out = "trace.json";
    for (key, value) in &flags {
        match *key {
            "trace-out" => trace_out = value,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown flag --{other} for analyze (only --trace-out)"
                )))
            }
        }
    }
    let [path] = pos.as_slice() else {
        return Err("usage: analyze <events.jsonl> [--trace-out trace.json]".into());
    };
    let events = octocache_telemetry::read_events_jsonl_path(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::InvalidData {
            CliError::ScanLog(format!("bad event stream {path}: {e}"))
        } else {
            CliError::Io(format!("open {path}: {e}"))
        }
    })?;
    let analytics = octocache_telemetry::EventAnalytics::from_events(&events);
    let chrome = octocache_telemetry::chrome_trace_json(&events);
    std::fs::write(trace_out, chrome)
        .map_err(|e| CliError::Io(format!("write {trace_out}: {e}")))?;
    let mut out = analytics.render();
    let _ = write!(
        out,
        "\nchrome trace: {} events -> {trace_out} (load in chrome://tracing or ui.perfetto.dev)",
        events.len()
    );
    Ok(out)
}

fn cmd_info(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = parse_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("usage: info <map> [--backend B] [--workers N] [--buckets N] [--tau T] [--tree-layout pointer|arena]".into());
    };
    let tree = load_map(path)?;
    let mut out = String::new();
    let _ = writeln!(out, "map {path}");
    let _ = writeln!(out, "  resolution: {} m", tree.grid().resolution());
    let _ = writeln!(out, "  tree depth: {}", tree.grid().depth());
    let _ = writeln!(out, "  nodes: {}", tree.num_nodes());
    let _ = writeln!(out, "  leaves: {}", tree.num_leaves());
    let _ = writeln!(out, "  occupied voxels: {}", tree.occupied_voxel_count());
    let _ = writeln!(
        out,
        "  memory: {:.1} KiB",
        tree.memory_usage() as f64 / 1024.0
    );
    let _ = write!(out, "  engine: {}", engine_line(&flags)?);
    Ok(out)
}

/// Describes the scan-lifecycle engine a `build` with the same flags would
/// run: the executor driven by `core::engine`, its worker count, the octree
/// storage layout and the cache-geometry digest — enough for a trace or a
/// bug report to pin down the exact execution configuration. Flags and
/// defaults mirror `cmd_build`.
fn engine_line(flags: &[(&str, &str)]) -> Result<String, CliError> {
    let backend_name = flag(flags, "backend").unwrap_or("serial");
    let executor = match backend_name {
        "octomap" | "octomap-rt" => "BaselineExecutor",
        "serial" | "serial-rt" => "SerialExecutor",
        "parallel" | "parallel-rt" => "ParallelExecutor",
        other => {
            return Err(CliError::Usage(format!(
            "unknown backend `{other}` (octomap|octomap-rt|serial|serial-rt|parallel|parallel-rt)"
        )))
        }
    };
    let workers = match flag(flags, "workers") {
        Some(s) => {
            let n = parse_usize(s, "--workers")?;
            if !matches!(n, 1 | 2 | 4 | 8) {
                return Err(CliError::Usage(format!(
                    "--workers must be 1, 2, 4 or 8, got {n}"
                )));
            }
            if !matches!(backend_name, "parallel" | "parallel-rt") {
                return Err(CliError::Usage(format!(
                    "--workers only applies to the parallel backends, not `{backend_name}`"
                )));
            }
            n
        }
        None => 1,
    };
    let buckets = match flag(flags, "buckets") {
        Some(s) => parse_usize(s, "--buckets")?,
        None => 1 << 14,
    };
    let tau = match flag(flags, "tau") {
        Some(s) => parse_usize(s, "--tau")?,
        None => 4,
    };
    let mut cache_builder = CacheConfig::builder();
    cache_builder
        .num_buckets(buckets.next_power_of_two())
        .tau(tau);
    let layout = match flag(flags, "tree-layout") {
        Some(s) => {
            let layout: TreeLayout = s
                .parse()
                .map_err(|e: octocache::ParseLayoutError| CliError::Usage(e.to_string()))?;
            cache_builder.tree_layout(layout);
            layout
        }
        None => TreeLayout::default_from_env(),
    };
    let cache = cache_builder.build().map_err(|e| e.to_string())?;
    Ok(format!(
        "executor={executor} workers={workers} tree-layout={} config-digest={:016x}",
        layout.name(),
        cache.digest()
    ))
}

/// Parses `X,Y,Z` into a point.
fn parse_point3(s: &str, what: &str) -> Result<Point3, CliError> {
    let parts: Vec<&str> = s.split(',').collect();
    let [x, y, z] = parts.as_slice() else {
        return Err(CliError::Usage(format!("{what} must be X,Y,Z, got `{s}`")));
    };
    Ok(Point3::new(
        parse_f64(x, what)?,
        parse_f64(y, what)?,
        parse_f64(z, what)?,
    ))
}

/// Formats one occupancy answer in the established `query` output shape.
fn format_occupancy(snap: &MapSnapshot, p: Point3, occupancy: Option<f32>) -> String {
    match occupancy {
        None => format!("{p}: unknown"),
        Some(l) => format!(
            "{p}: {} (log-odds {l:.3}, p = {:.3})",
            if snap.params().is_occupied(l) {
                "OCCUPIED"
            } else {
                "free"
            },
            octocache_octomap::logodds_to_prob(l)
        ),
    }
}

fn cmd_query(args: &[String]) -> Result<String, CliError> {
    let (pos, flags) = parse_flags(args)?;
    let (path, point) = match pos.as_slice() {
        [path] => (*path, None),
        [path, x, y, z] => (
            *path,
            Some(Point3::new(
                parse_f64(x, "x")?,
                parse_f64(y, "y")?,
                parse_f64(z, "z")?,
            )),
        ),
        _ => {
            return Err(
                "usage: query <map> [<x> <y> <z>] [--ray OX,OY,OZ:DX,DY,DZ] \
                        [--max-range R] [--ignore-unknown] [--batch points.txt] \
                        [--box MINX,MINY,MINZ:MAXX,MAXY,MAXZ]"
                    .into(),
            )
        }
    };
    // All read paths go through the snapshot engine — the same code a
    // concurrent reader would run against a live backend's QueryHandle.
    let snap = MapSnapshot::from_tree(load_map(path)?);
    let mut sections: Vec<String> = Vec::new();

    if let Some(p) = point {
        let key = snap
            .grid()
            .key_of(p)
            .map_err(|e| CliError::Geom(format!("point outside map: {e}")))?;
        sections.push(format_occupancy(&snap, p, snap.occupancy(key)));
    }

    if let Some(spec) = flag(&flags, "ray") {
        let (o, d) = spec
            .split_once(':')
            .ok_or_else(|| CliError::Usage(format!("--ray must be O:D, got `{spec}`")))?;
        let origin = parse_point3(o, "ray origin")?;
        let dir = parse_point3(d, "ray direction")?;
        let max_range = match flag(&flags, "max-range") {
            Some(v) => parse_f64(v, "max-range")?,
            None => 50.0,
        };
        let ignore_unknown = flag(&flags, "ignore-unknown").is_some();
        let result = snap
            .cast_ray(origin, dir, max_range, ignore_unknown)
            .map_err(|e| CliError::Geom(format!("invalid ray: {e}")))?;
        sections.push(match result {
            RayCastResult::Hit { key, distance } => {
                let c = snap.grid().center_of(key);
                format!("ray {origin} + t*{dir}: HIT {c} at {distance:.3} m")
            }
            RayCastResult::Unknown { key } => {
                let c = snap.grid().center_of(key);
                format!("ray {origin} + t*{dir}: UNKNOWN from {c}")
            }
            RayCastResult::Miss => {
                format!("ray {origin} + t*{dir}: free to max range {max_range} m")
            }
        });
    }

    if let Some(file) = flag(&flags, "batch") {
        let text = std::fs::read_to_string(file)
            .map_err(|e| CliError::Io(format!("cannot read {file}: {e}")))?;
        let mut points = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let nums: Vec<&str> = line.split_whitespace().collect();
            let [x, y, z] = nums.as_slice() else {
                return Err(CliError::ScanLog(format!(
                    "{file}:{}: expected `x y z`, got `{line}`",
                    lineno + 1
                )));
            };
            points.push(Point3::new(
                parse_f64(x, "batch x")?,
                parse_f64(y, "batch y")?,
                parse_f64(z, "batch z")?,
            ));
        }
        let keys = points
            .iter()
            .map(|&p| snap.grid().key_of(p))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| CliError::Geom(format!("batch point outside map: {e}")))?;
        let (answers, stats) = snap.batch_occupancy(&keys);
        let mut out = String::new();
        for (p, occ) in points.iter().zip(&answers) {
            let _ = writeln!(out, "{}", format_occupancy(&snap, *p, *occ));
        }
        let _ = writeln!(out, "batch: {} queries", stats.queries);
        let _ = writeln!(out, "  nodes visited: {}", stats.nodes_visited);
        let _ = write!(
            out,
            "  nodes reused: {} (prefix reuse {:.1}%)",
            stats.nodes_reused,
            stats.reuse_fraction() * 100.0
        );
        sections.push(out);
    }

    if let Some(spec) = flag(&flags, "box") {
        let (a, b) = spec
            .split_once(':')
            .ok_or_else(|| CliError::Usage(format!("--box must be MIN:MAX, got `{spec}`")))?;
        let bounds = Aabb::new(parse_point3(a, "box min")?, parse_point3(b, "box max")?);
        let occupied = snap
            .any_occupied_in_box(&bounds)
            .map_err(|e| CliError::Geom(format!("box outside map: {e}")))?;
        let leaves = snap
            .leaves_in_box(&bounds)
            .map_err(|e| CliError::Geom(format!("box outside map: {e}")))?;
        sections.push(format!(
            "box {} to {}: {} known leaves, {}",
            bounds.min,
            bounds.max,
            leaves.len(),
            if occupied {
                "contains OCCUPIED voxels"
            } else {
                "no occupied voxels"
            }
        ));
    }

    if sections.is_empty() {
        return Err("query needs a point (`<x> <y> <z>`), `--ray`, `--batch`, or `--box`".into());
    }
    Ok(sections.join("\n"))
}

fn cmd_diff(args: &[String]) -> Result<String, CliError> {
    let (pos, _) = parse_flags(args)?;
    let [path_a, path_b] = pos.as_slice() else {
        return Err("usage: diff <map_a> <map_b>".into());
    };
    let a = load_map(path_a)?;
    let b = load_map(path_b)?;
    let d = compare::diff(&a, &b, 1e-4);
    let mut out = String::new();
    let _ = writeln!(out, "diff {path_a} vs {path_b}");
    let _ = writeln!(out, "  known voxels: {}", d.known_voxels);
    let _ = writeln!(out, "  agreement: {:.4}", d.agreement());
    let _ = writeln!(out, "  occupied IoU: {:.4}", d.occupied_iou());
    let _ = writeln!(out, "  value mismatches: {}", d.value_mismatches);
    let _ = writeln!(out, "  coverage mismatches: {}", d.coverage_mismatches);
    let _ = write!(
        out,
        "  identical: {}",
        if d.is_identical() { "yes" } else { "no" }
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("octocache-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&s(&["help"])).unwrap().contains("generate"));
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn generate_build_info_query_diff_pipeline() {
        let log = temp_path("corridor.scanlog");
        let out = run(&s(&[
            "generate",
            "fr079-corridor",
            &log,
            "--scale",
            "0.05",
            "--seed",
            "42",
        ]))
        .unwrap();
        assert!(out.contains("scans"), "{out}");

        let map_a = temp_path("a.map");
        let out = run(&s(&[
            "build",
            &log,
            &map_a,
            "--backend",
            "serial",
            "--resolution",
            "0.4",
        ]))
        .unwrap();
        assert!(out.contains("built"), "{out}");
        assert!(out.contains("cache hits"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        assert!(out.contains("evictions"), "{out}");
        assert!(out.contains("visits/update"), "{out}");

        let map_b = temp_path("b.map");
        run(&s(&[
            "build",
            &log,
            &map_b,
            "--backend",
            "octomap",
            "--resolution",
            "0.4",
        ]))
        .unwrap();

        let info = run(&s(&["info", &map_a])).unwrap();
        assert!(info.contains("nodes:"), "{info}");
        assert!(info.contains("resolution: 0.4"), "{info}");
        // Default engine description: serial executor, one worker, and a
        // config digest pinning the cache geometry.
        assert!(
            info.contains("engine: executor=SerialExecutor workers=1"),
            "{info}"
        );
        assert!(info.contains("config-digest="), "{info}");

        // The engine line mirrors `build`'s backend flags.
        let info_par = run(&s(&[
            "info",
            &map_a,
            "--backend",
            "parallel",
            "--workers",
            "4",
        ]))
        .unwrap();
        assert!(
            info_par.contains("engine: executor=ParallelExecutor workers=4"),
            "{info_par}"
        );
        let info_arena = run(&s(&["info", &map_a, "--tree-layout", "arena"])).unwrap();
        assert!(info_arena.contains("tree-layout=arena"), "{info_arena}");
        // Same geometry, same digest — regardless of backend choice.
        let digest = |out: &str| {
            out.split("config-digest=")
                .nth(1)
                .unwrap()
                .trim()
                .to_string()
        };
        assert_eq!(digest(&info), digest(&info_par));
        // Different cache geometry changes the digest.
        let info_big = run(&s(&["info", &map_a, "--buckets", "32768"])).unwrap();
        assert_ne!(digest(&info), digest(&info_big));
        // `--workers` stays parallel-only, as in `build`.
        let err = run(&s(&["info", &map_a, "--workers", "4"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");

        // A corridor interior point is free.
        let q = run(&s(&["query", &map_a, "1.0", "0.0", "1.4"])).unwrap();
        assert!(q.contains("free"), "{q}");

        // Ray mode: casting down the corridor from a free interior point
        // reports something (hit, unknown, or free to range).
        let q = run(&s(&[
            "query",
            &map_a,
            "--ray",
            "1.0,0.0,1.4:1.0,0.0,0.0",
            "--max-range",
            "30",
        ]))
        .unwrap();
        assert!(q.contains("ray"), "{q}");

        // Batch mode: a small point file answers per point and reports the
        // Morton-sweep prefix-reuse statistics.
        let pts = temp_path("probe-points.txt");
        std::fs::write(
            &pts,
            "# probe points\n1.0 0.0 1.4\n1.2 0.0 1.4\n1.0 0.4 1.4\n",
        )
        .unwrap();
        let q = run(&s(&["query", &map_a, "--batch", &pts])).unwrap();
        assert_eq!(q.lines().filter(|l| l.starts_with('(')).count(), 3, "{q}");
        assert!(q.contains("batch: 3 queries"), "{q}");
        assert!(q.contains("prefix reuse"), "{q}");

        // Box mode: a box around the free interior reports leaf counts.
        let q = run(&s(&["query", &map_a, "--box", "0.5,-0.5,1.0:1.5,0.5,1.8"])).unwrap();
        assert!(q.contains("known leaves"), "{q}");

        // Modes compose: point + ray in one invocation, two output lines.
        let q = run(&s(&[
            "query",
            &map_a,
            "1.0",
            "0.0",
            "1.4",
            "--ray",
            "1.0,0.0,1.4:-1.0,0.0,0.0",
        ]))
        .unwrap();
        assert_eq!(q.lines().count(), 2, "{q}");

        // No query at all is a usage error.
        assert!(matches!(
            run(&s(&["query", &map_a])),
            Err(CliError::Usage(_))
        ));

        // Maps built from the same scan log agree exactly.
        let d = run(&s(&["diff", &map_a, &map_b])).unwrap();
        assert!(d.contains("identical: yes"), "{d}");
    }

    #[test]
    fn bt_format_roundtrips_through_info_and_query() {
        let log = temp_path("bt.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map = temp_path("bt.map");
        let out = run(&s(&[
            "build",
            &log,
            &map,
            "--resolution",
            "0.4",
            "--format",
            "bt",
        ]))
        .unwrap();
        assert!(out.contains("built"), "{out}");
        let info = run(&s(&["info", &map])).unwrap();
        assert!(info.contains("nodes:"), "{info}");
        let q = run(&s(&["query", &map, "1.0", "0.0", "1.4"])).unwrap();
        assert!(q.contains("free"), "{q}");
        // Unknown format rejected.
        assert!(run(&s(&["build", &log, &map, "--format", "xyz"])).is_err());
    }

    #[test]
    fn build_trace_then_report_prints_percentile_table() {
        let log = temp_path("trace.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map = temp_path("trace.map");
        let trace = temp_path("trace.jsonl");
        let out = run(&s(&[
            "build",
            &log,
            &map,
            "--backend",
            "parallel",
            "--resolution",
            "0.4",
            "--trace",
            &trace,
        ]))
        .unwrap();
        assert!(out.contains("trace:"), "{out}");

        // The trace is valid JSONL with one record per scan.
        let records = octocache_telemetry::read_jsonl_path(&trace).unwrap();
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.backend == "octocache-parallel"));
        assert!(records.iter().enumerate().all(|(i, r)| r.seq == i as u64));

        // The report renders the per-phase percentile table and hit-ratio
        // series (the acceptance criterion for the telemetry layer).
        let report = run(&s(&["report", &trace])).unwrap();
        assert!(report.contains("p50(us)"), "{report}");
        assert!(report.contains("p99(us)"), "{report}");
        assert!(report.contains("ray_tracing"), "{report}");
        assert!(report.contains("hit-ratio over scans"), "{report}");

        // Missing and empty traces are handled.
        assert!(run(&s(&["report", "/nonexistent.jsonl"])).is_err());
        let empty = temp_path("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        assert!(run(&s(&["report", &empty]))
            .unwrap()
            .contains("empty trace"));
    }

    #[test]
    fn build_with_workers_sweeps_and_matches_serial() {
        let log = temp_path("workers.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map_serial = temp_path("workers-serial.map");
        run(&s(&[
            "build",
            &log,
            &map_serial,
            "--backend",
            "serial",
            "--resolution",
            "0.4",
        ]))
        .unwrap();
        for n in ["1", "2", "4"] {
            let map = temp_path(&format!("workers-{n}.map"));
            let trace = temp_path(&format!("workers-{n}.jsonl"));
            let out = run(&s(&[
                "build",
                &log,
                &map,
                "--backend",
                "parallel",
                "--workers",
                n,
                "--resolution",
                "0.4",
                "--trace",
                &trace,
            ]))
            .unwrap();
            assert!(out.contains("built"), "{out}");
            // The trace carries one queue-depth / shard-size entry per
            // worker, and the merged map matches the serial build exactly.
            let records = octocache_telemetry::read_jsonl_path(&trace).unwrap();
            let workers: usize = n.parse().unwrap();
            assert!(records
                .iter()
                .all(|r| r.worker_queue_depths.len() == workers
                    && r.shard_batch_sizes.len() == workers));
            let expected = if workers == 1 {
                "octocache-parallel".to_string()
            } else {
                format!("octocache-parallelx{workers}")
            };
            assert!(records.iter().all(|r| r.backend == expected));
            let d = run(&s(&["diff", &map_serial, &map])).unwrap();
            assert!(d.contains("identical: yes"), "workers={n}: {d}");
        }
    }

    #[test]
    fn build_with_tree_layouts_produces_identical_maps() {
        let log = temp_path("layout.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map_pointer = temp_path("layout-pointer.map");
        let out = run(&s(&[
            "build",
            &log,
            &map_pointer,
            "--backend",
            "serial",
            "--resolution",
            "0.4",
            "--tree-layout",
            "pointer",
        ]))
        .unwrap();
        assert!(out.contains("pointer layout"), "{out}");
        for backend in ["serial", "octomap", "parallel"] {
            let map_arena = temp_path(&format!("layout-arena-{backend}.map"));
            let trace = temp_path(&format!("layout-arena-{backend}.jsonl"));
            let out = run(&s(&[
                "build",
                &log,
                &map_arena,
                "--backend",
                backend,
                "--resolution",
                "0.4",
                "--tree-layout",
                "arena",
                "--trace",
                &trace,
            ]))
            .unwrap();
            assert!(out.contains("arena layout"), "{backend}: {out}");
            // The trace carries the layout tag and a memory sample.
            let records = octocache_telemetry::read_jsonl_path(&trace).unwrap();
            assert!(
                records.iter().all(|r| r.tree_layout == "arena"),
                "{backend}"
            );
            // The uncached baseline grows its tree from scan one; the cached
            // backends may hold everything in the cache until finish().
            if backend == "octomap" {
                assert!(records.last().unwrap().memory_bytes > 0, "{backend}");
            }
            // The arena-backed map is voxel-for-voxel the pointer map.
            let d = run(&s(&["diff", &map_pointer, &map_arena])).unwrap();
            assert!(d.contains("identical: yes"), "{backend}: {d}");
        }
        // Unknown layout is a usage error.
        let err = run(&s(&[
            "build",
            &log,
            &map_pointer,
            "--tree-layout",
            "linked-list",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn build_rejects_bad_worker_counts() {
        let log = temp_path("badworkers.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map = temp_path("badworkers.map");
        let err = run(&s(&[
            "build",
            &log,
            &map,
            "--backend",
            "parallel",
            "--workers",
            "3",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("must be 1, 2, 4 or 8"), "{err}");
        let err = run(&s(&[
            "build",
            &log,
            &map,
            "--backend",
            "serial",
            "--workers",
            "2",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("parallel backends"), "{err}");
    }

    #[test]
    fn build_rejects_unknown_backend() {
        let log = temp_path("x.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map = temp_path("x.map");
        let err = run(&s(&["build", &log, &map, "--backend", "magic"])).unwrap_err();
        assert!(err.to_string().contains("unknown backend"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn flag_parsing_errors() {
        assert!(run(&s(&["generate", "fr079-corridor"])).is_err());
        assert!(run(&s(&["generate", "nope", "/tmp/x"])).is_err());
        let log = temp_path("y.scanlog");
        assert!(run(&s(&["generate", "fr079-corridor", &log, "--scale"])).is_err());
        assert!(run(&s(&["generate", "fr079-corridor", &log, "--scale", "abc"])).is_err());
        assert!(run(&s(&["query", "/nonexistent.map", "0", "0", "0"])).is_err());
    }

    #[test]
    fn query_outside_map_is_an_error() {
        let log = temp_path("z.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map = temp_path("z.map");
        run(&s(&["build", &log, &map, "--resolution", "0.4"])).unwrap();
        let err = run(&s(&["query", &map, "1e9", "0", "0"])).unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
        assert_eq!(err.exit_code(), 6);
    }

    #[test]
    fn garbage_and_truncated_inputs_are_typed_errors_not_panics() {
        let map_out = temp_path("hardening.map");

        // Garbage scan log: parse error, exit code 4.
        let garbage = temp_path("garbage.scanlog");
        std::fs::write(&garbage, b"this is not a scan log at all \xff\xfe\x00").unwrap();
        let err = run(&s(&["build", &garbage, &map_out])).unwrap_err();
        assert!(matches!(err, CliError::ScanLog(_)), "{err}");
        assert_eq!(err.exit_code(), 4);

        // Truncated scan log: also a parse error, never a panic.
        let log = temp_path("trunc.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() / 2]).unwrap();
        let err = run(&s(&["build", &log, &map_out])).unwrap_err();
        assert!(matches!(err, CliError::ScanLog(_)), "{err}");
        assert_eq!(err.exit_code(), 4);

        // Missing scan log: I/O, exit code 3.
        let err = run(&s(&["build", "/nonexistent.scanlog", &map_out])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)), "{err}");
        assert_eq!(err.exit_code(), 3);

        // Garbage map: map parse error, exit code 5 (info, query and diff
        // all route through the same loader).
        let bad_map = temp_path("garbage.map");
        std::fs::write(&bad_map, b"\x00\x01\x02 nope").unwrap();
        let err = run(&s(&["info", &bad_map])).unwrap_err();
        assert!(matches!(err, CliError::Map(_)), "{err}");
        assert_eq!(err.exit_code(), 5);
        let err = run(&s(&["query", &bad_map, "0", "0", "0"])).unwrap_err();
        assert_eq!(err.exit_code(), 5);

        // Garbage trace: parse error, exit code 4.
        let bad_trace = temp_path("garbage.jsonl");
        std::fs::write(&bad_trace, "{not json\n").unwrap();
        let err = run(&s(&["report", &bad_trace])).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");

        // Usage errors stay exit code 2.
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn fault_flag_is_gated_and_validated() {
        let log = temp_path("fault.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map = temp_path("fault.map");
        if cfg!(feature = "fault-injection") {
            // A malformed spec is a usage error under any build.
            let err = run(&s(&[
                "build",
                &log,
                &map,
                "--backend",
                "parallel",
                "--fault",
                "explode:9",
            ]))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "{err}");

            // A killed worker degrades the build: it completes, reports the
            // fault inline and flags the integrity downgrade.
            let out = run(&s(&[
                "build",
                &log,
                &map,
                "--backend",
                "parallel",
                "--resolution",
                "0.4",
                "--fault",
                "kill:0@1",
            ]))
            .unwrap();
            assert!(out.contains("integrity: degraded"), "{out}");
            assert!(out.contains("1 panics"), "{out}");

            // --strict turns the same fault into a fatal pipeline error.
            let err = run(&s(&[
                "build",
                &log,
                &map,
                "--backend",
                "parallel",
                "--resolution",
                "0.4",
                "--fault",
                "kill:0@1",
                "--strict",
            ]))
            .unwrap_err();
            assert!(matches!(err, CliError::Pipeline(_)), "{err}");
            assert_eq!(err.exit_code(), 7);
        } else {
            // Without the feature the flag is refused, not silently ignored.
            let err = run(&s(&[
                "build",
                &log,
                &map,
                "--backend",
                "parallel",
                "--fault",
                "kill:0@1",
            ]))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "{err}");
            assert!(err.to_string().contains("fault-injection"), "{err}");
        }
    }

    #[test]
    fn supervisor_flags_and_heal_reporting() {
        let log = temp_path("supervisor.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map = temp_path("supervisor.map");

        // Bad supervisor values are usage errors.
        let err = run(&s(&["build", &log, &map, "--mem-budget", "0"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = run(&s(&["build", &log, &map, "--shed-deadline", "-1"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");

        // Generous knobs leave a healthy build unchanged: no supervisor
        // line, no integrity line, the map is written normally.
        let out = run(&s(&[
            "build",
            &log,
            &map,
            "--resolution",
            "0.4",
            "--mem-budget",
            "1073741824",
            "--max-restarts",
            "2",
            "--shed-deadline",
            "50",
        ]))
        .unwrap();
        assert!(out.contains("built"), "{out}");
        assert!(!out.contains("supervisor:"), "{out}");
        assert!(!out.contains("integrity"), "{out}");

        if cfg!(feature = "fault-injection") {
            // With a restart budget the killed worker is respawned, the
            // verdict heals back to intact, and the report shows the full
            // story (counters + transition history) instead of nothing.
            let out = run(&s(&[
                "build",
                &log,
                &map,
                "--backend",
                "parallel",
                "--resolution",
                "0.4",
                "--fault",
                "kill:0@1",
                "--max-restarts",
                "2",
            ]))
            .unwrap();
            assert!(out.contains("(healed)"), "{out}");
            assert!(out.contains("1 panics"), "{out}");
            assert!(
                out.contains("supervisor: 1 worker restarts, 1 heals"),
                "{out}"
            );
            assert!(out.contains("integrity history:"), "{out}");
            assert!(out.contains("degraded"), "{out}");
        }
    }

    #[test]
    fn build_with_events_then_analyze_exports_chrome_trace() {
        let log = temp_path("events.scanlog");
        run(&s(&[
            "generate",
            "fr079-corridor",
            &log,
            "--scale",
            "0.05",
            "--seed",
            "7",
        ]))
        .unwrap();

        let map = temp_path("events.map");
        let ev = temp_path("events.jsonl");
        let trace = temp_path("events.trace.jsonl");
        let out = run(&s(&[
            "build",
            &log,
            &map,
            "--backend",
            "parallel",
            "--workers",
            "2",
            "--resolution",
            "0.4",
            "--buckets",
            "256",
            "--tau",
            "2",
            "--events",
            &ev,
            "--trace",
            &trace,
        ]))
        .unwrap();
        assert!(out.contains("events:"), "{out}");

        let chrome = temp_path("events.trace.json");
        let out = run(&s(&["analyze", &ev, "--trace-out", &chrome])).unwrap();
        for section in [
            "event analytics",
            "reuse distance",
            "cache residency",
            "per-octant hit ratio",
            "bucket heatmap",
            "worker timelines",
            "chrome trace:",
        ] {
            assert!(out.contains(section), "missing {section:?} in:\n{out}");
        }

        // The exported file is valid Chrome Trace Event Format JSON with at
        // least one complete ("X") span on every worker lane plus thread
        // metadata.
        let json = std::fs::read_to_string(&chrome).unwrap();
        let doc: serde::Value = serde::json::from_str(&json).unwrap();
        let entries = doc
            .get("traceEvents")
            .and_then(serde::Value::as_seq)
            .expect("traceEvents array");
        assert!(
            entries
                .iter()
                .any(|e| e.get("ph").and_then(serde::Value::as_str) == Some("M")),
            "no metadata events"
        );
        for lane in [1u64, 2] {
            assert!(
                entries.iter().any(|e| {
                    e.get("ph").and_then(serde::Value::as_str) == Some("X")
                        && e.get("tid").and_then(serde::Value::as_u64) == Some(lane)
                }),
                "no complete span for worker lane {lane}"
            );
        }

        // `report --json` on the scan trace is machine-readable.
        let out = run(&s(&["report", &trace, "--json"])).unwrap();
        let doc: serde::Value = serde::json::from_str(&out).unwrap();
        assert_eq!(
            doc.get("backend").and_then(serde::Value::as_str),
            Some("octocache-parallelx2")
        );
        assert!(doc
            .get("hit_ratio")
            .and_then(serde::Value::as_f64)
            .is_some());
        assert!(doc.get("phases").and_then(serde::Value::as_seq).is_some());
    }

    #[test]
    fn build_with_journal_then_recover_matches_build_output() {
        let log = temp_path("durable.scanlog");
        run(&s(&[
            "generate",
            "fr079-corridor",
            &log,
            "--scale",
            "0.05",
            "--seed",
            "11",
        ]))
        .unwrap();

        let map = temp_path("durable.map");
        let journal = temp_path("durable-journal");
        let _ = std::fs::remove_dir_all(&journal);
        let trace = temp_path("durable.jsonl");
        let out = run(&s(&[
            "build",
            &log,
            &map,
            "--backend",
            "serial",
            "--resolution",
            "0.4",
            "--journal",
            &journal,
            "--checkpoint-every",
            "4",
            "--trace",
            &trace,
        ]))
        .unwrap();
        assert!(out.contains("durable:"), "{out}");
        assert!(out.contains("checkpoints"), "{out}");

        // The trace records carry journal latencies and checkpoint epochs.
        let records = octocache_telemetry::read_jsonl_path(&trace).unwrap();
        assert!(records.iter().all(|r| r.journal_append_ns > 0));
        assert!(records.iter().any(|r| r.checkpoint_epoch > 0));
        let report = run(&s(&["report", &trace])).unwrap();
        assert!(report.contains("durability: journal"), "{report}");

        // Dry-run recovery verifies without writing.
        let out = run(&s(&["recover", &journal])).unwrap();
        assert!(out.contains("status:            clean"), "{out}");
        assert!(out.contains("dry run"), "{out}");

        // Full recovery reproduces the build's map voxel-for-voxel.
        let recovered = temp_path("durable-recovered.map");
        let out = run(&s(&["recover", &journal, &recovered])).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let d = run(&s(&["diff", &map, &recovered])).unwrap();
        assert!(d.contains("identical: yes"), "{d}");

        // Cross-layout recovery also matches (the leaf checksum and diff
        // are layout-independent).
        let recovered_arena = temp_path("durable-recovered-arena.map");
        run(&s(&[
            "recover",
            &journal,
            &recovered_arena,
            "--tree-layout",
            "arena",
        ]))
        .unwrap();
        let d = run(&s(&["diff", &map, &recovered_arena])).unwrap();
        assert!(d.contains("identical: yes"), "{d}");

        // The recovered map is a checksummed v2 stream.
        let bytes = std::fs::read(&recovered).unwrap();
        let footer = octocache_octomap::io::peek_footer(&bytes).unwrap();
        assert!(footer.is_some(), "recovered map must carry a v2 footer");
    }

    #[test]
    fn recover_errors_are_typed_exit_8() {
        // Nothing to recover.
        let empty = temp_path("no-journal-here");
        let _ = std::fs::remove_dir_all(&empty);
        std::fs::create_dir_all(&empty).unwrap();
        let err = run(&s(&["recover", &empty])).unwrap_err();
        assert!(matches!(err, CliError::Durable(_)), "{err}");
        assert_eq!(err.exit_code(), 8);

        // A torn journal header (crashed before creation finished) is
        // corruption, not a silent empty map.
        let torn = temp_path("torn-journal");
        let _ = std::fs::remove_dir_all(&torn);
        std::fs::create_dir_all(&torn).unwrap();
        std::fs::write(format!("{torn}/journal"), b"OCTJ").unwrap();
        let err = run(&s(&["recover", &torn])).unwrap_err();
        assert_eq!(err.exit_code(), 8, "{err}");

        // --checkpoint-every without --journal is a usage error.
        let log = temp_path("durable-usage.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map = temp_path("durable-usage.map");
        let err = run(&s(&["build", &log, &map, "--checkpoint-every", "4"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn journaled_build_recovers_after_damaged_tail() {
        let log = temp_path("torntail.scanlog");
        run(&s(&[
            "generate",
            "fr079-corridor",
            &log,
            "--scale",
            "0.05",
            "--seed",
            "3",
        ]))
        .unwrap();
        let map = temp_path("torntail.map");
        let journal = temp_path("torntail-journal");
        let _ = std::fs::remove_dir_all(&journal);
        run(&s(&[
            "build",
            &log,
            &map,
            "--resolution",
            "0.4",
            "--journal",
            &journal,
            "--checkpoint-every",
            "1000",
        ]))
        .unwrap();

        // Simulate a torn final write: chop bytes off the journal tail.
        let jpath = format!("{journal}/journal");
        let bytes = std::fs::read(&jpath).unwrap();
        std::fs::write(&jpath, &bytes[..bytes.len() - 11]).unwrap();

        let out = run(&s(&["recover", &journal])).unwrap();
        assert!(out.contains("damaged bytes dropped"), "{out}");
        assert!(out.contains("status:            recovered"), "{out}");
    }

    #[test]
    fn report_tolerates_torn_trace_tail() {
        let log = temp_path("torntrace.scanlog");
        run(&s(&["generate", "fr079-corridor", &log, "--scale", "0.05"])).unwrap();
        let map = temp_path("torntrace.map");
        let trace = temp_path("torntrace.jsonl");
        run(&s(&[
            "build",
            &log,
            &map,
            "--resolution",
            "0.4",
            "--trace",
            &trace,
        ]))
        .unwrap();
        // Tear the final line as a killed process would.
        let text = std::fs::read_to_string(&trace).unwrap();
        std::fs::write(&trace, &text[..text.len() - 30]).unwrap();
        let report = run(&s(&["report", &trace])).unwrap();
        assert!(report.contains("warning: damaged tail"), "{report}");
        assert!(report.contains("p50(us)"), "{report}");
    }

    #[test]
    fn report_and_analyze_reject_unknown_flags() {
        let err = run(&s(&["report", "x.jsonl", "--frob", "1"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert_eq!(err.exit_code(), 2);

        let err = run(&s(&["analyze", "x.jsonl", "--frob", "1"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn analyze_missing_and_garbage_inputs_are_typed_errors() {
        let missing = temp_path("no-such-events.jsonl");
        let _ = std::fs::remove_file(&missing);
        let err = run(&s(&["analyze", &missing])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)), "{err}");
        assert_eq!(err.exit_code(), 3);

        let garbage = temp_path("garbage-events.jsonl");
        std::fs::write(&garbage, "this is not an event record\n").unwrap();
        let chrome = temp_path("garbage.trace.json");
        let err = run(&s(&["analyze", &garbage, "--trace-out", &chrome])).unwrap_err();
        assert!(matches!(err, CliError::ScanLog(_)), "{err}");
        assert_eq!(err.exit_code(), 4);
    }
}
