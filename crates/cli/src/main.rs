//! `octocache` — build, inspect, query and diff occupancy maps from the
//! command line. See `octocache help` for usage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match octocache_cli::run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, octocache_cli::CliError::Usage(_)) {
                eprintln!("run `octocache help` for usage");
            }
            ExitCode::from(e.exit_code())
        }
    }
}
