//! Binary scan-log serialisation.
//!
//! The paper's datasets are files of point-cloud scans; this module gives
//! the synthetic sequences the same property, so expensive generations can
//! be cached on disk and identical workloads replayed across benchmark
//! processes.
//!
//! Format: magic, version, name, max-range, then per scan the origin and a
//! length-prefixed list of `f32` point triplets (points are stored in `f32`
//! — sensor precision — which keeps logs half the size of `f64`).

use std::fmt;
use std::io::{Read, Write};

use octocache_geom::Point3;

use crate::dataset::{Scan, ScanSequence};

const MAGIC: &[u8; 4] = b"OSL1";

/// Errors from decoding a scan log.
#[derive(Debug)]
pub enum ScanLogError {
    /// Not a scan log (bad magic bytes).
    BadMagic,
    /// The stream ended early or a length field is inconsistent.
    Truncated,
    /// The embedded dataset name is not valid UTF-8 or unknown length.
    BadName,
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ScanLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanLogError::BadMagic => write!(f, "stream is not a scan log"),
            ScanLogError::Truncated => write!(f, "scan log ended unexpectedly"),
            ScanLogError::BadName => write!(f, "scan log carries an invalid dataset name"),
            ScanLogError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for ScanLogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScanLogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ScanLogError {
    fn from(e: std::io::Error) -> Self {
        ScanLogError::Io(e)
    }
}

/// Writes a scan sequence to a writer.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_scans<W: Write>(seq: &ScanSequence, mut w: W) -> Result<(), ScanLogError> {
    w.write_all(MAGIC)?;
    let name = seq.name().as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&seq.max_range().to_le_bytes())?;
    w.write_all(&(seq.scans().len() as u32).to_le_bytes())?;
    for scan in seq.scans() {
        for c in [scan.origin.x, scan.origin.y, scan.origin.z] {
            w.write_all(&c.to_le_bytes())?;
        }
        w.write_all(&(scan.points.len() as u32).to_le_bytes())?;
        for p in &scan.points {
            for c in [p.x as f32, p.y as f32, p.z as f32] {
                w.write_all(&c.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Reads a scan sequence from a reader.
///
/// # Errors
///
/// Returns a [`ScanLogError`] for malformed input; never panics on
/// untrusted bytes.
pub fn read_scans<R: Read>(mut r: R) -> Result<ScanSequence, ScanLogError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|_| ScanLogError::Truncated)?;
    if &magic != MAGIC {
        return Err(ScanLogError::BadMagic);
    }
    let name_len = read_u32(&mut r)? as usize;
    if name_len > 256 {
        return Err(ScanLogError::BadName);
    }
    let mut name_bytes = vec![0u8; name_len];
    r.read_exact(&mut name_bytes)
        .map_err(|_| ScanLogError::Truncated)?;
    let name = String::from_utf8(name_bytes).map_err(|_| ScanLogError::BadName)?;
    let max_range = read_f64(&mut r)?;
    let num_scans = read_u32(&mut r)? as usize;
    // Cap to prevent absurd allocations from corrupted headers.
    if num_scans > 10_000_000 {
        return Err(ScanLogError::Truncated);
    }
    let mut scans = Vec::with_capacity(num_scans.min(1 << 20));
    for _ in 0..num_scans {
        let origin = Point3::new(read_f64(&mut r)?, read_f64(&mut r)?, read_f64(&mut r)?);
        let num_points = read_u32(&mut r)? as usize;
        if num_points > 100_000_000 {
            return Err(ScanLogError::Truncated);
        }
        let mut points = Vec::with_capacity(num_points.min(1 << 22));
        for _ in 0..num_points {
            points.push(Point3::new(
                read_f32(&mut r)? as f64,
                read_f32(&mut r)? as f64,
                read_f32(&mut r)? as f64,
            ));
        }
        scans.push(Scan { origin, points });
    }
    Ok(ScanSequence::from_parts(leak_name(name), scans, max_range))
}

/// Dataset names arrive as owned strings but `ScanSequence` stores
/// `&'static str`; scan logs are read a handful of times per process, so
/// leaking the (tiny) name is the pragmatic trade.
fn leak_name(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ScanLogError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|_| ScanLogError::Truncated)?;
    Ok(u32::from_le_bytes(b))
}

fn read_f32<R: Read>(r: &mut R) -> Result<f32, ScanLogError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|_| ScanLogError::Truncated)?;
    Ok(f32::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64, ScanLogError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|_| ScanLogError::Truncated)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};

    #[test]
    fn roundtrip_preserves_structure() {
        let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
        let mut buf = Vec::new();
        write_scans(&seq, &mut buf).unwrap();
        let restored = read_scans(buf.as_slice()).unwrap();
        assert_eq!(restored.name(), seq.name());
        assert_eq!(restored.max_range(), seq.max_range());
        assert_eq!(restored.scans().len(), seq.scans().len());
        assert_eq!(restored.total_points(), seq.total_points());
        // Points roundtrip through f32: compare within f32 precision.
        for (a, b) in restored.scans().iter().zip(seq.scans()) {
            assert_eq!(a.origin, b.origin);
            for (p, q) in a.points.iter().zip(&b.points) {
                assert!((*p - *q).norm() < 1e-3, "{p} vs {q}");
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            read_scans(&b"NOPE"[..]),
            Err(ScanLogError::BadMagic)
        ));
        assert!(matches!(
            read_scans(&b"OS"[..]),
            Err(ScanLogError::Truncated)
        ));
    }

    #[test]
    fn truncated_stream_rejected() {
        let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
        let mut buf = Vec::new();
        write_scans(&seq, &mut buf).unwrap();
        for cut in [5usize, 9, 17, 25, buf.len() - 3] {
            let result = read_scans(&buf[..cut]);
            assert!(result.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
        let mut buf = Vec::new();
        write_scans(&seq, &mut buf).unwrap();
        for i in (0..buf.len().min(200)).step_by(3) {
            let mut corrupted = buf.clone();
            corrupted[i] ^= 0xFF;
            let _ = read_scans(corrupted.as_slice());
        }
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ScanLogError::BadMagic,
            ScanLogError::Truncated,
            ScanLogError::BadName,
            ScanLogError::Io(std::io::Error::other("x")),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
