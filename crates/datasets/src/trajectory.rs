use octocache_geom::Point3;

/// A sensor pose: position plus viewing direction (yaw around Z, pitch from
/// the horizontal plane).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Sensor position in world coordinates.
    pub position: Point3,
    /// Heading angle in the XY plane, radians.
    pub yaw: f64,
    /// Elevation angle from the XY plane, radians (positive = up).
    pub pitch: f64,
}

impl Pose {
    /// Creates a level pose looking along `yaw`.
    pub fn new(position: Point3, yaw: f64) -> Self {
        Pose {
            position,
            yaw,
            pitch: 0.0,
        }
    }

    /// The unit forward vector of this pose.
    pub fn forward(&self) -> Point3 {
        Point3::new(
            self.pitch.cos() * self.yaw.cos(),
            self.pitch.cos() * self.yaw.sin(),
            self.pitch.sin(),
        )
    }
}

/// A sequence of sensor poses along which scans are taken.
///
/// The generators mirror the motion patterns behind the paper's datasets:
/// a slow walk through a corridor, a loop around a campus, a long meander.
/// Successive poses are close together relative to the sensing range, which
/// is what creates the high inter-batch voxel overlap of the paper's
/// Figure 7/8.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    poses: Vec<Pose>,
}

impl Trajectory {
    /// Creates a trajectory from explicit poses.
    pub fn from_poses(poses: Vec<Pose>) -> Self {
        Trajectory { poses }
    }

    /// The poses.
    pub fn poses(&self) -> &[Pose] {
        &self.poses
    }

    /// Number of poses.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// True when the trajectory has no poses.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// A straight line from `start` to `end` with `steps` poses, looking
    /// along the direction of travel.
    pub fn straight(start: Point3, end: Point3, steps: usize) -> Self {
        assert!(steps >= 2, "a line needs at least 2 poses");
        let dir = end - start;
        let yaw = dir.y.atan2(dir.x);
        let poses = (0..steps)
            .map(|i| {
                let t = i as f64 / (steps - 1) as f64;
                Pose::new(start.lerp(end, t), yaw)
            })
            .collect();
        Trajectory { poses }
    }

    /// A closed circular loop of the given radius around `center`, with the
    /// sensor looking outward (`look_outward = true`) or along the tangent.
    pub fn circle(center: Point3, radius: f64, steps: usize, look_outward: bool) -> Self {
        assert!(steps >= 3, "a circle needs at least 3 poses");
        Self::arc(
            center,
            radius,
            0.0,
            std::f64::consts::TAU * (steps - 1) as f64 / steps as f64,
            steps,
            look_outward,
        )
    }

    /// An arc of a circle from `start_angle` to `end_angle` (radians) with
    /// `steps` poses, looking outward or along the tangent.
    pub fn arc(
        center: Point3,
        radius: f64,
        start_angle: f64,
        end_angle: f64,
        steps: usize,
        look_outward: bool,
    ) -> Self {
        assert!(steps >= 2, "an arc needs at least 2 poses");
        let poses = (0..steps)
            .map(|i| {
                let t = i as f64 / (steps - 1) as f64;
                let a = start_angle + (end_angle - start_angle) * t;
                let position = center + Point3::new(a.cos() * radius, a.sin() * radius, 0.0);
                let yaw = if look_outward {
                    a
                } else {
                    a + std::f64::consts::FRAC_PI_2
                };
                Pose::new(position, yaw)
            })
            .collect();
        Trajectory { poses }
    }

    /// The first `n` poses (all of them when the trajectory is shorter).
    pub fn truncated(&self, n: usize) -> Trajectory {
        Trajectory {
            poses: self.poses.iter().copied().take(n).collect(),
        }
    }

    /// A back-and-forth sweep along the X axis: `legs` straight passes of
    /// `length`, offset by `spacing` in Y — the mowing pattern of a mapping
    /// survey.
    pub fn boustrophedon(
        origin: Point3,
        length: f64,
        spacing: f64,
        legs: usize,
        steps_per_leg: usize,
    ) -> Self {
        assert!(legs >= 1 && steps_per_leg >= 2);
        let mut poses = Vec::with_capacity(legs * steps_per_leg);
        for leg in 0..legs {
            let y = origin.y + leg as f64 * spacing;
            let (x0, x1, yaw) = if leg % 2 == 0 {
                (origin.x, origin.x + length, 0.0)
            } else {
                (origin.x + length, origin.x, std::f64::consts::PI)
            };
            for i in 0..steps_per_leg {
                let t = i as f64 / (steps_per_leg - 1) as f64;
                let x = x0 + (x1 - x0) * t;
                poses.push(Pose::new(Point3::new(x, y, origin.z), yaw));
            }
        }
        Trajectory { poses }
    }

    /// Truncates / repeats the trajectory to exactly `n` poses (repeating
    /// from the start when the trajectory is shorter).
    pub fn resampled(&self, n: usize) -> Trajectory {
        assert!(!self.poses.is_empty());
        let poses = (0..n).map(|i| self.poses[i % self.poses.len()]).collect();
        Trajectory { poses }
    }

    /// Total path length (sum of inter-pose distances).
    pub fn path_length(&self) -> f64 {
        self.poses
            .windows(2)
            .map(|w| w[0].position.distance(w[1].position))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_vectors() {
        let p = Pose::new(Point3::ZERO, 0.0);
        assert!((p.forward() - Point3::new(1.0, 0.0, 0.0)).norm() < 1e-12);
        let q = Pose::new(Point3::ZERO, std::f64::consts::FRAC_PI_2);
        assert!((q.forward() - Point3::new(0.0, 1.0, 0.0)).norm() < 1e-12);
        let up = Pose {
            pitch: std::f64::consts::FRAC_PI_2,
            ..p
        };
        assert!((up.forward() - Point3::new(0.0, 0.0, 1.0)).norm() < 1e-12);
    }

    #[test]
    fn straight_endpoints_and_heading() {
        let t = Trajectory::straight(Point3::ZERO, Point3::new(10.0, 0.0, 1.0), 11);
        assert_eq!(t.len(), 11);
        assert_eq!(t.poses()[0].position, Point3::ZERO);
        assert_eq!(t.poses()[10].position, Point3::new(10.0, 0.0, 1.0));
        assert!((t.poses()[5].yaw).abs() < 1e-12);
        assert!((t.path_length() - (10.0f64.powi(2) + 1.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn circle_radius_and_center() {
        let c = Point3::new(1.0, 2.0, 3.0);
        let t = Trajectory::circle(c, 5.0, 16, true);
        assert_eq!(t.len(), 16);
        for p in t.poses() {
            assert!((p.position.distance(c) - 5.0).abs() < 1e-9);
            assert_eq!(p.position.z, 3.0);
        }
    }

    #[test]
    fn boustrophedon_alternates_direction() {
        let t = Trajectory::boustrophedon(Point3::ZERO, 10.0, 2.0, 3, 5);
        assert_eq!(t.len(), 15);
        assert!((t.poses()[0].yaw).abs() < 1e-12);
        assert!((t.poses()[5].yaw - std::f64::consts::PI).abs() < 1e-12);
        // Leg 1 starts where leg 0 ended in X.
        assert!((t.poses()[4].position.x - 10.0).abs() < 1e-12);
        assert!((t.poses()[5].position.x - 10.0).abs() < 1e-12);
    }

    #[test]
    fn resampled_repeats() {
        let t = Trajectory::straight(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 3);
        let r = t.resampled(7);
        assert_eq!(r.len(), 7);
        assert_eq!(r.poses()[3], t.poses()[0]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn straight_rejects_single_pose() {
        Trajectory::straight(Point3::ZERO, Point3::ZERO, 1);
    }
}
