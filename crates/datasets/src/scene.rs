use octocache_geom::{Aabb, Point3};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Implicit obstacle geometry: a collection of axis-aligned boxes inside a
/// bounding region, with exact nearest-hit ray casting.
///
/// Scenes stand in for the physical environments the paper's datasets were
/// recorded in (corridor walls, campus buildings and trees, …) and for the
/// MAVBench simulation environments.
///
/// # Example
///
/// ```
/// # use octocache_datasets::Scene;
/// # use octocache_geom::{Aabb, Point3};
/// let mut scene = Scene::new(Aabb::new(Point3::splat(-10.0), Point3::splat(10.0)));
/// scene.add_box(Aabb::new(Point3::new(4.0, -1.0, -1.0), Point3::new(5.0, 1.0, 1.0)));
/// let hit = scene.ray_cast(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 20.0);
/// assert!((hit.unwrap() - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Scene {
    bounds: Aabb,
    obstacles: Vec<Aabb>,
}

impl Scene {
    /// Creates an empty scene with the given navigable bounds.
    pub fn new(bounds: Aabb) -> Self {
        Scene {
            bounds,
            obstacles: Vec::new(),
        }
    }

    /// The navigable bounding region.
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }

    /// The obstacle boxes.
    pub fn obstacles(&self) -> &[Aabb] {
        &self.obstacles
    }

    /// Adds one obstacle box.
    pub fn add_box(&mut self, b: Aabb) -> &mut Self {
        self.obstacles.push(b);
        self
    }

    /// Adds a floor slab covering the bounds at height `z` with the given
    /// thickness.
    pub fn add_floor(&mut self, z: f64, thickness: f64) -> &mut Self {
        let b = self.bounds;
        self.add_box(Aabb::new(
            Point3::new(b.min.x, b.min.y, z - thickness),
            Point3::new(b.max.x, b.max.y, z),
        ))
    }

    /// Adds four walls around the bounds (a closed room), `thickness` thick,
    /// spanning the full height of the bounds.
    pub fn add_walls(&mut self, thickness: f64) -> &mut Self {
        let b = self.bounds;
        // X- and X+ walls.
        self.add_box(Aabb::new(
            Point3::new(b.min.x - thickness, b.min.y, b.min.z),
            Point3::new(b.min.x, b.max.y, b.max.z),
        ));
        self.add_box(Aabb::new(
            Point3::new(b.max.x, b.min.y, b.min.z),
            Point3::new(b.max.x + thickness, b.max.y, b.max.z),
        ));
        // Y- and Y+ walls.
        self.add_box(Aabb::new(
            Point3::new(b.min.x, b.min.y - thickness, b.min.z),
            Point3::new(b.max.x, b.min.y, b.max.z),
        ));
        self.add_box(Aabb::new(
            Point3::new(b.min.x, b.max.y, b.min.z),
            Point3::new(b.max.x, b.max.y + thickness, b.max.z),
        ));
        self
    }

    /// Scatters `count` random box obstacles of side `min_size..max_size`
    /// within the bounds, deterministically from `seed`. Boxes overlapping
    /// any `keep_clear` region (e.g. the sensor trajectory corridor) are
    /// re-rolled.
    pub fn scatter_boxes(
        &mut self,
        count: usize,
        min_size: f64,
        max_size: f64,
        keep_clear: &[Aabb],
        seed: u64,
    ) -> &mut Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = self.bounds;
        let mut placed = 0;
        let mut attempts = 0;
        while placed < count && attempts < count * 50 {
            attempts += 1;
            let extent = b.size();
            // Clamp sizes so a box always fits inside the bounds (e.g.
            // building-sized boxes in a low-ceiling region keep their
            // footprint but lose height).
            let cap = |e: f64| (e * 0.45).max(1e-6);
            let size = Point3::new(
                rng.random_range(min_size..max_size).min(cap(extent.x)),
                rng.random_range(min_size..max_size).min(cap(extent.y)),
                rng.random_range(min_size..max_size).min(cap(extent.z)),
            );
            let center = Point3::new(
                rng.random_range(b.min.x + size.x..b.max.x - size.x),
                rng.random_range(b.min.y + size.y..b.max.y - size.y),
                rng.random_range(b.min.z + size.z..b.max.z - size.z),
            );
            let candidate = Aabb::from_center_size(center, size);
            if keep_clear.iter().any(|clear| candidate.intersects(clear)) {
                continue;
            }
            self.add_box(candidate);
            placed += 1;
        }
        self
    }

    /// Casts a ray and returns the distance to the nearest obstacle surface
    /// within `max_range`, or `None` when nothing is hit.
    ///
    /// `direction` must be normalised for the returned value to be metric
    /// distance.
    pub fn ray_cast(&self, origin: Point3, direction: Point3, max_range: f64) -> Option<f64> {
        let mut nearest: Option<f64> = None;
        for obstacle in &self.obstacles {
            if let Some(t) = obstacle.intersect_ray(origin, direction, max_range) {
                // Ignore hits at t == 0 (origin inside an obstacle).
                if t > 1e-9 {
                    nearest = Some(match nearest {
                        Some(n) => n.min(t),
                        None => t,
                    });
                }
            }
        }
        nearest
    }

    /// True when the point is inside any obstacle.
    pub fn is_inside_obstacle(&self, p: Point3) -> bool {
        self.obstacles.iter().any(|o| o.contains(p))
    }

    /// True when the straight segment `a`→`b` crosses an obstacle.
    pub fn segment_blocked(&self, a: Point3, b: Point3) -> bool {
        let d = b - a;
        let len = d.norm();
        if len < 1e-12 {
            return self.is_inside_obstacle(a);
        }
        self.ray_cast(a, d / len, len).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Aabb {
        Aabb::new(Point3::splat(-20.0), Point3::splat(20.0))
    }

    #[test]
    fn empty_scene_never_hits() {
        let scene = Scene::new(bounds());
        assert!(scene
            .ray_cast(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 100.0)
            .is_none());
        assert!(!scene.is_inside_obstacle(Point3::ZERO));
    }

    #[test]
    fn nearest_of_two_boxes_wins() {
        let mut scene = Scene::new(bounds());
        scene.add_box(Aabb::new(
            Point3::new(8.0, -1.0, -1.0),
            Point3::new(9.0, 1.0, 1.0),
        ));
        scene.add_box(Aabb::new(
            Point3::new(3.0, -1.0, -1.0),
            Point3::new(4.0, 1.0, 1.0),
        ));
        let t = scene
            .ray_cast(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 100.0)
            .unwrap();
        assert!((t - 3.0).abs() < 1e-9);
    }

    #[test]
    fn max_range_limits_hits() {
        let mut scene = Scene::new(bounds());
        scene.add_box(Aabb::new(
            Point3::new(8.0, -1.0, -1.0),
            Point3::new(9.0, 1.0, 1.0),
        ));
        assert!(scene
            .ray_cast(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 5.0)
            .is_none());
    }

    #[test]
    fn walls_close_the_room() {
        let mut scene = Scene::new(Aabb::new(Point3::splat(-5.0), Point3::splat(5.0)));
        scene.add_walls(0.5);
        // A ray in any axis direction hits a wall at distance 5.
        for dir in [
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(-1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, -1.0, 0.0),
        ] {
            let t = scene.ray_cast(Point3::ZERO, dir, 100.0).unwrap();
            assert!((t - 5.0).abs() < 1e-9, "{dir:?} -> {t}");
        }
    }

    #[test]
    fn floor_is_hit_from_above() {
        let mut scene = Scene::new(bounds());
        scene.add_floor(0.0, 0.5);
        let t = scene
            .ray_cast(
                Point3::new(0.0, 0.0, 3.0),
                Point3::new(0.0, 0.0, -1.0),
                10.0,
            )
            .unwrap();
        assert!((t - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scatter_respects_keep_clear_and_determinism() {
        let clear = Aabb::new(Point3::new(-2.0, -2.0, -2.0), Point3::new(2.0, 2.0, 2.0));
        let mut a = Scene::new(bounds());
        a.scatter_boxes(25, 0.5, 2.0, std::slice::from_ref(&clear), 42);
        let mut b = Scene::new(bounds());
        b.scatter_boxes(25, 0.5, 2.0, std::slice::from_ref(&clear), 42);
        assert_eq!(a.obstacles().len(), 25);
        assert_eq!(a.obstacles(), b.obstacles(), "same seed, same scene");
        for o in a.obstacles() {
            assert!(!o.intersects(&clear));
        }
        let mut c = Scene::new(bounds());
        c.scatter_boxes(25, 0.5, 2.0, std::slice::from_ref(&clear), 43);
        assert_ne!(a.obstacles(), c.obstacles(), "different seed differs");
    }

    #[test]
    fn segment_blocked_detects_obstacle() {
        let mut scene = Scene::new(bounds());
        scene.add_box(Aabb::new(
            Point3::new(4.0, -1.0, -1.0),
            Point3::new(5.0, 1.0, 1.0),
        ));
        assert!(scene.segment_blocked(Point3::ZERO, Point3::new(10.0, 0.0, 0.0)));
        assert!(!scene.segment_blocked(Point3::ZERO, Point3::new(3.0, 0.0, 0.0)));
        assert!(!scene.segment_blocked(Point3::new(0.0, 5.0, 0.0), Point3::new(10.0, 5.0, 0.0)));
    }
}
