//! Synthetic stand-ins for the public 3D-scan datasets of the OctoCache
//! evaluation.
//!
//! The paper evaluates on three datasets from the OctoMap project — the
//! *FR-079 corridor*, the *Freiburg campus* and *New College* — which are
//! binary scan logs we do not ship. What the cache's performance actually
//! depends on is the *statistical structure* of those logs, which the paper
//! quantifies (§3.1): dense conical scans whose points heavily duplicate
//! voxels within a batch (2.78–31.32×), and a slowly moving sensor whose
//! consecutive batches overlap heavily (≈40 % for the campus, > 80 % for the
//! other two). This crate generates deterministic scan sequences with the
//! same structure:
//!
//! * [`Scene`] — implicit obstacle geometry (axis-aligned boxes + walls)
//!   with exact ray casting.
//! * [`Trajectory`] and [`DepthSensor`] — a sensor pose sequence and a
//!   pin-hole depth scanner producing point clouds.
//! * [`Dataset`] — the three named configurations, scaled to laptop size
//!   (the scale factor is part of [`DatasetConfig`] and reported by the
//!   benches).
//! * [`stats`] — duplication and overlap measurements reproducing the
//!   paper's Figures 7/8 and Table 2.
//!
//! # Example
//!
//! ```
//! # use octocache_datasets::{Dataset, DatasetConfig};
//! let scans = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
//! assert!(!scans.scans().is_empty());
//! assert!(scans.scans().iter().all(|s| !s.points.is_empty()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dataset;
pub mod dynamic;
pub mod io;
pub mod scenario;
mod scene;
mod sensor;
pub mod stats;
mod trajectory;

pub use dataset::{Dataset, DatasetConfig, Scan, ScanSequence};
pub use scene::Scene;
pub use sensor::DepthSensor;
pub use trajectory::{Pose, Trajectory};
