//! Test-support scenarios: the seeded synthetic scan generator shared by the
//! cross-backend integration suites (`crates/core/tests/common`) and the
//! bench bins.
//!
//! Unlike the named [`Dataset`](crate::Dataset) generators — which reproduce
//! the *statistical structure* of the paper's scan logs at benchmark scale —
//! these scenarios are deliberately small and adversarial: a sensor
//! random-walking through a field of spherical blobs, sweeping ray fans in
//! random directions. A tiny cache replaying them exercises every
//! hit/miss/evict/enqueue path in seconds, and because everything derives
//! from a single seed, every backend replays the *identical* sequence —
//! the property the differential and golden-checksum suites are built on.
//!
//! This module is the single source of the generator. The integration
//! suites' `tests/common` re-exports it, and the bench bins use it for
//! their pre-sweep self-checks, so the scan distribution can never drift
//! between the proof (tests) and the measurement (benches).

use crate::{Scan, ScanSequence};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use octocache_geom::Point3;

/// The sensor range scenario scans are inserted with (passed to the
/// mapping backend's `max_range`).
pub const MAX_RANGE: f64 = 40.0;

/// Generates the deterministic blob-walk scan sequence for `seed`: a sensor
/// random-walking through a field of six spherical "blobs", sweeping
/// 120-ray fans in random directions over ten scans. Rays terminate on the
/// nearest blob surface, or at 18 m in free space.
pub fn blob_walk(seed: u64) -> Vec<Scan> {
    let mut rng = StdRng::seed_from_u64(seed);
    // A handful of solid blobs the rays terminate on.
    let blobs: Vec<(Point3, f64)> = (0..6)
        .map(|_| {
            (
                Point3::new(
                    rng.random_range(-18.0..18.0),
                    rng.random_range(-18.0..18.0),
                    rng.random_range(-6.0..6.0),
                ),
                rng.random_range(1.0..3.0),
            )
        })
        .collect();
    let mut origin = Point3::new(
        rng.random_range(-4.0..4.0),
        rng.random_range(-4.0..4.0),
        rng.random_range(-1.0..1.0),
    );
    (0..10)
        .map(|_| {
            origin = Point3::new(
                (origin.x + rng.random_range(-2.0..2.0)).clamp(-20.0, 20.0),
                (origin.y + rng.random_range(-2.0..2.0)).clamp(-20.0, 20.0),
                (origin.z + rng.random_range(-0.5..0.5)).clamp(-4.0, 4.0),
            );
            let points = (0..120)
                .map(|_| {
                    // A random direction; the ray ends on the nearest blob
                    // surface along it, or at max range in free space.
                    let theta = rng.random_range(0.0..std::f64::consts::TAU);
                    let phi = rng.random_range(-0.4..0.4_f64);
                    let dir =
                        Point3::new(theta.cos() * phi.cos(), theta.sin() * phi.cos(), phi.sin());
                    let mut t_hit = 18.0;
                    for (c, r) in &blobs {
                        // Ray-sphere intersection from `origin` along `dir`.
                        let oc = Point3::new(origin.x - c.x, origin.y - c.y, origin.z - c.z);
                        let b = oc.x * dir.x + oc.y * dir.y + oc.z * dir.z;
                        let q = (oc.x * oc.x + oc.y * oc.y + oc.z * oc.z) - r * r;
                        let disc = b * b - q;
                        if disc > 0.0 {
                            let t = -b - disc.sqrt();
                            if t > 0.5 && t < t_hit {
                                t_hit = t;
                            }
                        }
                    }
                    Point3::new(
                        origin.x + dir.x * t_hit,
                        origin.y + dir.y * t_hit,
                        origin.z + dir.z * t_hit,
                    )
                })
                .collect();
            Scan { origin, points }
        })
        .collect()
}

/// As [`blob_walk`], packaged as a [`ScanSequence`] (with [`MAX_RANGE`])
/// for consumers that speak the dataset API, such as the bench harness.
pub fn blob_walk_sequence(seed: u64) -> ScanSequence {
    ScanSequence::from_parts("blob-walk", blob_walk(seed), MAX_RANGE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = blob_walk(7);
        let b = blob_walk(7);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|s| s.points.len() == 120));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.origin, y.origin);
            assert_eq!(x.points, y.points);
        }
        // Different seeds diverge.
        let c = blob_walk(8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.points != y.points));
    }

    #[test]
    fn sequence_wrapper_matches() {
        let seq = blob_walk_sequence(3);
        assert_eq!(seq.name(), "blob-walk");
        assert_eq!(seq.max_range(), MAX_RANGE);
        assert_eq!(seq.scans(), &blob_walk(3)[..]);
    }
}
