use octocache_geom::{Aabb, Point3};
use serde::{Deserialize, Serialize};

use crate::scene::Scene;
use crate::sensor::DepthSensor;
use crate::trajectory::Trajectory;

/// One sensor scan: the sensor origin and the surface points it sampled.
#[derive(Debug, Clone, PartialEq)]
pub struct Scan {
    /// Sensor position the scan was taken from.
    pub origin: Point3,
    /// Sampled obstacle-surface points.
    pub points: Vec<Point3>,
}

/// A generated scan sequence (the synthetic analogue of one of the paper's
/// datasets).
#[derive(Debug, Clone)]
pub struct ScanSequence {
    name: &'static str,
    scans: Vec<Scan>,
    max_range: f64,
}

impl ScanSequence {
    /// Assembles a sequence from parts (used by the scan-log reader in
    /// [`crate::io`] and by tests that hand-craft workloads).
    pub fn from_parts(name: &'static str, scans: Vec<Scan>, max_range: f64) -> Self {
        ScanSequence {
            name,
            scans,
            max_range,
        }
    }

    /// Dataset name (e.g. `"fr079-corridor"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The scans in acquisition order.
    pub fn scans(&self) -> &[Scan] {
        &self.scans
    }

    /// The sensor range the scans were taken with (passed to OctoMap's
    /// `max_range` on insertion).
    pub fn max_range(&self) -> f64 {
        self.max_range
    }

    /// Total surface points over all scans.
    pub fn total_points(&self) -> usize {
        self.scans.iter().map(|s| s.points.len()).sum()
    }
}

/// Size/seed knobs for dataset generation.
///
/// `scale` multiplies both the number of scans and the ray count per scan
/// relative to the paper-shaped defaults; the benches report the scale they
/// ran at so EXPERIMENTS.md can relate measured numbers to the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Linear workload scale in `(0, 1]` (1.0 ≈ the shape of the paper's
    /// datasets, scans × rays ≈ 10⁵–10⁶ observations).
    pub scale: f64,
    /// Master seed for scene layout and sensor noise.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            scale: 0.25,
            seed: 0xC0FFEE,
        }
    }
}

impl DatasetConfig {
    /// A milliseconds-scale configuration for unit tests.
    pub fn tiny() -> Self {
        DatasetConfig {
            scale: 0.05,
            seed: 0xC0FFEE,
        }
    }

    /// The benchmark-default configuration (seconds-scale runs).
    pub fn bench() -> Self {
        DatasetConfig::default()
    }

    /// Scales a base count, keeping at least `min`.
    fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(min)
    }

    /// Scales a base ray-grid dimension with the square root of `scale`,
    /// floored at 30 % of the base: the angular ray *density* is what
    /// creates the paper's intra-batch voxel duplication (§3.1), so scaling
    /// must thin the scan count, not the rays, below moderate scales.
    fn scaled_rays(&self, base: u32, min: u32) -> u32 {
        let factor = self.scale.sqrt().max(0.3);
        ((base as f64 * factor).round() as u32).max(min)
    }
}

/// The three datasets of the paper's Table 2, as synthetic generators.
///
/// | Paper dataset | Character reproduced here |
/// |---|---|
/// | FR-079 corridor | narrow indoor corridor, slow straight walk, short range → > 80 % inter-batch overlap, high duplication |
/// | Freiburg campus | large outdoor field with buildings, long strides → ≈ 40 % overlap |
/// | New College | courtyard loop, moderate stride → high overlap, many scans |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Indoor corridor (paper: 66 point clouds).
    Fr079Corridor,
    /// Outdoor campus (paper: 81 point clouds).
    FreiburgCampus,
    /// Courtyard loop (paper: 92 361 point clouds; scaled down heavily).
    NewCollege,
}

impl Dataset {
    /// All three datasets, in the paper's presentation order.
    pub const ALL: [Dataset; 3] = [
        Dataset::Fr079Corridor,
        Dataset::FreiburgCampus,
        Dataset::NewCollege,
    ];

    /// Stable short name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Fr079Corridor => "fr079-corridor",
            Dataset::FreiburgCampus => "freiburg-campus",
            Dataset::NewCollege => "new-college",
        }
    }

    /// Generates the scan sequence for this dataset.
    pub fn generate(&self, config: &DatasetConfig) -> ScanSequence {
        match self {
            Dataset::Fr079Corridor => generate_corridor(config),
            Dataset::FreiburgCampus => generate_campus(config),
            Dataset::NewCollege => generate_college(config),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn take_scans(
    name: &'static str,
    scene: &Scene,
    trajectory: &Trajectory,
    sensor: &DepthSensor,
    seed: u64,
) -> ScanSequence {
    let scans = trajectory
        .poses()
        .iter()
        .enumerate()
        .map(|(i, pose)| Scan {
            origin: pose.position,
            points: sensor.scan(scene, pose, seed ^ (i as u64).wrapping_mul(0x9E37)),
        })
        .filter(|s| !s.points.is_empty())
        .collect();
    ScanSequence {
        name,
        scans,
        max_range: sensor.max_range(),
    }
}

/// FR-079 corridor: a 36 m × 4 m × 3 m corridor with wall clutter; the
/// sensor walks the centreline in 0.5 m steps (step ≪ range, giving the
/// paper's 80 %+ inter-batch overlap). Lower `scale` shortens the walk but keeps
/// the step, preserving the overlap structure.
fn generate_corridor(config: &DatasetConfig) -> ScanSequence {
    let bounds = Aabb::new(Point3::new(-2.0, -2.0, 0.0), Point3::new(36.0, 2.0, 3.0));
    let mut scene = Scene::new(bounds);
    scene.add_walls(0.4);
    scene.add_floor(0.0, 0.4);
    // Cabinets / door alcoves along the walls.
    scene.scatter_boxes(
        14,
        0.3,
        1.0,
        &[Aabb::new(
            Point3::new(-1.0, -0.8, 0.2),
            Point3::new(35.0, 0.8, 2.4),
        )],
        config.seed,
    );

    let scans = config.scaled(66, 6);
    const STEP: f64 = 32.0 / 65.0; // the paper-shaped walk: 66 scans / 32 m
    let end_x = (STEP * (scans - 1) as f64).min(32.0);
    let trajectory = Trajectory::straight(
        Point3::new(0.0, 0.0, 1.4),
        Point3::new(end_x, 0.0, 1.4),
        scans,
    );
    let sensor = DepthSensor::new(
        1.6,
        1.0,
        config.scaled_rays(128, 16),
        config.scaled_rays(80, 12),
        10.0,
    );
    take_scans("fr079-corridor", &scene, &trajectory, &sensor, config.seed)
}

/// Freiburg campus: a 140 m square with building-sized boxes; 6 m strides
/// between scans give the paper's ≈ 40 % overlap.
fn generate_campus(config: &DatasetConfig) -> ScanSequence {
    let bounds = Aabb::new(
        Point3::new(-70.0, -70.0, 0.0),
        Point3::new(70.0, 70.0, 18.0),
    );
    let mut scene = Scene::new(bounds);
    scene.add_floor(0.0, 0.5);

    // A mowing-pattern survey over the field; obstacles keep clear of thin
    // tubes around each survey leg.
    const STEP: f64 = 4.5;
    const LEG_LENGTH: f64 = 90.0;
    const SPACING: f64 = 12.0;
    const STEPS_PER_LEG: usize = 21;
    let scans = config.scaled(81, 6);
    let legs = scans.div_ceil(STEPS_PER_LEG).max(1);
    let origin = Point3::new(-45.0, -24.0, 1.8);
    let trajectory = Trajectory::boustrophedon(origin, LEG_LENGTH, SPACING, legs, STEPS_PER_LEG)
        .truncated(scans);
    debug_assert!((LEG_LENGTH / (STEPS_PER_LEG - 1) as f64 - STEP).abs() < 1.0);

    let keep_clear: Vec<Aabb> = (0..legs)
        .map(|leg| {
            let y = origin.y + leg as f64 * SPACING;
            Aabb::new(
                Point3::new(-47.0, y - 1.5, 0.6),
                Point3::new(47.0, y + 1.5, 3.0),
            )
        })
        .collect();
    // Buildings.
    scene.scatter_boxes(40, 4.0, 16.0, &keep_clear, config.seed ^ 0xCA_FE);
    // Trees / lamp posts.
    scene.scatter_boxes(120, 0.4, 1.6, &keep_clear, config.seed ^ 0xBEEF);

    let sensor = DepthSensor::new(
        2.4,
        0.9,
        config.scaled_rays(240, 24),
        config.scaled_rays(96, 12),
        25.0,
    );
    take_scans("freiburg-campus", &scene, &trajectory, &sensor, config.seed)
}

/// New College: a courtyard loop; the sensor circles the quad looking
/// outward at the enclosing buildings, in ≈ 0.63 m steps along the arc.
fn generate_college(config: &DatasetConfig) -> ScanSequence {
    let bounds = Aabb::new(
        Point3::new(-40.0, -40.0, 0.0),
        Point3::new(40.0, 40.0, 12.0),
    );
    let mut scene = Scene::new(bounds);
    scene.add_walls(0.6); // enclosing buildings
    scene.add_floor(0.0, 0.5);
    // Courtyard features (fountain, hedges) away from the loop itself.
    scene.scatter_boxes(
        18,
        0.8,
        3.0,
        &[Aabb::new(
            Point3::new(-19.0, -19.0, 0.0),
            Point3::new(19.0, 19.0, 3.5),
        )],
        config.seed ^ 0x0C01_1E6E,
    );

    // The paper's New College log has 92 361 clouds; we keep the loop shape
    // at a laptop-sized count with the paper-like small stride.
    const RADIUS: f64 = 24.0;
    const ANGLE_STEP: f64 = 0.5 / RADIUS;
    let scans = config.scaled(240, 8);
    let span = (ANGLE_STEP * (scans - 1) as f64).min(std::f64::consts::TAU);
    let trajectory = Trajectory::arc(Point3::new(0.0, 0.0, 1.5), RADIUS, 0.0, span, scans, true);
    let sensor = DepthSensor::new(
        1.8,
        0.8,
        config.scaled_rays(200, 20),
        config.scaled_rays(80, 10),
        20.0,
    );
    take_scans("new-college", &scene, &trajectory, &sensor, config.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_nonempty_scans() {
        for dataset in Dataset::ALL {
            let seq = dataset.generate(&DatasetConfig::tiny());
            assert!(!seq.scans().is_empty(), "{dataset} empty");
            assert!(
                seq.scans().iter().all(|s| !s.points.is_empty()),
                "{dataset} has empty scans"
            );
            assert!(seq.total_points() > 100, "{dataset} too sparse");
            assert!(seq.max_range() > 0.0);
            assert_eq!(seq.name(), dataset.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::FreiburgCampus.generate(&DatasetConfig::tiny());
        let b = Dataset::FreiburgCampus.generate(&DatasetConfig::tiny());
        assert_eq!(a.scans(), b.scans());
        let c = Dataset::FreiburgCampus.generate(&DatasetConfig {
            seed: 999,
            ..DatasetConfig::tiny()
        });
        assert_ne!(a.scans(), c.scans());
    }

    #[test]
    fn scale_grows_workload() {
        let small = Dataset::Fr079Corridor.generate(&DatasetConfig {
            scale: 0.05,
            seed: 1,
        });
        let large = Dataset::Fr079Corridor.generate(&DatasetConfig {
            scale: 0.3,
            seed: 1,
        });
        assert!(large.scans().len() > small.scans().len());
        assert!(large.total_points() > small.total_points());
    }

    #[test]
    fn corridor_points_inside_corridor() {
        let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
        for scan in seq.scans() {
            for p in &scan.points {
                assert!(p.x > -3.0 && p.x < 37.0, "{p}");
                assert!(p.y > -3.0 && p.y < 3.0, "{p}");
                assert!(p.z > -1.0 && p.z < 4.0, "{p}");
            }
        }
    }

    #[test]
    fn scan_count_tracks_paper_shape() {
        let cfg = DatasetConfig {
            scale: 1.0,
            seed: 1,
        };
        // At scale 1.0 the scan counts match the paper's Table 2 for the two
        // small datasets.
        assert_eq!(Dataset::Fr079Corridor.generate(&cfg).scans().len(), 66);
        assert_eq!(Dataset::FreiburgCampus.generate(&cfg).scans().len(), 81);
    }
}
