//! Duplication and overlap statistics over scan sequences — the measurements
//! behind the paper's §3.1 (Figures 7/8) and Table 2.
//!
//! All statistics are computed on the *ray-traced voxel batches*: every scan
//! is converted to voxel observations exactly as OctoMap's front-end would
//! (free voxels along each beam, an occupied voxel at the endpoint), then
//! counted.

use std::collections::HashSet;
use std::collections::VecDeque;

use octocache_geom::{ray, GeomError, VoxelGrid, VoxelKey};
use serde::{Deserialize, Serialize};

use crate::dataset::{Scan, ScanSequence};

/// Duplication measurements for one voxel batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Total voxel observations (free + occupied), duplicates included.
    pub total_updates: usize,
    /// Distinct voxels among them.
    pub distinct_voxels: usize,
}

impl BatchStats {
    /// Intra-batch duplication factor (paper §3.1: 2.78–31.32×).
    pub fn duplication_factor(&self) -> f64 {
        if self.distinct_voxels == 0 {
            0.0
        } else {
            self.total_updates as f64 / self.distinct_voxels as f64
        }
    }
}

/// Ray-traces one scan into its voxel observations, calling `visit` for each
/// (duplicates included). Points outside the map cube are clamped; the scan
/// is truncated at `max_range` like OctoMap's insertion.
///
/// # Errors
///
/// Propagates [`GeomError`] when the scan origin lies outside the grid.
pub fn for_each_observation(
    scan: &Scan,
    grid: &VoxelGrid,
    max_range: f64,
    mut visit: impl FnMut(VoxelKey, bool),
) -> Result<(), GeomError> {
    let mut key_ray = ray::KeyRay::with_capacity(512);
    grid.key_of(scan.origin)?;
    for &point in &scan.points {
        let delta = point - scan.origin;
        let dist = delta.norm();
        let (end, hit) = if max_range > 0.0 && dist > max_range {
            (scan.origin + delta * (max_range / dist), false)
        } else {
            (point, true)
        };
        let end = grid.clamp_point(end);
        ray::trace_into(grid, scan.origin, end, &mut key_ray)?;
        for &k in key_ray.as_slice() {
            visit(k, false);
        }
        if hit {
            visit(grid.key_of(end)?, true);
        }
    }
    Ok(())
}

/// Computes duplication statistics for one scan at the given grid.
///
/// # Errors
///
/// See [`for_each_observation`].
pub fn batch_stats(scan: &Scan, grid: &VoxelGrid, max_range: f64) -> Result<BatchStats, GeomError> {
    let mut total = 0usize;
    let mut distinct: HashSet<VoxelKey> = HashSet::new();
    for_each_observation(scan, grid, max_range, |k, _| {
        total += 1;
        distinct.insert(k);
    })?;
    Ok(BatchStats {
        total_updates: total,
        distinct_voxels: distinct.len(),
    })
}

/// The distinct-voxel set of one scan.
///
/// # Errors
///
/// See [`for_each_observation`].
pub fn distinct_voxels(
    scan: &Scan,
    grid: &VoxelGrid,
    max_range: f64,
) -> Result<HashSet<VoxelKey>, GeomError> {
    let mut set = HashSet::new();
    for_each_observation(scan, grid, max_range, |k, _| {
        set.insert(k);
    })?;
    Ok(set)
}

/// For every scan after the first `window`, the fraction of its distinct
/// voxels that already appeared in the previous `window` scans — the
/// overlap ratio of the paper's Figure 8 (which uses `window = 3`).
///
/// # Errors
///
/// See [`for_each_observation`].
pub fn overlap_ratios(
    seq: &ScanSequence,
    grid: &VoxelGrid,
    window: usize,
) -> Result<Vec<f64>, GeomError> {
    assert!(window >= 1, "window must be at least 1");
    let mut history: VecDeque<HashSet<VoxelKey>> = VecDeque::with_capacity(window);
    let mut ratios = Vec::new();
    for scan in seq.scans() {
        let set = distinct_voxels(scan, grid, seq.max_range())?;
        if history.len() == window {
            let overlapping = set
                .iter()
                .filter(|k| history.iter().any(|h| h.contains(*k)))
                .count();
            if !set.is_empty() {
                ratios.push(overlapping as f64 / set.len() as f64);
            }
        }
        if history.len() == window {
            history.pop_front();
        }
        history.push_back(set);
    }
    Ok(ratios)
}

/// Empirical CDF of a sample: sorted `(value, cumulative fraction)` pairs.
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// One row of the paper's Table 2: dataset workload at one resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetTableRow {
    /// Mapping resolution (metres).
    pub resolution: f64,
    /// Number of point clouds (scans).
    pub point_clouds: usize,
    /// Distinct voxels across the whole sequence ("Nonduplicate Voxel #").
    pub nonduplicate_voxels: usize,
    /// Total voxel observations ("Duplicate Voxel #" in Table 2 counts all
    /// ray-traced updates).
    pub duplicate_voxels: usize,
}

/// Computes a Table 2 row for a sequence at one resolution.
///
/// # Errors
///
/// See [`for_each_observation`]; also propagates grid construction errors.
pub fn table2_row(seq: &ScanSequence, resolution: f64) -> Result<DatasetTableRow, GeomError> {
    let grid = VoxelGrid::new(resolution, 16)?;
    let mut total = 0usize;
    let mut distinct: HashSet<VoxelKey> = HashSet::new();
    for scan in seq.scans() {
        for_each_observation(scan, &grid, seq.max_range(), |k, _| {
            total += 1;
            distinct.insert(k);
        })?;
    }
    Ok(DatasetTableRow {
        resolution,
        point_clouds: seq.scans().len(),
        nonduplicate_voxels: distinct.len(),
        duplicate_voxels: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};

    fn grid(res: f64) -> VoxelGrid {
        VoxelGrid::new(res, 16).unwrap()
    }

    #[test]
    fn corridor_duplication_in_paper_band() {
        let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
        let g = grid(0.2);
        let stats = batch_stats(&seq.scans()[0], &g, seq.max_range()).unwrap();
        let f = stats.duplication_factor();
        assert!(
            (1.5..60.0).contains(&f),
            "duplication {f} far outside the paper's 2.78–31.32 band"
        );
    }

    #[test]
    fn duplication_grows_with_coarser_resolution() {
        let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
        let fine = batch_stats(&seq.scans()[0], &grid(0.1), seq.max_range()).unwrap();
        let coarse = batch_stats(&seq.scans()[0], &grid(0.8), seq.max_range()).unwrap();
        assert!(coarse.duplication_factor() > fine.duplication_factor());
    }

    #[test]
    fn corridor_overlap_is_high_campus_lower() {
        let cfg = DatasetConfig::tiny();
        let g = grid(0.2);
        let corridor = Dataset::Fr079Corridor.generate(&cfg);
        let campus = Dataset::FreiburgCampus.generate(&cfg);
        let co = overlap_ratios(&corridor, &g, 3).unwrap();
        let ca = overlap_ratios(&campus, &g, 3).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&co) > mean(&ca),
            "corridor overlap {:.2} should exceed campus {:.2}",
            mean(&co),
            mean(&ca)
        );
        assert!(mean(&co) > 0.5, "corridor overlap {:.2} too low", mean(&co));
    }

    #[test]
    fn empirical_cdf_properties() {
        let cdf = empirical_cdf(&[0.5, 0.1, 0.9, 0.1]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf[0].0, 0.1);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn table2_counts_are_consistent() {
        let seq = Dataset::NewCollege.generate(&DatasetConfig::tiny());
        let row = table2_row(&seq, 0.4).unwrap();
        assert_eq!(row.point_clouds, seq.scans().len());
        assert!(row.duplicate_voxels > row.nonduplicate_voxels);
        // Coarser resolution -> fewer distinct voxels.
        let coarse = table2_row(&seq, 0.8).unwrap();
        assert!(coarse.nonduplicate_voxels < row.nonduplicate_voxels);
    }

    #[test]
    fn overlap_window_must_be_positive() {
        let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
        let g = grid(0.4);
        let result = std::panic::catch_unwind(|| overlap_ratios(&seq, &g, 0));
        assert!(result.is_err());
    }
}
