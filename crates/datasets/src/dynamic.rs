//! A dynamic-environment scan sequence.
//!
//! The paper's §2.2 notes that OctoMap clamps log-odds to `[min_occ,
//! max_occ]` precisely "so that it can deal with dynamic environments":
//! a bounded value can be driven back across the threshold by a handful of
//! contrary observations. This generator produces the canonical test for
//! that behaviour — an obstacle that is present for the first half of the
//! scans and removed for the second half — so the mapping stack (and the
//! cache in front of it, which must preserve the semantics) can be checked
//! end to end.

use octocache_geom::{Aabb, Point3};

use crate::dataset::{Scan, ScanSequence};
use crate::scene::Scene;
use crate::sensor::DepthSensor;
use crate::trajectory::Pose;

/// Where the transient obstacle sits (for assertions in tests).
pub const OBSTACLE_CENTER: Point3 = Point3 {
    x: 6.1, // face at x = 5.6, mid-voxel at common resolutions
    y: 0.0,
    z: 1.0,
};

/// A point on the obstacle's sensor-facing surface — the voxel that actually
/// receives occupied observations while the obstacle is present (the
/// interior is occluded), and free sweeps after it vanishes.
pub const OBSTACLE_FACE: Point3 = Point3 {
    x: 5.6,
    y: 0.0,
    z: 1.0,
};

/// Generates `2 × half_scans` scans from a static sensor pose: the first
/// half observe a box at [`OBSTACLE_CENTER`] in front of a back wall, the
/// second half observe the same space with the box removed (the back wall
/// keeps providing returns, so the vacated voxels are swept free).
pub fn vanishing_obstacle(half_scans: usize, seed: u64) -> ScanSequence {
    let bounds = Aabb::new(Point3::new(-2.0, -6.0, 0.0), Point3::new(14.0, 6.0, 4.0));
    let mut with_box = Scene::new(bounds);
    with_box.add_floor(0.0, 0.4);
    // Back wall behind the obstacle.
    with_box.add_box(Aabb::new(
        Point3::new(10.0, -6.0, 0.0),
        Point3::new(10.5, 6.0, 4.0),
    ));
    let without_box = with_box.clone();
    with_box.add_box(Aabb::from_center_size(
        OBSTACLE_CENTER,
        Point3::new(1.0, 2.0, 1.6),
    ));

    let pose = Pose::new(Point3::new(0.0, 0.0, 1.0), 0.0);
    let sensor = DepthSensor::new(1.2, 0.8, 48, 36, 15.0);
    let mut scans = Vec::with_capacity(half_scans * 2);
    for i in 0..half_scans {
        scans.push(Scan {
            origin: pose.position,
            points: sensor.scan(&with_box, &pose, seed ^ i as u64),
        });
    }
    for i in 0..half_scans {
        scans.push(Scan {
            origin: pose.position,
            points: sensor.scan(&without_box, &pose, seed ^ (half_scans + i) as u64),
        });
    }
    ScanSequence::from_parts("vanishing-obstacle", scans, sensor.max_range())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obstacle_visible_then_gone() {
        let seq = vanishing_obstacle(4, 3);
        assert_eq!(seq.scans().len(), 8);
        // First-half scans contain returns near the obstacle face (x ≈ 5.5).
        let near_obstacle = |scan: &Scan| {
            scan.points
                .iter()
                // z filter excludes floor returns under the obstacle site.
                .filter(|p| (p.x - 5.5).abs() < 0.5 && p.y.abs() < 1.0 && p.z > 0.4)
                .count()
        };
        assert!(near_obstacle(&seq.scans()[0]) > 10);
        // Second-half scans see through to the back wall instead.
        assert_eq!(near_obstacle(&seq.scans()[6]), 0);
        assert!(seq.scans()[6].points.iter().any(|p| p.x > 9.5));
    }

    #[test]
    fn deterministic() {
        let a = vanishing_obstacle(3, 9);
        let b = vanishing_obstacle(3, 9);
        assert_eq!(a.scans(), b.scans());
    }
}
