use octocache_geom::Point3;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::scene::Scene;
use crate::trajectory::Pose;

/// A synthetic depth sensor: a rectangular grid of rays over a horizontal ×
/// vertical field of view, returning one surface point per ray that hits an
/// obstacle.
///
/// The angular ray density is deliberately high relative to typical mapping
/// resolutions — several rays land in the same voxel, reproducing the
/// intra-batch duplication the paper measures (2.78–31.32×, §3.1). Gaussian
/// range noise perturbs the sample points like a real depth camera.
///
/// # Example
///
/// ```
/// # use octocache_datasets::{DepthSensor, Scene, Pose};
/// # use octocache_geom::{Aabb, Point3};
/// let mut scene = Scene::new(Aabb::new(Point3::splat(-10.0), Point3::splat(10.0)));
/// scene.add_box(Aabb::new(Point3::new(4.0, -2.0, -2.0), Point3::new(5.0, 2.0, 2.0)));
/// let sensor = DepthSensor::new(1.2, 0.9, 32, 24, 8.0);
/// let cloud = sensor.scan(&scene, &Pose::new(Point3::ZERO, 0.0), 7);
/// assert!(!cloud.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthSensor {
    h_fov: f64,
    v_fov: f64,
    cols: u32,
    rows: u32,
    max_range: f64,
    noise_std: f64,
}

impl DepthSensor {
    /// Creates a sensor with the given fields of view (radians), ray grid
    /// and maximum range (metres).
    ///
    /// # Panics
    ///
    /// Panics when the ray grid is degenerate or the range non-positive.
    pub fn new(h_fov: f64, v_fov: f64, cols: u32, rows: u32, max_range: f64) -> Self {
        assert!(cols >= 2 && rows >= 2, "ray grid must be at least 2x2");
        assert!(max_range > 0.0, "max_range must be positive");
        DepthSensor {
            h_fov,
            v_fov,
            cols,
            rows,
            max_range,
            noise_std: 0.005,
        }
    }

    /// Sets the Gaussian range-noise standard deviation (metres).
    pub fn with_noise(mut self, noise_std: f64) -> Self {
        self.noise_std = noise_std;
        self
    }

    /// Returns a copy with a different maximum range (used by the sensing
    /// range sweeps of Figures 18/19).
    pub fn with_max_range(mut self, max_range: f64) -> Self {
        assert!(max_range > 0.0);
        self.max_range = max_range;
        self
    }

    /// The maximum sensing range in metres.
    pub fn max_range(&self) -> f64 {
        self.max_range
    }

    /// Rays per scan.
    pub fn rays_per_scan(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// Scans the scene from a pose: one point per hitting ray, with range
    /// noise drawn deterministically from `seed`.
    pub fn scan(&self, scene: &Scene, pose: &Pose, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cloud = Vec::with_capacity(self.rays_per_scan());
        for j in 0..self.rows {
            let pitch = pose.pitch + ((j as f64 / (self.rows - 1) as f64) - 0.5) * self.v_fov;
            for i in 0..self.cols {
                let yaw = pose.yaw + ((i as f64 / (self.cols - 1) as f64) - 0.5) * self.h_fov;
                let dir = Point3::new(
                    pitch.cos() * yaw.cos(),
                    pitch.cos() * yaw.sin(),
                    pitch.sin(),
                );
                if let Some(t) = scene.ray_cast(pose.position, dir, self.max_range) {
                    let noise = gaussian(&mut rng) * self.noise_std;
                    let d = (t + noise).clamp(0.05, self.max_range);
                    cloud.push(pose.position + dir * d);
                }
            }
        }
        cloud
    }
}

/// Box–Muller standard normal sample.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use octocache_geom::Aabb;

    fn walled_room() -> Scene {
        let mut scene = Scene::new(Aabb::new(Point3::splat(-8.0), Point3::splat(8.0)));
        scene.add_walls(0.5);
        scene
    }

    #[test]
    fn scan_hits_walls_within_range() {
        let scene = walled_room();
        let sensor = DepthSensor::new(1.0, 0.6, 16, 12, 20.0);
        let cloud = sensor.scan(&scene, &Pose::new(Point3::ZERO, 0.0), 1);
        assert!(!cloud.is_empty());
        for p in &cloud {
            // Every sample sits near the +X wall plane (x = 8) within noise
            // and angular spread.
            assert!(p.x > 6.0 && p.x < 8.7, "{p}");
        }
    }

    #[test]
    fn empty_space_yields_no_points() {
        let scene = Scene::new(Aabb::new(Point3::splat(-8.0), Point3::splat(8.0)));
        let sensor = DepthSensor::new(1.0, 0.6, 8, 8, 5.0);
        let cloud = sensor.scan(&scene, &Pose::new(Point3::ZERO, 0.0), 1);
        assert!(cloud.is_empty());
    }

    #[test]
    fn range_limits_apply() {
        let scene = walled_room();
        let sensor = DepthSensor::new(0.8, 0.5, 8, 8, 3.0); // walls at ~8 m
        let cloud = sensor.scan(&scene, &Pose::new(Point3::ZERO, 0.0), 1);
        assert!(cloud.is_empty());
        let longer = sensor.with_max_range(12.0);
        assert!(!longer
            .scan(&scene, &Pose::new(Point3::ZERO, 0.0), 1)
            .is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let scene = walled_room();
        let sensor = DepthSensor::new(1.0, 0.6, 12, 10, 20.0);
        let pose = Pose::new(Point3::new(1.0, 0.5, 0.0), 0.3);
        let a = sensor.scan(&scene, &pose, 5);
        let b = sensor.scan(&scene, &pose, 5);
        assert_eq!(a, b);
        let c = sensor.scan(&scene, &pose, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_zero_gives_exact_surface() {
        let mut scene = Scene::new(Aabb::new(Point3::splat(-10.0), Point3::splat(10.0)));
        scene.add_box(Aabb::new(
            Point3::new(5.0, -5.0, -5.0),
            Point3::new(6.0, 5.0, 5.0),
        ));
        let sensor = DepthSensor::new(0.4, 0.4, 8, 8, 20.0).with_noise(0.0);
        let cloud = sensor.scan(&scene, &Pose::new(Point3::ZERO, 0.0), 1);
        for p in &cloud {
            assert!((p.x - 5.0).abs() < 1e-6, "{p}");
        }
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn degenerate_grid_panics() {
        DepthSensor::new(1.0, 1.0, 1, 8, 5.0);
    }
}
