//! Figure 21: 3D environment construction with the RT (deduplicating)
//! ray-tracing front-end — OctoMap-RT vs serial/parallel OctoCache-RT.
//!
//! The paper reports OctoCache-RT up to 2.51× faster than OctoMap-RT at
//! high resolutions, with the parallel design adding ≈ 34 % at 0.1 m.

use octocache_bench::{cache_for, construct, grid, load_dataset, print_table, secs, Backend};
use octocache_datasets::Dataset;

fn main() {
    let resolutions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        for &res in &resolutions {
            let cache = cache_for(&seq, res);
            let base = construct(&seq, Backend::OctoMapRt.build(grid(res), cache));
            let serial = construct(&seq, Backend::SerialRt.build(grid(res), cache));
            let parallel = construct(&seq, Backend::ParallelRt.build(grid(res), cache));
            rows.push(vec![
                dataset.name().to_string(),
                format!("{res:.1}"),
                secs(base.total),
                secs(serial.total),
                secs(parallel.total),
                format!(
                    "{:.2}x",
                    base.total.as_secs_f64() / serial.total.as_secs_f64()
                ),
                format!(
                    "{:.2}x",
                    base.total.as_secs_f64() / parallel.total.as_secs_f64()
                ),
                format!("{:.0}%", serial.hit_rate() * 100.0),
            ]);
        }
    }
    print_table(
        "Figure 21 — 3D construction runtime: OctoMap-RT vs OctoCache-RT",
        &[
            "dataset",
            "res(m)",
            "octomap-rt(s)",
            "serial-rt(s)",
            "parallel-rt(s)",
            "serial-speedup",
            "parallel-speedup",
            "hit-rate",
        ],
        &rows,
    );
    println!("\npaper: octocache-rt up to 2.51x at high resolution; parallel +34% at 0.1m");
}
