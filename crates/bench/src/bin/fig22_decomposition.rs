//! Figure 22: runtime decomposition — ray tracing, cache insertion, cache
//! eviction, octree update — with the voxel count reaching the octree.
//!
//! The paper reports cache insertion 2.57–5.85× faster than OctoMap's
//! octree update, with thread 2's residual octree work only 9.7–23.8 % of
//! OctoMap's workflow.

use octocache_bench::{
    cache_for, construct, grid, load_dataset, print_table, reference_resolution, secs, Backend,
};
use octocache_datasets::Dataset;

fn main() {
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        let cache = cache_for(&seq, res);
        for backend in Backend::STANDARD {
            let r = construct(&seq, backend.build(grid(res), cache));
            rows.push(vec![
                dataset.name().to_string(),
                r.backend.to_string(),
                secs(r.phases.ray_tracing),
                secs(r.phases.cache_insert),
                secs(r.phases.cache_evict),
                secs(r.phases.octree_update),
                secs(r.phases.wait),
                format!("{}", r.octree_updates),
                secs(r.total),
            ]);
            if backend == Backend::OctoMap {
                summary.push((dataset, r.phases.octree_update));
            } else if backend == Backend::Serial {
                let base = summary
                    .iter()
                    .find(|(d, _)| *d == dataset)
                    .map(|(_, t)| *t)
                    .unwrap();
                println!(
                    "# {}: cache insertion {:.2}x faster than octomap octree update; residual octree {:.1}% of octomap's",
                    dataset.name(),
                    base.as_secs_f64() / r.phases.cache_insert.as_secs_f64().max(1e-9),
                    r.phases.octree_update.as_secs_f64() / base.as_secs_f64().max(1e-9) * 100.0,
                );
            }
        }
    }
    print_table(
        "Figure 22 — runtime decomposition at the reference resolution",
        &[
            "dataset",
            "backend",
            "raytrace(s)",
            "cache-ins(s)",
            "evict(s)",
            "octree(s)",
            "wait(s)",
            "voxels->octree",
            "total(s)",
        ],
        &rows,
    );
    println!(
        "\npaper: cache insert 2.57-5.85x faster than octree update; residual octree 9.7-23.8%"
    );
}
