//! Figure 20: 3D environment construction — OctoMap vs serial vs parallel
//! OctoCache across the three datasets and resolutions 0.1–0.9 m.
//!
//! The paper reports serial OctoCache 1.03–2.06× faster than OctoMap at
//! 0.1 m resolution, with the parallel design adding a further 0.16–0.33×
//! at 0.1–0.3 m.

use octocache_bench::{cache_for, construct, grid, load_dataset, print_table, secs, Backend};
use octocache_datasets::Dataset;

fn main() {
    let resolutions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        for &res in &resolutions {
            let cache = cache_for(&seq, res);
            let base = construct(&seq, Backend::OctoMap.build(grid(res), cache));
            let serial = construct(&seq, Backend::Serial.build(grid(res), cache));
            let parallel = construct(&seq, Backend::Parallel.build(grid(res), cache));
            rows.push(vec![
                dataset.name().to_string(),
                format!("{res:.1}"),
                secs(base.total),
                secs(serial.total),
                secs(parallel.total),
                format!(
                    "{:.2}x",
                    base.total.as_secs_f64() / serial.total.as_secs_f64()
                ),
                format!(
                    "{:.2}x",
                    base.total.as_secs_f64() / parallel.total.as_secs_f64()
                ),
                format!("{:.0}%", serial.hit_rate() * 100.0),
            ]);
        }
    }
    print_table(
        "Figure 20 — 3D construction runtime: OctoMap vs OctoCache",
        &[
            "dataset",
            "res(m)",
            "octomap(s)",
            "serial(s)",
            "parallel(s)",
            "serial-speedup",
            "parallel-speedup",
            "hit-rate",
        ],
        &rows,
    );
    println!("\npaper: serial 1.03-2.06x @0.1m; parallel adds 0.16-0.33x at 0.1-0.3m");
}
