//! Figure 24 / §6.2.4: cache shape — construction time and hit ratio vs τ
//! at a fixed cache capacity `M = w × τ`.
//!
//! The paper finds the optimum at τ = 2–4: τ = 1 forces early evictions on
//! collisions, large τ inflates per-insertion search cost.

use octocache::CacheConfig;
use octocache_bench::{cache_for, construct, grid, load_dataset, print_table, secs, Backend};
use octocache_datasets::Dataset;

fn main() {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = 0.2;
        // Fixed capacity from the paper's sizing rule at tau=4…
        let reference = cache_for(&seq, res);
        let capacity = reference.capacity_after_eviction();
        // …then reshape at constant M.
        for tau in [1usize, 2, 4, 8, 16] {
            let buckets = (capacity / tau).next_power_of_two();
            let cfg = CacheConfig::builder()
                .num_buckets(buckets)
                .tau(tau)
                .build()
                .expect("valid config");
            let r = construct(&seq, Backend::Serial.build(grid(res), cfg));
            rows.push(vec![
                dataset.name().to_string(),
                format!("{tau}"),
                format!("{buckets}"),
                format!("{}", cfg.capacity_after_eviction()),
                secs(r.total),
                format!("{:.1}%", r.hit_rate() * 100.0),
            ]);
        }
    }
    print_table(
        "Figure 24 — construction time and hit ratio vs tau at fixed capacity",
        &[
            "dataset", "tau", "buckets", "capacity", "time(s)", "hit-rate",
        ],
        &rows,
    );
    println!("\npaper: optimum tau between 2 and 4 for most datasets");
}
