//! Figure 10: per-voxel octree insertion time under different voxel orders.
//!
//! Collects the distinct voxels of each dataset's ray-traced batches, then
//! inserts them into an empty octree in each of the paper's six orders
//! (random shuffle, sort by X/Y/Z, original ray-traced order, Morton order)
//! and reports per-voxel time, node visits per voxel, and the locality
//! functional 𝓕. The paper finds Morton fastest (1.34–1.38× over the
//! original order, 1.97–3.32× over random) with speed positively correlated
//! to 𝓕.

use std::collections::HashSet;
use std::time::Instant;

use octocache::locality::{locality_f, VoxelOrder};
use octocache_bench::{grid, load_dataset, print_table};
use octocache_datasets::{stats, Dataset};
use octocache_geom::VoxelKey;
use octocache_octomap::{OccupancyOcTree, OccupancyParams};

fn main() {
    let res = 0.1;
    let g = grid(res);
    let mut rows = Vec::new();

    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        // Distinct voxels in first-seen (ray-traced) order = "original".
        let mut seen: HashSet<VoxelKey> = HashSet::new();
        let mut keys: Vec<VoxelKey> = Vec::new();
        for scan in seq.scans() {
            stats::for_each_observation(scan, &g, seq.max_range(), |k, _| {
                if seen.insert(k) {
                    keys.push(k);
                }
            })
            .expect("in-grid scan");
        }
        println!("# {}: {} distinct voxels", dataset.name(), keys.len());

        let mut order_rows: Vec<(f64, Vec<String>)> = Vec::new();
        let repetitions = 4;
        for order in VoxelOrder::ALL {
            let mut ordered = keys.clone();
            order.apply(&mut ordered);
            let f_value = locality_f(&ordered, 16);

            // One warm-up run plus `repetitions` timed runs (the paper
            // averages 100 runs; we keep it proportionate to the scale).
            let mut total_ns = 0u128;
            let mut visits = 0.0;
            for rep in 0..=repetitions {
                let mut tree = OccupancyOcTree::new(g, OccupancyParams::default());
                tree.stats().reset();
                let t0 = Instant::now();
                for &k in &ordered {
                    tree.update_node(k, true);
                }
                let elapsed = t0.elapsed();
                if rep > 0 {
                    total_ns += elapsed.as_nanos();
                    visits = tree.stats().snapshot().visits_per_update();
                }
            }
            let per_voxel_ns = total_ns as f64 / repetitions as f64 / ordered.len().max(1) as f64;
            order_rows.push((
                per_voxel_ns,
                vec![
                    dataset.name().to_string(),
                    order.label().to_string(),
                    format!("{per_voxel_ns:.0}"),
                    format!("{visits:.1}"),
                    format!("{f_value}"),
                ],
            ));
        }
        // Report speedup of Morton over each order.
        let morton_ns = order_rows
            .iter()
            .find(|(_, r)| r[1] == "morton")
            .map(|(ns, _)| *ns)
            .unwrap();
        for (ns, mut row) in order_rows {
            row.push(format!("{:.2}x", ns / morton_ns));
            rows.push(row);
        }
    }

    print_table(
        "Figure 10 — per-voxel insertion by order (morton should be fastest)",
        &[
            "dataset",
            "order",
            "ns/voxel",
            "visits/voxel",
            "F(S)",
            "morton-speedup",
        ],
        &rows,
    );
    println!(
        "\npaper: morton 1.34-1.38x vs original, 1.97-3.32x vs random; speed correlates with F"
    );
}
