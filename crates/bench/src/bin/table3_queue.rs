//! Table 3: inter-thread data transmission overhead of the parallel design.
//!
//! Runs the parallel OctoCache on the three datasets and prints the phase
//! times including shared-buffer enqueue (thread 1) and dequeue (thread 2).
//! The paper's point: enqueue/dequeue are negligible next to ray tracing,
//! cache insertion and octree update.

use octocache_bench::{
    cache_for, construct, grid, load_dataset, print_table, reference_resolution, secs, Backend,
};
use octocache_datasets::Dataset;

fn main() {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        let cache = cache_for(&seq, res);
        let r = construct(&seq, Backend::Parallel.build(grid(res), cache));
        let queue_share = (r.phases.enqueue + r.phases.dequeue).as_secs_f64()
            / r.total.as_secs_f64().max(1e-12)
            * 100.0;
        rows.push(vec![
            dataset.name().to_string(),
            secs(r.phases.ray_tracing),
            secs(r.phases.cache_insert),
            secs(r.phases.cache_evict),
            secs(r.phases.octree_update),
            secs(r.phases.enqueue),
            secs(r.phases.dequeue),
            format!("{queue_share:.2}%"),
        ]);
    }
    print_table(
        "Table 3 — inter-thread transmission overhead (seconds)",
        &[
            "dataset",
            "raytrace",
            "cache-ins",
            "evict",
            "octree-upd",
            "enqueue",
            "dequeue",
            "queue-share",
        ],
        &rows,
    );
    println!(
        "\npaper: enqueue/dequeue negligible (e.g. FR-079: 0.017/0.050 s vs 16.4 s insertion)"
    );
}
