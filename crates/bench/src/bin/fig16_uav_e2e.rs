//! Figure 16: UAV autonomous navigation — end-to-end runtime, max safe
//! velocity and task completion time, OctoMap vs (parallel) OctoCache, for
//! both airframes over the four environments.
//!
//! The paper reports OctoCache 1.78× / 3.02× / 2.95× / 1.98× faster
//! end-to-end (Openland/Farm/Room/Factory) and 13–28 % shorter missions on
//! the AscTec; the DJI Spark sees no gain in Openland/Factory because the
//! bottleneck shifts to rotor power.

use octocache_bench::{print_table, uav_mission, Backend};
use octocache_sim::{Environment, UavModel};

fn main() {
    let mut rows = Vec::new();
    for uav in UavModel::all() {
        for env in Environment::ALL {
            let params = env.baseline_params();
            let base = uav_mission(env, uav, Backend::OctoMap, params);
            let cached = uav_mission(env, uav, Backend::Parallel, params);
            rows.push(vec![
                uav.name.to_string(),
                env.name().to_string(),
                format!("{:.1}", base.avg_cycle_compute_s * 1e3),
                format!("{:.1}", cached.avg_cycle_compute_s * 1e3),
                format!(
                    "{:.2}x",
                    base.avg_cycle_compute_s / cached.avg_cycle_compute_s.max(1e-12)
                ),
                format!("{:.2}", base.avg_velocity),
                format!("{:.2}", cached.avg_velocity),
                format!("{:.1}", base.completion_time_s),
                format!("{:.1}", cached.completion_time_s),
                format!(
                    "{:.0}%",
                    (1.0 - cached.completion_time_s / base.completion_time_s) * 100.0
                ),
                format!(
                    "{}/{}",
                    if base.reached_goal { "y" } else { "n" },
                    if cached.reached_goal { "y" } else { "n" }
                ),
            ]);
        }
    }
    print_table(
        "Figure 16 — UAV end-to-end: OctoMap vs OctoCache",
        &[
            "uav",
            "env",
            "e2e-octomap(ms)",
            "e2e-octocache(ms)",
            "e2e-speedup",
            "v-octomap(m/s)",
            "v-octocache(m/s)",
            "T-octomap(s)",
            "T-octocache(s)",
            "T-saved",
            "reached",
        ],
        &rows,
    );
    println!("\npaper (AscTec): e2e 1.78x/3.02x/2.95x/1.98x; completion -13%/-27%/-28%/-19%");
    println!("paper (Spark): no gain in openland/factory (rotor-power-bound)");
}
