//! Ablation C: query-readiness latency.
//!
//! The paper's motivating claim: with vanilla OctoMap, planning queries must
//! wait for the full octree update of the current batch; with OctoCache they
//! can be served right after the (much faster) cache insertion. This
//! ablation measures, per scan, the time from scan arrival until a fixed
//! batch of planner-style queries has been answered.

use std::time::Instant;

use octocache::MappingSystem;
use octocache_bench::{cache_for, grid, load_dataset, print_table, reference_resolution, Backend};
use octocache_datasets::Dataset;
use octocache_geom::Point3;

fn main() {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        let cache = cache_for(&seq, res);
        for backend in [Backend::OctoMap, Backend::Serial, Backend::Parallel] {
            let mut map = backend.build(grid(res), cache);
            let mut total = std::time::Duration::ZERO;
            let mut queries = 0usize;
            for scan in seq.scans() {
                let t0 = Instant::now();
                map.insert_scan(scan.origin, &scan.points, seq.max_range())
                    .expect("in-grid scan");
                // A planner-style probe: 64 points on the segment toward a
                // synthetic goal.
                let goal = scan.origin + Point3::new(seq.max_range(), 0.0, 0.0);
                for i in 1..=64 {
                    let p = scan.origin.lerp(goal, i as f64 / 64.0);
                    let _ = map.is_occupied_at(p);
                    queries += 1;
                }
                total += t0.elapsed();
            }
            map.finish();
            rows.push(vec![
                dataset.name().to_string(),
                map.name(),
                format!("{:.3}", total.as_secs_f64()),
                format!(
                    "{:.2}",
                    total.as_secs_f64() * 1e3 / seq.scans().len().max(1) as f64
                ),
                format!("{queries}"),
            ]);
        }
    }
    print_table(
        "Ablation C — scan-to-queries-answered latency",
        &["dataset", "backend", "total(s)", "per-scan(ms)", "queries"],
        &rows,
    );
    println!("\nexpected: octocache backends answer queries sooner (no octree update on the path)");
}
