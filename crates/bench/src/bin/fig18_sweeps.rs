//! Figure 18: OctoMap vs OctoCache under parameter sweeps (AscTec Pelican,
//! Room-like environment): (a,b) fixed sensing range 3 m with resolutions
//! 0.1–0.2 m; (c,d) fixed resolution 0.15 m with ranges 2–4 m.
//!
//! The paper's shape: the OctoCache advantage grows with finer resolution
//! and longer range (up to 2.46×/3.66× e2e, 1.65–1.72× velocity), and
//! shrinks toward parity at coarse/short settings.

use octocache_bench::{print_table, uav_mission, Backend};
use octocache_sim::{BaselineParams, Environment, UavModel};

fn sweep(label: &str, settings: &[BaselineParams]) {
    let uav = UavModel::asctec_pelican();
    let env = Environment::Room;
    let mut rows = Vec::new();
    for &params in settings {
        let base = uav_mission(env, uav, Backend::OctoMap, params);
        let cached = uav_mission(env, uav, Backend::Parallel, params);
        rows.push(vec![
            format!("{:.2}", params.sensing_range),
            format!("{:.3}", params.resolution),
            format!("{:.1}", base.avg_cycle_compute_s * 1e3),
            format!("{:.1}", cached.avg_cycle_compute_s * 1e3),
            format!(
                "{:.2}x",
                base.avg_cycle_compute_s / cached.avg_cycle_compute_s.max(1e-12)
            ),
            format!("{:.2}", base.avg_velocity),
            format!("{:.2}", cached.avg_velocity),
            format!("{:.1}", base.completion_time_s),
            format!("{:.1}", cached.completion_time_s),
        ]);
    }
    print_table(
        label,
        &[
            "range(m)",
            "res(m)",
            "e2e-base(ms)",
            "e2e-cache(ms)",
            "speedup",
            "v-base",
            "v-cache",
            "T-base(s)",
            "T-cache(s)",
        ],
        &rows,
    );
}

fn main() {
    let fixed_range: Vec<BaselineParams> = [0.1, 0.125, 0.15, 0.175, 0.2]
        .into_iter()
        .map(|resolution| BaselineParams {
            sensing_range: 3.0,
            resolution,
        })
        .collect();
    sweep(
        "Figure 18(a,b) — fixed range 3 m, resolution sweep",
        &fixed_range,
    );

    let fixed_res: Vec<BaselineParams> = [2.0, 2.5, 3.0, 3.5, 4.0]
        .into_iter()
        .map(|sensing_range| BaselineParams {
            sensing_range,
            resolution: 0.15,
        })
        .collect();
    sweep(
        "Figure 18(c,d) — fixed resolution 0.15 m, range sweep",
        &fixed_res,
    );
    println!(
        "\npaper: speedup grows with finer res / longer range (2.46x @4m/0.15m, 3.66x @3m/0.1m)"
    );
}
