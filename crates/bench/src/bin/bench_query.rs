//! Concurrent snapshot-query benchmark: reader threads hammer a
//! [`QueryHandle`] while the parallel pipeline keeps mapping, sweeping
//! reader count × octree-update worker count. The headline numbers are
//! aggregate reader throughput (lock-free reads must scale with reader
//! count instead of serialising on the octree mutex), the mapping
//! throughput it costs (snapshot publish overhead), and the Morton-sweep
//! prefix-reuse fraction of the batch query path.
//!
//! Writes `BENCH_query.json` (path overridable as the first argument): a
//! JSON array with one object per configuration, plus a final
//! `batch-vs-single` microbenchmark of the batch API against one-at-a-time
//! lookups on the same snapshot.

use octocache::pipeline::RayTracer;
use octocache::{MappingSystem, ParallelOctoCache, QueryHandle};
use octocache_bench::{
    cache_for, cache_with, grid, load_dataset, print_table, reference_resolution, scenario_smoke,
};
use octocache_datasets::Dataset;
use octocache_geom::VoxelKey;
use octocache_octomap::OccupancyParams;
use octocache_telemetry::SharedRecorder;
use serde::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Octree-update worker counts swept.
const WORKER_COUNTS: [usize; 2] = [1, 4];

/// Concurrent reader counts swept (0 = mapping alone, the baseline the
/// publish overhead is measured against).
const READER_COUNTS: [usize; 4] = [0, 1, 4, 8];

/// Batch size the readers issue (large enough for Morton prefix reuse to
/// matter, small enough to observe fresh snapshots often).
const BATCH: usize = 256;

struct Run {
    dataset: &'static str,
    workers: usize,
    readers: usize,
    scans: u64,
    map_total_s: f64,
    scans_per_s: f64,
    reader_queries: u64,
    reader_queries_per_s: f64,
    snapshots_observed: u64,
    avg_publish_ms: f64,
    batch_reuse: f64,
}

fn run_value(r: &Run) -> Value {
    Value::Map(vec![
        ("dataset".to_string(), Value::Str(r.dataset.to_string())),
        ("workers".to_string(), Value::U64(r.workers as u64)),
        ("readers".to_string(), Value::U64(r.readers as u64)),
        ("scans".to_string(), Value::U64(r.scans)),
        ("map_total_s".to_string(), Value::F64(r.map_total_s)),
        ("scans_per_s".to_string(), Value::F64(r.scans_per_s)),
        ("reader_queries".to_string(), Value::U64(r.reader_queries)),
        (
            "reader_queries_per_s".to_string(),
            Value::F64(r.reader_queries_per_s),
        ),
        (
            "snapshots_observed".to_string(),
            Value::U64(r.snapshots_observed),
        ),
        ("avg_publish_ms".to_string(), Value::F64(r.avg_publish_ms)),
        ("batch_reuse".to_string(), Value::F64(r.batch_reuse)),
    ])
}

/// A reader thread: cycles through the probe set in `BATCH`-sized
/// Morton-batched lookups until the writer stops, counting queries and
/// distinct epochs observed.
fn reader_loop(
    handle: QueryHandle,
    probes: &[VoxelKey],
    stop: &AtomicBool,
    queries: &AtomicU64,
    epochs: &AtomicU64,
) {
    let mut offset = 0usize;
    let mut last_epoch = u64::MAX;
    let mut local_epochs = 0u64;
    while !stop.load(Ordering::Acquire) {
        let epoch = handle.epoch();
        if epoch != last_epoch {
            last_epoch = epoch;
            local_epochs += 1;
        }
        let end = (offset + BATCH).min(probes.len());
        // Through the handle, so the traversal counters reach telemetry.
        let (answers, _) = handle.batch_occupancy(&probes[offset..end]);
        queries.fetch_add(answers.len() as u64, Ordering::Relaxed);
        offset = if end == probes.len() { 0 } else { end };
    }
    epochs.fetch_add(local_epochs, Ordering::Relaxed);
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_query.json".to_string());

    // Shared-scenario smoke check (same seeded generator as the
    // integration suites) before committing minutes to the sweep.
    let smoke = scenario_smoke(Box::new(ParallelOctoCache::with_workers(
        grid(0.5),
        OccupancyParams::default(),
        cache_with(1 << 7, 2),
        RayTracer::Standard,
        2,
    )));
    println!("# scenario smoke checksum {smoke:#018x}");

    let dataset = Dataset::Fr079Corridor;
    let seq = load_dataset(dataset);
    let res = reference_resolution(dataset);
    let cache = cache_for(&seq, res);
    let g = grid(res);

    // Probe keys: every scan endpoint that falls inside the grid — the
    // query mix a planner validating trajectories against the map issues.
    let probes: Vec<VoxelKey> = seq
        .scans()
        .iter()
        .flat_map(|s| s.points.iter())
        .filter_map(|&p| g.key_of(p).ok())
        .collect();
    assert!(!probes.is_empty(), "dataset produced no in-grid points");

    let mut runs: Vec<Run> = Vec::new();
    let mut rows = Vec::new();
    for workers in WORKER_COUNTS {
        for readers in READER_COUNTS {
            let recorder = SharedRecorder::new();
            let mut system: Box<dyn MappingSystem> = Box::new(ParallelOctoCache::with_workers(
                g,
                OccupancyParams::default(),
                cache,
                RayTracer::Standard,
                workers,
            ));
            system.set_recorder(Box::new(recorder.clone()));
            let handle = system.query_handle();

            let stop = AtomicBool::new(false);
            let reader_queries = AtomicU64::new(0);
            let epochs_observed = AtomicU64::new(0);
            let (scan_count, map_total_s, reader_s) = std::thread::scope(|scope| {
                for _ in 0..readers {
                    let h = handle.clone();
                    let (probes, stop) = (&probes[..], &stop);
                    let (q, e) = (&reader_queries, &epochs_observed);
                    scope.spawn(move || reader_loop(h, probes, stop, q, e));
                }
                let t0 = Instant::now();
                let mut scan_count = 0u64;
                for scan in seq.scans() {
                    system
                        .insert_scan(scan.origin, &scan.points, seq.max_range())
                        .expect("scan within grid");
                    scan_count += 1;
                }
                let map_total_s = t0.elapsed().as_secs_f64();
                stop.store(true, Ordering::Release);
                // Readers stop on their own; the scope joins them.
                (scan_count, map_total_s, t0.elapsed().as_secs_f64())
            });
            system.finish();

            let records = recorder.records();
            let publishes: Vec<u64> = records
                .iter()
                .map(|r| r.snapshot_publish_ns)
                .filter(|&n| n > 0)
                .collect();
            let avg_publish_ms = if publishes.is_empty() {
                0.0
            } else {
                publishes.iter().sum::<u64>() as f64 / publishes.len() as f64 / 1e6
            };
            // Reader batch stats are drained into the per-scan records at
            // each republish; sum them, plus whatever accrued since the
            // last publish.
            let residual = handle.batch_stats();
            let visited =
                records.iter().map(|r| r.batch_nodes_visited).sum::<u64>() + residual.nodes_visited;
            let reused =
                records.iter().map(|r| r.batch_nodes_reused).sum::<u64>() + residual.nodes_reused;
            let q = reader_queries.load(Ordering::Relaxed);
            let run = Run {
                dataset: dataset.name(),
                workers,
                readers,
                scans: scan_count,
                map_total_s,
                scans_per_s: scan_count as f64 / map_total_s.max(1e-9),
                reader_queries: q,
                reader_queries_per_s: q as f64 / reader_s.max(1e-9),
                snapshots_observed: epochs_observed.load(Ordering::Relaxed),
                avg_publish_ms,
                batch_reuse: reused as f64 / (visited + reused).max(1) as f64,
            };
            rows.push(vec![
                format!("{}", run.workers),
                format!("{}", run.readers),
                format!("{:.1}", run.scans_per_s),
                format!("{:.0}", run.reader_queries_per_s / 1e3),
                format!("{}", run.snapshots_observed),
                format!("{:.2}", run.avg_publish_ms),
                format!("{:.3}", run.batch_reuse),
            ]);
            runs.push(run);
        }
    }

    print_table(
        "Concurrent snapshot queries — readers × octree-update workers",
        &[
            "workers",
            "readers",
            "scans/s",
            "kqueries/s",
            "snapshots",
            "publish(ms)",
            "reuse",
        ],
        &rows,
    );

    // The scaling headline: aggregate reader throughput, 8 readers vs 1.
    for workers in WORKER_COUNTS {
        let tput = |r: usize| {
            runs.iter()
                .find(|x| x.workers == workers && x.readers == r)
                .map(|x| x.reader_queries_per_s)
                .unwrap_or(0.0)
        };
        println!(
            "workers={workers}: 8-reader vs 1-reader throughput ratio {:.2}",
            tput(8) / tput(1).max(1e-9)
        );
    }

    // Batch-vs-single microbenchmark on a settled snapshot.
    let mut system: Box<dyn MappingSystem> = Box::new(ParallelOctoCache::with_workers(
        g,
        OccupancyParams::default(),
        cache,
        RayTracer::Standard,
        4,
    ));
    for scan in seq.scans() {
        system
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .expect("scan within grid");
    }
    let snap = system.snapshot();
    let t0 = Instant::now();
    let (batch_answers, stats) = snap.batch_occupancy(&probes);
    let batch_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut single_known = 0usize;
    for &k in &probes {
        if snap.occupancy(k).is_some() {
            single_known += 1;
        }
    }
    let single_s = t1.elapsed().as_secs_f64();
    let known = batch_answers.iter().filter(|a| a.is_some()).count();
    assert_eq!(known, single_known, "batch and single paths disagree");
    println!(
        "batch-vs-single: {} probes, batch {:.1} Mq/s vs single {:.1} Mq/s (speedup {:.2}x, prefix reuse {:.1}%)",
        probes.len(),
        probes.len() as f64 / batch_s.max(1e-9) / 1e6,
        probes.len() as f64 / single_s.max(1e-9) / 1e6,
        single_s / batch_s.max(1e-9),
        stats.reuse_fraction() * 100.0
    );

    let mut values: Vec<Value> = runs.iter().map(run_value).collect();
    values.push(Value::Map(vec![
        (
            "microbench".to_string(),
            Value::Str("batch-vs-single".to_string()),
        ),
        ("probes".to_string(), Value::U64(probes.len() as u64)),
        ("batch_s".to_string(), Value::F64(batch_s)),
        ("single_s".to_string(), Value::F64(single_s)),
        (
            "batch_reuse".to_string(),
            Value::F64(stats.reuse_fraction()),
        ),
    ]));
    let json = serde::json::to_string(&Value::Seq(values));
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}
