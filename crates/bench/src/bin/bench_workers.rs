//! Worker-count sweep for the N-worker parallel pipeline: constructs each
//! dataset with the parallel OctoCache at N ∈ {1, 2, 4, 8} octree-update
//! workers and reports scan throughput, per-worker utilization (from the
//! recorded busy/idle telemetry) and shard skew.
//!
//! Writes `BENCH_workers.json` (path overridable as the first argument):
//! a JSON array with one object per dataset × worker count, the
//! machine-readable record of how eviction-stream sharding scales.

use octocache::pipeline::RayTracer;
use octocache::{MappingSystem, ParallelOctoCache};
use octocache_bench::{
    cache_for, cache_with, construct, grid, load_dataset, print_table, reference_resolution,
    scenario_smoke,
};
use octocache_datasets::Dataset;
use octocache_octomap::OccupancyParams;
use octocache_telemetry::{SharedRecorder, TraceSummary};
use serde::Value;

/// Worker counts swept (the cross-backend differential suite covers the
/// same set).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Construction attempts per configuration; the best throughput is kept so
/// a scheduler hiccup on a loaded machine does not mask scaling.
const REPS: usize = 2;

struct Run {
    dataset: &'static str,
    workers: usize,
    scans: u64,
    total_s: f64,
    scans_per_s: f64,
    summary: TraceSummary,
}

fn run_value(r: &Run) -> Value {
    Value::Map(vec![
        ("dataset".to_string(), Value::Str(r.dataset.to_string())),
        ("backend".to_string(), Value::Str(r.summary.backend.clone())),
        ("workers".to_string(), Value::U64(r.workers as u64)),
        ("scans".to_string(), Value::U64(r.scans)),
        ("total_s".to_string(), Value::F64(r.total_s)),
        ("scans_per_s".to_string(), Value::F64(r.scans_per_s)),
        (
            "observations".to_string(),
            Value::U64(r.summary.observations),
        ),
        (
            "cache_hit_ratio".to_string(),
            Value::F64(r.summary.hit_ratio()),
        ),
        (
            "worker_utilization".to_string(),
            Value::Seq(
                r.summary
                    .worker_utilization()
                    .into_iter()
                    .map(Value::F64)
                    .collect(),
            ),
        ),
        (
            "worker_busy_ns".to_string(),
            Value::Seq(
                r.summary
                    .worker_busy_ns
                    .iter()
                    .map(|&n| Value::U64(n))
                    .collect(),
            ),
        ),
        (
            "worker_idle_ns".to_string(),
            Value::Seq(
                r.summary
                    .worker_idle_ns
                    .iter()
                    .map(|&n| Value::U64(n))
                    .collect(),
            ),
        ),
        (
            "max_shard_skew".to_string(),
            Value::F64(r.summary.max_shard_skew),
        ),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_workers.json".to_string());

    // Shared-scenario smoke check (same seeded generator as the
    // integration suites) before committing minutes to the sweep.
    let smoke = scenario_smoke(Box::new(ParallelOctoCache::with_workers(
        grid(0.5),
        OccupancyParams::default(),
        cache_with(1 << 7, 2),
        RayTracer::Standard,
        2,
    )));
    println!("# scenario smoke checksum {smoke:#018x}");

    let mut runs: Vec<Run> = Vec::new();
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        let cache = cache_for(&seq, res);
        for workers in WORKER_COUNTS {
            let mut best: Option<Run> = None;
            for _ in 0..REPS {
                let recorder = SharedRecorder::new();
                let mut system: Box<dyn MappingSystem> = Box::new(ParallelOctoCache::with_workers(
                    grid(res),
                    OccupancyParams::default(),
                    cache,
                    RayTracer::Standard,
                    workers,
                ));
                system.set_recorder(Box::new(recorder.clone()));
                let r = construct(&seq, system);
                let summary = TraceSummary::from_records(&recorder.records());
                let total_s = r.total.as_secs_f64();
                let run = Run {
                    dataset: dataset.name(),
                    workers,
                    scans: summary.scans,
                    total_s,
                    scans_per_s: summary.scans as f64 / total_s.max(1e-9),
                    summary,
                };
                if best
                    .as_ref()
                    .is_none_or(|b| run.scans_per_s > b.scans_per_s)
                {
                    best = Some(run);
                }
            }
            let run = best.expect("REPS >= 1");
            let util = run.summary.worker_utilization();
            let util_str = util
                .iter()
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect::<Vec<_>>()
                .join("/");
            rows.push(vec![
                run.dataset.to_string(),
                format!("{}", run.workers),
                format!("{}", run.scans),
                format!("{:.3}", run.total_s),
                format!("{:.1}", run.scans_per_s),
                format!("{:.3}", run.summary.hit_ratio()),
                util_str,
                format!("{:.2}", run.summary.max_shard_skew),
            ]);
            runs.push(run);
        }
    }

    print_table(
        "Worker sweep — parallel OctoCache with N octree-update workers",
        &[
            "dataset",
            "workers",
            "scans",
            "total(s)",
            "scans/s",
            "hit-ratio",
            "utilization",
            "max-skew",
        ],
        &rows,
    );

    // The scaling headline: does N=4 beat N=2 anywhere?
    for dataset in Dataset::ALL {
        let tput = |w: usize| {
            runs.iter()
                .find(|r| r.dataset == dataset.name() && r.workers == w)
                .map(|r| r.scans_per_s)
                .unwrap_or(0.0)
        };
        println!(
            "{}: N=4 vs N=2 throughput ratio {:.3}",
            dataset.name(),
            tput(4) / tput(2).max(1e-9)
        );
    }

    let json = serde::json::to_string(&Value::Seq(runs.iter().map(run_value).collect()));
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}
