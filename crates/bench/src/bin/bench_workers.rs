//! Worker-count sweep for the N-worker parallel pipeline: constructs each
//! dataset with the parallel OctoCache at N ∈ {1, 2, 4, 8} octree-update
//! workers and reports scan throughput, per-worker utilization (from the
//! recorded busy/idle telemetry) and shard skew.
//!
//! Writes `BENCH_workers.json` (path overridable as the first argument):
//! a JSON array with one object per dataset × worker count, the
//! machine-readable record of how eviction-stream sharding scales.

use std::time::{Duration, Instant};

use octocache::pipeline::RayTracer;
use octocache::{CacheConfig, MappingSystem, ParallelOctoCache, ScanOutcome};
use octocache_bench::{
    cache_for, cache_with, construct, grid, load_dataset, print_table, reference_resolution,
    scenario_smoke,
};
use octocache_datasets::Dataset;
use octocache_octomap::OccupancyParams;
use octocache_telemetry::{SharedRecorder, TraceSummary};
use serde::Value;

/// Worker counts swept (the cross-backend differential suite covers the
/// same set).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Admission deadlines (ms) swept by the overload section, from loose
/// (nothing sheds) to far below any real per-scan latency (the gate must
/// shed to keep up). Charts shed-rate against sustained throughput.
const OVERLOAD_DEADLINES_MS: [f64; 3] = [1000.0, 1.0, 0.05];

/// Worker counts for the overload section (kept small: the point is the
/// deadline sweep, not scaling).
const OVERLOAD_WORKERS: [usize; 2] = [2, 4];

/// Construction attempts per configuration; the best throughput is kept so
/// a scheduler hiccup on a loaded machine does not mask scaling.
const REPS: usize = 2;

struct Run {
    dataset: &'static str,
    workers: usize,
    scans: u64,
    total_s: f64,
    scans_per_s: f64,
    summary: TraceSummary,
}

fn run_value(r: &Run) -> Value {
    Value::Map(vec![
        ("dataset".to_string(), Value::Str(r.dataset.to_string())),
        ("backend".to_string(), Value::Str(r.summary.backend.clone())),
        ("workers".to_string(), Value::U64(r.workers as u64)),
        ("scans".to_string(), Value::U64(r.scans)),
        ("total_s".to_string(), Value::F64(r.total_s)),
        ("scans_per_s".to_string(), Value::F64(r.scans_per_s)),
        (
            "observations".to_string(),
            Value::U64(r.summary.observations),
        ),
        (
            "cache_hit_ratio".to_string(),
            Value::F64(r.summary.hit_ratio()),
        ),
        (
            "worker_utilization".to_string(),
            Value::Seq(
                r.summary
                    .worker_utilization()
                    .into_iter()
                    .map(Value::F64)
                    .collect(),
            ),
        ),
        (
            "worker_busy_ns".to_string(),
            Value::Seq(
                r.summary
                    .worker_busy_ns
                    .iter()
                    .map(|&n| Value::U64(n))
                    .collect(),
            ),
        ),
        (
            "worker_idle_ns".to_string(),
            Value::Seq(
                r.summary
                    .worker_idle_ns
                    .iter()
                    .map(|&n| Value::U64(n))
                    .collect(),
            ),
        ),
        (
            "max_shard_skew".to_string(),
            Value::F64(r.summary.max_shard_skew),
        ),
    ])
}

struct OverloadRun {
    dataset: &'static str,
    workers: usize,
    deadline_ms: f64,
    applied: u64,
    sheds: u64,
    total_s: f64,
}

impl OverloadRun {
    fn shed_rate(&self) -> f64 {
        let total = self.applied + self.sheds;
        if total == 0 {
            0.0
        } else {
            self.sheds as f64 / total as f64
        }
    }

    /// Throughput of scans that actually reached the map: the quantity the
    /// governor sustains while the gate sheds the rest.
    fn sustained_scans_per_s(&self) -> f64 {
        self.applied as f64 / self.total_s.max(1e-9)
    }
}

fn overload_value(r: &OverloadRun) -> Value {
    Value::Map(vec![
        ("section".to_string(), Value::Str("overload".to_string())),
        ("dataset".to_string(), Value::Str(r.dataset.to_string())),
        ("workers".to_string(), Value::U64(r.workers as u64)),
        ("deadline_ms".to_string(), Value::F64(r.deadline_ms)),
        ("applied".to_string(), Value::U64(r.applied)),
        ("sheds".to_string(), Value::U64(r.sheds)),
        ("shed_rate".to_string(), Value::F64(r.shed_rate())),
        (
            "sustained_scans_per_s".to_string(),
            Value::F64(r.sustained_scans_per_s()),
        ),
    ])
}

/// Replays a dataset through `submit_scan` under a bounded admission
/// deadline, counting applied vs shed scans.
fn overload_run(
    dataset: Dataset,
    seq: &octocache_datasets::ScanSequence,
    res: f64,
    base: CacheConfig,
    workers: usize,
    deadline_ms: f64,
) -> OverloadRun {
    let cache = CacheConfig::builder()
        .num_buckets(base.num_buckets())
        .tau(base.tau())
        .shed_deadline(Duration::from_secs_f64(deadline_ms / 1e3))
        .build()
        .expect("valid cache config");
    let mut system: Box<dyn MappingSystem> = Box::new(ParallelOctoCache::with_workers(
        grid(res),
        OccupancyParams::default(),
        cache,
        RayTracer::Standard,
        workers,
    ));
    let t0 = Instant::now();
    let mut applied = 0u64;
    let mut sheds = 0u64;
    for scan in seq.scans() {
        match system
            .submit_scan(scan.origin, &scan.points, seq.max_range())
            .expect("scan within grid")
        {
            ScanOutcome::Applied(_) => applied += 1,
            ScanOutcome::Shed(_) => sheds += 1,
        }
    }
    system.finish();
    OverloadRun {
        dataset: dataset.name(),
        workers,
        deadline_ms,
        applied,
        sheds,
        total_s: t0.elapsed().as_secs_f64(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_workers.json".to_string());

    // Shared-scenario smoke check (same seeded generator as the
    // integration suites) before committing minutes to the sweep.
    let smoke = scenario_smoke(Box::new(ParallelOctoCache::with_workers(
        grid(0.5),
        OccupancyParams::default(),
        cache_with(1 << 7, 2),
        RayTracer::Standard,
        2,
    )));
    println!("# scenario smoke checksum {smoke:#018x}");

    let mut runs: Vec<Run> = Vec::new();
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        let cache = cache_for(&seq, res);
        for workers in WORKER_COUNTS {
            let mut best: Option<Run> = None;
            for _ in 0..REPS {
                let recorder = SharedRecorder::new();
                let mut system: Box<dyn MappingSystem> = Box::new(ParallelOctoCache::with_workers(
                    grid(res),
                    OccupancyParams::default(),
                    cache,
                    RayTracer::Standard,
                    workers,
                ));
                system.set_recorder(Box::new(recorder.clone()));
                let r = construct(&seq, system);
                let summary = TraceSummary::from_records(&recorder.records());
                let total_s = r.total.as_secs_f64();
                let run = Run {
                    dataset: dataset.name(),
                    workers,
                    scans: summary.scans,
                    total_s,
                    scans_per_s: summary.scans as f64 / total_s.max(1e-9),
                    summary,
                };
                if best
                    .as_ref()
                    .is_none_or(|b| run.scans_per_s > b.scans_per_s)
                {
                    best = Some(run);
                }
            }
            let run = best.expect("REPS >= 1");
            let util = run.summary.worker_utilization();
            let util_str = util
                .iter()
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect::<Vec<_>>()
                .join("/");
            rows.push(vec![
                run.dataset.to_string(),
                format!("{}", run.workers),
                format!("{}", run.scans),
                format!("{:.3}", run.total_s),
                format!("{:.1}", run.scans_per_s),
                format!("{:.3}", run.summary.hit_ratio()),
                util_str,
                format!("{:.2}", run.summary.max_shard_skew),
            ]);
            runs.push(run);
        }
    }

    print_table(
        "Worker sweep — parallel OctoCache with N octree-update workers",
        &[
            "dataset",
            "workers",
            "scans",
            "total(s)",
            "scans/s",
            "hit-ratio",
            "utilization",
            "max-skew",
        ],
        &rows,
    );

    // The scaling headline: does N=4 beat N=2 anywhere?
    for dataset in Dataset::ALL {
        let tput = |w: usize| {
            runs.iter()
                .find(|r| r.dataset == dataset.name() && r.workers == w)
                .map(|r| r.scans_per_s)
                .unwrap_or(0.0)
        };
        println!(
            "{}: N=4 vs N=2 throughput ratio {:.3}",
            dataset.name(),
            tput(4) / tput(2).max(1e-9)
        );
    }

    // Overload section: replay the first dataset through `submit_scan`
    // under a bounded admission deadline. Tightening the deadline raises
    // the shed rate while the applied-scan throughput stays sustained —
    // the load-shedding contract of the supervised runtime (DESIGN.md §7).
    let overload_dataset = Dataset::ALL[0];
    let seq = load_dataset(overload_dataset);
    let res = reference_resolution(overload_dataset);
    let base = cache_for(&seq, res);
    let mut overloads: Vec<OverloadRun> = Vec::new();
    let mut orows = Vec::new();
    for workers in OVERLOAD_WORKERS {
        for deadline_ms in OVERLOAD_DEADLINES_MS {
            let run = overload_run(overload_dataset, &seq, res, base, workers, deadline_ms);
            orows.push(vec![
                run.dataset.to_string(),
                format!("{}", run.workers),
                format!("{:.3}", run.deadline_ms),
                format!("{}", run.applied),
                format!("{}", run.sheds),
                format!("{:.3}", run.shed_rate()),
                format!("{:.1}", run.sustained_scans_per_s()),
            ]);
            overloads.push(run);
        }
    }

    print_table(
        "Overload — shed rate vs sustained throughput under a bounded admission deadline",
        &[
            "dataset",
            "workers",
            "deadline(ms)",
            "applied",
            "shed",
            "shed-rate",
            "applied/s",
        ],
        &orows,
    );

    let json = serde::json::to_string(&Value::Seq(
        runs.iter()
            .map(run_value)
            .chain(overloads.iter().map(overload_value))
            .collect(),
    ));
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}
