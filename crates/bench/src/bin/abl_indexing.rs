//! Ablation B: bucket indexing policy — strawman hash (§4.2) vs Morton
//! (§4.3).
//!
//! Hit rates are nearly identical (both capture duplication); the Morton
//! policy wins on octree update time because its evicted stream is
//! Morton-aligned.

use octocache::{EvictionOrder, IndexPolicy};
use octocache_bench::{
    cache_for, cache_variant, construct, grid, load_dataset, print_table, reference_resolution,
    secs, Backend,
};
use octocache_datasets::Dataset;

fn main() {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        let base_cfg = cache_for(&seq, res);
        for index in [IndexPolicy::Hash, IndexPolicy::Morton] {
            let cfg = cache_variant(base_cfg, index, EvictionOrder::BucketSequential);
            let r = construct(&seq, Backend::Serial.build(grid(res), cfg));
            rows.push(vec![
                dataset.name().to_string(),
                index.to_string(),
                secs(r.total),
                secs(r.phases.cache_insert),
                secs(r.phases.octree_update),
                format!("{:.1}%", r.hit_rate() * 100.0),
            ]);
        }
    }
    print_table(
        "Ablation B — hash vs morton indexing (serial OctoCache)",
        &[
            "dataset",
            "indexing",
            "total(s)",
            "cache-ins(s)",
            "octree-upd(s)",
            "hit-rate",
        ],
        &rows,
    );
    println!("\nexpected: similar hit rates; morton indexing lowers octree update time");
}
