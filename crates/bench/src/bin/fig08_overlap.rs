//! Figures 7/8 and §3.1: intra-batch duplication and inter-batch overlap.
//!
//! Prints, per dataset: the intra-batch duplication factor band (paper:
//! 2.78–31.32×) and the CDF of the voxel overlap ratio against the previous
//! three update batches (paper: > 80 % for FR-079/New College, ≈ 40 % for
//! the campus).

use octocache_bench::{grid, load_dataset, print_table};
use octocache_datasets::{stats, Dataset};

fn main() {
    let res = 0.2;
    let g = grid(res);

    let mut dup_rows = Vec::new();
    let mut cdf_rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);

        // Intra-batch duplication band.
        let mut factors: Vec<f64> = seq
            .scans()
            .iter()
            .map(|s| {
                stats::batch_stats(s, &g, seq.max_range())
                    .expect("in-grid scan")
                    .duplication_factor()
            })
            .collect();
        factors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = factors.iter().sum::<f64>() / factors.len() as f64;
        dup_rows.push(vec![
            dataset.name().to_string(),
            format!("{:.2}", factors.first().unwrap()),
            format!("{mean:.2}"),
            format!("{:.2}", factors.last().unwrap()),
        ]);

        // Overlap CDF (window = 3, as in the paper).
        let ratios = stats::overlap_ratios(&seq, &g, 3).expect("in-grid scans");
        let cdf = stats::empirical_cdf(&ratios);
        let quantile = |q: f64| -> f64 {
            if cdf.is_empty() {
                return 0.0;
            }
            let idx = ((cdf.len() as f64 * q).floor() as usize).min(cdf.len() - 1);
            cdf[idx].0
        };
        cdf_rows.push(vec![
            dataset.name().to_string(),
            format!("{:.0}%", quantile(0.1) * 100.0),
            format!("{:.0}%", quantile(0.5) * 100.0),
            format!("{:.0}%", quantile(0.9) * 100.0),
            format!(
                "{:.0}%",
                ratios.iter().sum::<f64>() / ratios.len().max(1) as f64 * 100.0
            ),
        ]);
    }

    print_table(
        "§3.1 — intra-batch duplication factor (paper band: 2.78–31.32x)",
        &["dataset", "min", "mean", "max"],
        &dup_rows,
    );
    print_table(
        "Figure 8 — overlap ratio vs previous 3 batches (CDF quantiles)",
        &["dataset", "p10", "p50", "p90", "mean"],
        &cdf_rows,
    );
    println!("\npaper: >80% overlap for two datasets, ~40% for freiburg-campus");
}
