//! Storage-layout comparison: pointer-chasing nodes vs the arena node pool.
//!
//! Constructs freiburg-campus (the paper's largest environment) with the
//! plain OctoMap pipeline, the serial OctoCache and the parallel OctoCache,
//! each once per octree storage layout, and reports wall time, octree node
//! visits and resident tree bytes. This is the measurement behind the
//! arena's existence: identical maps, fewer bytes, no slower.
//!
//! Writes `BENCH_layout.json` (path overridable as the first argument): a
//! JSON array with one object per backend × layout.

use octocache::pipeline::{OctoMapSystem, RayTracer};
use octocache::{CacheConfig, MappingSystem, ParallelOctoCache, SerialOctoCache, TreeLayout};
use octocache_bench::{cache_for, grid, load_dataset, print_table, reference_resolution};
use octocache_datasets::{Dataset, ScanSequence};
use octocache_octomap::OccupancyParams;
use octocache_telemetry::{SharedRecorder, TraceSummary};
use serde::Value;
use std::time::Instant;

/// Construction attempts per configuration; the best wall time is kept so a
/// scheduler hiccup does not mask the layout comparison.
const REPS: usize = 2;

/// The backends swept (cache sizing per the paper's §5.2 rule).
const BACKENDS: [&str; 3] = ["octomap", "octocache-serial", "octocache-parallel"];

struct Run {
    backend: &'static str,
    layout: TreeLayout,
    scans: u64,
    total_s: f64,
    node_visits: u64,
    tree_nodes: usize,
    tree_leaves: usize,
    resident_bytes: usize,
    peak_memory_bytes: u64,
}

fn build_system(backend: &str, cache: CacheConfig, res: f64) -> Box<dyn MappingSystem> {
    let params = OccupancyParams::default();
    match backend {
        "octomap" => Box::new(OctoMapSystem::with_layout(
            grid(res),
            params,
            RayTracer::Standard,
            cache.resolved_tree_layout(),
        )),
        "octocache-serial" => Box::new(SerialOctoCache::new(grid(res), params, cache)),
        "octocache-parallel" => Box::new(ParallelOctoCache::with_workers(
            grid(res),
            params,
            cache,
            RayTracer::Standard,
            2,
        )),
        other => panic!("unknown backend {other}"),
    }
}

fn run_once(backend: &'static str, layout: TreeLayout, seq: &ScanSequence, res: f64) -> Run {
    let base = cache_for(seq, res);
    let cache = {
        let mut b = CacheConfig::builder();
        b.num_buckets(base.num_buckets())
            .tau(base.tau())
            .tree_layout(layout);
        b.build().expect("valid cache config")
    };
    let recorder = SharedRecorder::new();
    let mut system = build_system(backend, cache, res);
    system.set_recorder(Box::new(recorder.clone()));
    let t0 = Instant::now();
    for scan in seq.scans() {
        system
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .expect("scan within grid");
    }
    system.finish();
    let total_s = t0.elapsed().as_secs_f64();
    let stats = system.tree_stats().unwrap_or_default();
    let summary = TraceSummary::from_records(&recorder.records());
    let tree = system.take_tree();
    assert_eq!(tree.layout(), layout, "{backend} ignored the layout");
    Run {
        backend,
        layout,
        scans: summary.scans,
        total_s,
        node_visits: stats.node_visits,
        tree_nodes: tree.num_nodes(),
        tree_leaves: tree.num_leaves(),
        resident_bytes: tree.memory_usage(),
        peak_memory_bytes: summary.peak_memory_bytes,
    }
}

fn run_value(r: &Run) -> Value {
    Value::Map(vec![
        ("dataset".to_string(), Value::Str("freiburg-campus".into())),
        ("backend".to_string(), Value::Str(r.backend.to_string())),
        (
            "layout".to_string(),
            Value::Str(r.layout.name().to_string()),
        ),
        ("scans".to_string(), Value::U64(r.scans)),
        ("total_s".to_string(), Value::F64(r.total_s)),
        ("node_visits".to_string(), Value::U64(r.node_visits)),
        ("tree_nodes".to_string(), Value::U64(r.tree_nodes as u64)),
        ("tree_leaves".to_string(), Value::U64(r.tree_leaves as u64)),
        (
            "resident_bytes".to_string(),
            Value::U64(r.resident_bytes as u64),
        ),
        (
            "peak_memory_bytes".to_string(),
            Value::U64(r.peak_memory_bytes),
        ),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_layout.json".to_string());

    let dataset = Dataset::FreiburgCampus;
    let seq = load_dataset(dataset);
    let res = reference_resolution(dataset);

    let mut runs: Vec<Run> = Vec::new();
    for backend in BACKENDS {
        for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
            let mut best: Option<Run> = None;
            for _ in 0..REPS {
                let run = run_once(backend, layout, &seq, res);
                if best.as_ref().is_none_or(|b| run.total_s < b.total_s) {
                    best = Some(run);
                }
            }
            runs.push(best.expect("REPS >= 1"));
        }
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.backend.to_string(),
                r.layout.name().to_string(),
                format!("{}", r.scans),
                format!("{:.3}", r.total_s),
                format!("{}", r.node_visits),
                format!("{}", r.tree_nodes),
                format!("{:.1}", r.resident_bytes as f64 / 1024.0),
                format!("{:.1}", r.peak_memory_bytes as f64 / 1024.0),
            ]
        })
        .collect();
    print_table(
        "Storage layouts — pointer tree vs arena node pool (freiburg-campus)",
        &[
            "backend",
            "layout",
            "scans",
            "total(s)",
            "node-visits",
            "nodes",
            "tree(KiB)",
            "peak(KiB)",
        ],
        &rows,
    );

    // The headline: per backend, arena relative to pointer.
    for backend in BACKENDS {
        let find = |layout: TreeLayout| {
            runs.iter()
                .find(|r| r.backend == backend && r.layout == layout)
                .expect("both layouts ran")
        };
        let p = find(TreeLayout::Pointer);
        let a = find(TreeLayout::Arena);
        println!(
            "{backend}: arena/pointer wall-time {:.3}, arena/pointer resident bytes {:.3}",
            a.total_s / p.total_s.max(1e-9),
            a.resident_bytes as f64 / (p.resident_bytes as f64).max(1.0),
        );
    }

    let json = serde::json::to_string(&Value::Seq(runs.iter().map(run_value).collect()));
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}
