//! Ablation D (Table 1's "naive software parallelization" row): sharded
//! parallel octree updates vs OctoMap vs OctoCache.
//!
//! The paper's argument (§4.4): sharding the octree across cores does not
//! help because a scan's voxels are spatially local — nearly all updates
//! land in one or two shards. This binary measures both the speedup and the
//! imbalance that explains it.

use octocache::pipeline::MappingSystem;
use octocache::ShardedOctoMap;
use octocache_bench::{
    cache_for, construct, grid, load_dataset, print_table, reference_resolution, secs, Backend,
};
use octocache_datasets::Dataset;
use octocache_octomap::OccupancyParams;

fn main() {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        let cache = cache_for(&seq, res);

        let base = construct(&seq, Backend::OctoMap.build(grid(res), cache));
        rows.push(vec![
            dataset.name().to_string(),
            base.backend.to_string(),
            secs(base.total),
            "1.00x".into(),
            "-".into(),
        ]);

        for shards in [2usize, 4, 8] {
            let mut sharded = ShardedOctoMap::new(grid(res), OccupancyParams::default(), shards);
            let t0 = std::time::Instant::now();
            for scan in seq.scans() {
                sharded
                    .insert_scan(scan.origin, &scan.points, seq.max_range())
                    .expect("in-grid scan");
            }
            let total = t0.elapsed();
            rows.push(vec![
                dataset.name().to_string(),
                sharded.name(),
                secs(total),
                format!("{:.2}x", base.total.as_secs_f64() / total.as_secs_f64()),
                format!("{:.2}", sharded.imbalance()),
            ]);
        }

        let cached = construct(&seq, Backend::Serial.build(grid(res), cache));
        rows.push(vec![
            dataset.name().to_string(),
            cached.backend.to_string(),
            secs(cached.total),
            format!(
                "{:.2}x",
                base.total.as_secs_f64() / cached.total.as_secs_f64()
            ),
            "-".into(),
        ]);
    }
    print_table(
        "Ablation D — naive sharded parallelization vs OctoCache",
        &["dataset", "backend", "total(s)", "speedup", "imbalance"],
        &rows,
    );
    println!("\nexpected: sharding gains are capped by imbalance (paper §4.4); octocache wins");
}
