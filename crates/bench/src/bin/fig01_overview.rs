//! Figure 1 (overview): the headline annotations — "high (e.g., > 95 %)
//! cache hits and fewer (e.g., 0.125×) memory visits in the cache compared
//! with octree".
//!
//! Reproduced with the node-visit instrumentation: build each dataset with
//! plain OctoMap (counting octree node visits) and with serial OctoCache
//! (counting residual octree node visits), and report the hit rate and the
//! visit ratio.

use octocache::MappingSystem;
use octocache::SerialOctoCache;
use octocache_bench::{cache_for, grid, load_dataset, print_table, reference_resolution};
use octocache_datasets::Dataset;
use octocache_octomap::{insert, OccupancyOcTree, OccupancyParams};

fn main() {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);

        // Baseline: every observation reaches the octree.
        let mut plain = OccupancyOcTree::new(grid(res), OccupancyParams::default());
        plain.stats().reset();
        for scan in seq.scans() {
            insert::insert_point_cloud(&mut plain, scan.origin, &scan.points, seq.max_range())
                .expect("in-grid scan");
        }
        let base_visits = plain.stats().snapshot().node_visits;

        // OctoCache: only evicted voxels reach the octree.
        let cache = cache_for(&seq, res);
        let mut cached = SerialOctoCache::new(grid(res), OccupancyParams::default(), cache);
        for scan in seq.scans() {
            cached
                .insert_scan(scan.origin, &scan.points, seq.max_range())
                .expect("in-grid scan");
        }
        cached.finish();
        let cached_visits = cached.tree().stats().snapshot().node_visits;
        let hit_rate = cached.cache_stats().hit_rate();

        rows.push(vec![
            dataset.name().to_string(),
            format!("{res:.1}"),
            format!("{:.1}%", hit_rate * 100.0),
            format!("{base_visits}"),
            format!("{cached_visits}"),
            format!("{:.3}x", cached_visits as f64 / base_visits.max(1) as f64),
        ]);
    }
    print_table(
        "Figure 1 — cache hits and octree memory-visit reduction",
        &[
            "dataset",
            "res(m)",
            "hit-rate",
            "octree-visits (octomap)",
            "octree-visits (octocache)",
            "visit-ratio",
        ],
        &rows,
    );
    println!("\npaper (fig 1): >95% cache hits; ~0.125x memory visits vs the octree");
}
