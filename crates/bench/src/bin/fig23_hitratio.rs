//! Figure 23: cache hit ratio vs cache size, against octree memory.
//!
//! Sweeps the bucket count at τ = 4: the hit ratio climbs with cache size
//! then plateaus (all inter/intra-batch duplication captured). The paper's
//! headline: on New College a cache of 0.23 % of the octree size already
//! reaches > 93 % hits.

use octocache::MappingSystem;
use octocache::SerialOctoCache;
use octocache_bench::{cache_with, grid, load_dataset, print_table, reference_resolution};
use octocache_datasets::Dataset;
use octocache_octomap::OccupancyParams;

fn main() {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        for k in [6u32, 8, 10, 12, 14, 16, 18, 20] {
            let cache_cfg = cache_with(1usize << k, 4);
            let g = grid(res);
            let mut map = SerialOctoCache::new(g, OccupancyParams::default(), cache_cfg);
            for scan in seq.scans() {
                map.insert_scan(scan.origin, &scan.points, seq.max_range())
                    .expect("scan in grid");
            }
            let hit_rate = map.cache_stats().hit_rate();
            let cache_bytes = cache_cfg.paper_bytes();
            map.finish();
            let octree_bytes = map.tree().memory_usage();
            rows.push(vec![
                dataset.name().to_string(),
                format!("2^{k}"),
                format!("{}", cache_cfg.capacity_after_eviction()),
                format!("{:.1}", cache_bytes as f64 / 1024.0 / 1024.0),
                format!("{:.1}", octree_bytes as f64 / 1024.0 / 1024.0),
                format!(
                    "{:.3}%",
                    cache_bytes as f64 / octree_bytes.max(1) as f64 * 100.0
                ),
                format!("{:.1}%", hit_rate * 100.0),
            ]);
        }
    }
    print_table(
        "Figure 23 — hit ratio vs cache size (tau = 4)",
        &[
            "dataset",
            "buckets",
            "capacity",
            "cache(MB)",
            "octree(MB)",
            "cache/octree",
            "hit-rate",
        ],
        &rows,
    );
    println!(
        "\npaper: hit ratio plateaus with size; 0.23% of octree size -> >93% hits (dataset 3)"
    );
}
