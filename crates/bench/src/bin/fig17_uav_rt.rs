//! Figure 17: UAV navigation with the RT front-end — OctoMap-RT vs
//! OctoCache-RT at the finer RT baseline resolutions.
//!
//! The paper reports 1.33–1.53× end-to-end speedups and 12–15 % shorter
//! missions on the AscTec.

use octocache_bench::{print_table, uav_mission, Backend};
use octocache_sim::{Environment, UavModel};

fn main() {
    let mut rows = Vec::new();
    for uav in UavModel::all() {
        for env in Environment::ALL {
            let params = env.baseline_params_rt();
            let base = uav_mission(env, uav, Backend::OctoMapRt, params);
            let cached = uav_mission(env, uav, Backend::ParallelRt, params);
            rows.push(vec![
                uav.name.to_string(),
                env.name().to_string(),
                format!("{:.3}", params.resolution),
                format!("{:.1}", base.avg_cycle_compute_s * 1e3),
                format!("{:.1}", cached.avg_cycle_compute_s * 1e3),
                format!(
                    "{:.2}x",
                    base.avg_cycle_compute_s / cached.avg_cycle_compute_s.max(1e-12)
                ),
                format!("{:.1}", base.completion_time_s),
                format!("{:.1}", cached.completion_time_s),
                format!(
                    "{:.0}%",
                    (1.0 - cached.completion_time_s / base.completion_time_s) * 100.0
                ),
            ]);
        }
    }
    print_table(
        "Figure 17 — UAV end-to-end: OctoMap-RT vs OctoCache-RT",
        &[
            "uav",
            "env",
            "res(m)",
            "e2e-rt(ms)",
            "e2e-cache-rt(ms)",
            "speedup",
            "T-rt(s)",
            "T-cache-rt(s)",
            "T-saved",
        ],
        &rows,
    );
    println!("\npaper (AscTec): e2e 1.33x/1.53x/1.51x/1.45x; completion -14%/-12%/-13%/-15%");
    println!("note: RT resolutions scaled 5x coarser than the paper's (see DESIGN.md)");
}
