//! Table 2: dataset details — point clouds, non-duplicate and duplicate
//! voxel counts per resolution.
//!
//! The synthetic datasets are scaled down (see `OCTO_SCALE`); what must
//! match the paper is the *structure*: duplicate ≫ non-duplicate, both
//! shrinking with coarser resolution, campus largest.

use octocache_bench::{load_dataset, print_table};
use octocache_datasets::{stats, Dataset};

fn main() {
    let resolutions = [0.1, 0.2, 0.4, 0.8];
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        for &res in &resolutions {
            let row = stats::table2_row(&seq, res).expect("in-grid scans");
            rows.push(vec![
                dataset.name().to_string(),
                format!("{}", row.point_clouds),
                format!("{res:.1}"),
                format!("{}", row.nonduplicate_voxels),
                format!("{}", row.duplicate_voxels),
                format!(
                    "{:.1}x",
                    row.duplicate_voxels as f64 / row.nonduplicate_voxels.max(1) as f64
                ),
            ]);
        }
    }
    print_table(
        "Table 2 — dataset details (synthetic, scaled)",
        &[
            "dataset",
            "clouds",
            "res(m)",
            "nondup-voxels",
            "dup-voxels",
            "ratio",
        ],
        &rows,
    );
    println!("\npaper (full-size): e.g. FR-079 @0.1m: 66 clouds, 6.26M nondup, 196.1M dup");
}
