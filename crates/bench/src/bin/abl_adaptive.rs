//! Ablation E (extension): adaptive cache growth vs fixed sizing.
//!
//! Starts each construction with a deliberately undersized cache and lets
//! the adaptive policy grow it online, comparing against (a) the same small
//! cache fixed, and (b) the paper's §5.2 statically well-sized cache. The
//! interesting question: how much of the static sizing benefit can a
//! zero-knowledge adaptive policy recover?

use octocache::pipeline::MappingSystem;
use octocache::{AdaptivePolicy, SerialOctoCache};
use octocache_bench::{cache_for, cache_with, grid, load_dataset, print_table, secs};
use octocache_datasets::Dataset;
use octocache_octomap::OccupancyParams;

fn run(
    seq: &octocache_datasets::ScanSequence,
    res: f64,
    cache: octocache::CacheConfig,
    adaptive: Option<AdaptivePolicy>,
) -> (std::time::Duration, f64, usize, u32) {
    let mut map = SerialOctoCache::new(grid(res), OccupancyParams::default(), cache);
    map.set_adaptive_policy(adaptive);
    let t0 = std::time::Instant::now();
    for scan in seq.scans() {
        map.insert_scan(scan.origin, &scan.points, seq.max_range())
            .expect("in-grid scan");
    }
    map.finish();
    let total = t0.elapsed();
    (
        total,
        map.cache_stats().hit_rate(),
        map.cache().config().num_buckets(),
        map.adaptive_growths(),
    )
}

fn main() {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = 0.2;
        let small = cache_with(1 << 8, 4);
        let sized = cache_for(&seq, res);
        let policy = AdaptivePolicy {
            target_hit_rate: 0.85,
            max_buckets: 1 << 20,
            min_window: 2048,
        };

        for (label, cache, adaptive) in [
            ("fixed-small", small, None),
            ("adaptive", small, Some(policy)),
            ("fixed-sized (paper)", sized, None),
        ] {
            let (total, hit_rate, buckets, growths) = run(&seq, res, cache, adaptive);
            rows.push(vec![
                dataset.name().to_string(),
                label.to_string(),
                secs(total),
                format!("{:.1}%", hit_rate * 100.0),
                format!("{buckets}"),
                format!("{growths}"),
            ]);
        }
    }
    print_table(
        "Ablation E — adaptive cache growth (serial OctoCache, res 0.2 m)",
        &[
            "dataset",
            "config",
            "total(s)",
            "hit-rate",
            "final-buckets",
            "growths",
        ],
        &rows,
    );
    println!("\nexpected: adaptive recovers most of the statically-sized cache's runtime");
}
