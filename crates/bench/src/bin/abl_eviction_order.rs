//! Ablation A: eviction emission order.
//!
//! The paper's design emits evicted voxels by scanning buckets sequentially
//! (Morton-aligned under Morton indexing). This ablation bounds what that
//! approximation gives up against a full Morton sort of each eviction
//! batch, and what it gains over locality-free FIFO emission.

use octocache::{EvictionOrder, IndexPolicy};
use octocache_bench::{
    cache_for, cache_variant, construct, grid, load_dataset, print_table, reference_resolution,
    secs, Backend,
};
use octocache_datasets::Dataset;

fn main() {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        let base_cfg = cache_for(&seq, res);
        for order in [
            EvictionOrder::BucketSequential,
            EvictionOrder::FullMortonSort,
            EvictionOrder::InsertionFifo,
        ] {
            let cfg = cache_variant(base_cfg, IndexPolicy::Morton, order);
            let r = construct(&seq, Backend::Serial.build(grid(res), cfg));
            rows.push(vec![
                dataset.name().to_string(),
                order.to_string(),
                secs(r.total),
                secs(r.phases.octree_update),
                format!("{:.1}%", r.hit_rate() * 100.0),
            ]);
        }
    }
    print_table(
        "Ablation A — eviction order (serial OctoCache)",
        &["dataset", "order", "total(s)", "octree-upd(s)", "hit-rate"],
        &rows,
    );
    println!("\nexpected: bucket-sequential ~ full-morton-sort < insertion-fifo octree time");
}
