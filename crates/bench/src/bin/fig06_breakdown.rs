//! Figure 6: OctoMap generation runtime decomposition on the three datasets.
//!
//! The paper shows that the octree update dominates OctoMap's runtime (≥ 86 %
//! overall, 93–96 % at fine resolutions). This binary reconstructs each
//! dataset with vanilla OctoMap at several resolutions and prints the
//! ray-tracing vs octree-update split.

use octocache::CacheConfig;
use octocache_bench::{construct, grid, load_dataset, print_table, secs, Backend};
use octocache_datasets::Dataset;

fn main() {
    let resolutions = [0.1, 0.2, 0.4, 0.8];
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        for &res in &resolutions {
            let result = construct(
                &seq,
                Backend::OctoMap.build(grid(res), CacheConfig::default()),
            );
            let ray = result.phases.ray_tracing;
            let tree = result.phases.octree_update;
            let denom = (ray + tree).as_secs_f64().max(1e-12);
            rows.push(vec![
                dataset.name().to_string(),
                format!("{res:.1}"),
                secs(ray),
                secs(tree),
                format!("{:.1}%", tree.as_secs_f64() / denom * 100.0),
                secs(result.total),
            ]);
        }
    }
    print_table(
        "Figure 6 — OctoMap runtime decomposition (octree update dominates)",
        &[
            "dataset",
            "res(m)",
            "raytrace(s)",
            "octree(s)",
            "octree%",
            "total(s)",
        ],
        &rows,
    );
    println!("\npaper: octree update >= 86% of OctoMap runtime, 93-96% at fine resolutions");
}
