//! Telemetry companion to Figure 22: one recorded construction run per
//! dataset × backend, summarised into per-phase latency percentiles, cache
//! hit ratios and octree locality counters.
//!
//! Writes `BENCH_telemetry.json` (path overridable as the first argument):
//! a JSON array with one [`TraceSummary`]-shaped object per run, the
//! machine-readable perf trajectory the growth loop tracks across sessions.

use octocache::{CacheConfig, MappingSystem};
use octocache_bench::{
    cache_for, construct, grid, load_dataset, print_table, reference_resolution, Backend,
};
use octocache_datasets::{Dataset, ScanSequence};
use octocache_telemetry::{Phase, SharedRecorder, TraceSummary};
use serde::{Serialize, Value};

/// One run's summary as a JSON object.
fn run_value(dataset: &str, total_s: f64, s: &TraceSummary) -> Value {
    let seq = |vals: Vec<Value>| Value::Seq(vals);
    Value::Map(vec![
        ("dataset".to_string(), Value::Str(dataset.to_string())),
        ("backend".to_string(), Value::Str(s.backend.clone())),
        ("scans".to_string(), Value::U64(s.scans)),
        ("observations".to_string(), Value::U64(s.observations)),
        ("total_s".to_string(), Value::F64(total_s)),
        ("cache_hit_ratio".to_string(), Value::F64(s.hit_ratio())),
        ("cache_evictions".to_string(), Value::U64(s.cache_evictions)),
        (
            "octree_node_visits".to_string(),
            Value::U64(s.octree_node_visits),
        ),
        (
            "visits_per_update".to_string(),
            Value::F64(s.visits_per_update()),
        ),
        ("max_queue_depth".to_string(), Value::U64(s.max_queue_depth)),
        ("totals".to_string(), s.totals.to_value()),
        (
            "per_phase".to_string(),
            seq(s.phase_quantiles().iter().map(|q| q.to_value()).collect()),
        ),
        (
            "hit_ratio_series".to_string(),
            seq(s.hit_ratio_series.iter().map(|p| p.to_value()).collect()),
        ),
    ])
}

/// The same cache geometry with sub-scan event recording switched on.
fn with_events(base: CacheConfig) -> CacheConfig {
    let mut b = CacheConfig::builder();
    b.num_buckets(base.num_buckets())
        .tau(base.tau())
        .index_policy(base.index_policy())
        .eviction_order(base.eviction_order())
        .stall_timeout(base.stall_timeout())
        .events(true);
    b.build().expect("valid cache config")
}

/// One timed construction; returns wall seconds plus the recorded event
/// count and drop count (0/0 with recording off).
fn timed_build(seq: &ScanSequence, mut backend: Box<dyn MappingSystem>) -> (f64, u64, u64) {
    let t0 = std::time::Instant::now();
    for scan in seq.scans() {
        backend
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .expect("scan within grid");
    }
    backend.finish();
    let total = t0.elapsed().as_secs_f64();
    let (events, dropped) = backend
        .take_events()
        .map(|log| (log.events.len() as u64, log.dropped))
        .unwrap_or((0, 0));
    (total, events, dropped)
}

/// Event-layer overhead on freiburg-campus (DESIGN.md §6.1): best-of-N
/// wall time with recording off vs on, per backend. Appends one JSON
/// object per backend to `runs`.
fn event_overhead(runs: &mut Vec<Value>) {
    const REPS: usize = 3;
    let dataset = Dataset::FreiburgCampus;
    let seq = load_dataset(dataset);
    let res = reference_resolution(dataset);
    let base = cache_for(&seq, res);
    let traced = with_events(base);

    let mut rows = Vec::new();
    for backend in [Backend::Serial, Backend::Parallel] {
        // Interleave off/on reps so both conditions see the same machine
        // state (frequency scaling, page cache), then take the best of
        // each: the min is the least-perturbed run.
        let mut off = Vec::new();
        let mut on = Vec::new();
        for _ in 0..REPS {
            off.push(timed_build(&seq, backend.build(grid(res), base)));
            on.push(timed_build(&seq, backend.build(grid(res), traced)));
        }
        let best = |runs: &[(f64, u64, u64)]| {
            *runs
                .iter()
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("at least one rep")
        };
        let (off_s, _, _) = best(&off);
        let (on_s, events, dropped) = best(&on);
        let overhead_pct = (on_s - off_s) / off_s * 100.0;
        rows.push(vec![
            backend.label().to_string(),
            format!("{off_s:.3}"),
            format!("{on_s:.3}"),
            format!("{overhead_pct:+.2}"),
            format!("{events}"),
            format!("{dropped}"),
        ]);
        runs.push(Value::Map(vec![
            (
                "section".to_string(),
                Value::Str("event_overhead".to_string()),
            ),
            (
                "dataset".to_string(),
                Value::Str(dataset.name().to_string()),
            ),
            (
                "backend".to_string(),
                Value::Str(backend.label().to_string()),
            ),
            ("events_off_s".to_string(), Value::F64(off_s)),
            ("events_on_s".to_string(), Value::F64(on_s)),
            ("overhead_pct".to_string(), Value::F64(overhead_pct)),
            ("events_recorded".to_string(), Value::U64(events)),
            ("events_dropped".to_string(), Value::U64(dropped)),
        ]));
    }
    print_table(
        "Event-recording overhead — freiburg-campus, interleaved best of 3",
        &[
            "backend",
            "off(s)",
            "on(s)",
            "overhead(%)",
            "events",
            "dropped",
        ],
        &rows,
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_string());
    let us = |nanos: u64| format!("{:.1}", nanos as f64 / 1e3);

    let mut runs = Vec::new();
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let seq = load_dataset(dataset);
        let res = reference_resolution(dataset);
        let cache = cache_for(&seq, res);
        for backend in Backend::STANDARD {
            let recorder = SharedRecorder::new();
            let mut system = backend.build(grid(res), cache);
            system.set_recorder(Box::new(recorder.clone()));
            let r = construct(&seq, system);
            let summary = TraceSummary::from_records(&recorder.records());
            let ray = summary.per_phase.get(Phase::RayTracing);
            let octree = summary.per_phase.get(Phase::OctreeUpdate);
            rows.push(vec![
                dataset.name().to_string(),
                r.backend.to_string(),
                format!("{}", summary.scans),
                format!("{:.3}", summary.hit_ratio()),
                format!("{}", summary.cache_evictions),
                format!("{:.2}", summary.visits_per_update()),
                us(ray.p50()),
                us(ray.p99()),
                us(octree.p50()),
                us(octree.p99()),
            ]);
            runs.push(run_value(dataset.name(), r.total.as_secs_f64(), &summary));
        }
    }

    print_table(
        "Telemetry — per-scan latency percentiles and cache behaviour",
        &[
            "dataset",
            "backend",
            "scans",
            "hit-ratio",
            "evictions",
            "visits/upd",
            "ray-p50(us)",
            "ray-p99(us)",
            "oct-p50(us)",
            "oct-p99(us)",
        ],
        &rows,
    );

    event_overhead(&mut runs);

    let json = serde::json::to_string(&Value::Seq(runs));
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}
