//! Figure 19: OctoMap-RT vs OctoCache-RT sweeps (AscTec Pelican, Room-like
//! environment): (a,b) fixed range 3 m with fine resolutions; (c,d) fixed
//! resolution with ranges 2–4 m.
//!
//! Paper resolutions (0.01–0.05 m) are scaled 5× coarser (0.05–0.25 m) to
//! stay laptop-sized; the shape (RT-cache advantage grows with resolution)
//! is what is being reproduced.

use octocache_bench::{print_table, uav_mission, Backend};
use octocache_sim::{BaselineParams, Environment, UavModel};

fn sweep(label: &str, settings: &[BaselineParams]) {
    let uav = UavModel::asctec_pelican();
    let env = Environment::Room;
    let mut rows = Vec::new();
    for &params in settings {
        let base = uav_mission(env, uav, Backend::OctoMapRt, params);
        let cached = uav_mission(env, uav, Backend::ParallelRt, params);
        rows.push(vec![
            format!("{:.2}", params.sensing_range),
            format!("{:.3}", params.resolution),
            format!("{:.1}", base.avg_cycle_compute_s * 1e3),
            format!("{:.1}", cached.avg_cycle_compute_s * 1e3),
            format!(
                "{:.2}x",
                base.avg_cycle_compute_s / cached.avg_cycle_compute_s.max(1e-12)
            ),
            format!("{:.1}", base.completion_time_s),
            format!("{:.1}", cached.completion_time_s),
        ]);
    }
    print_table(
        label,
        &[
            "range(m)",
            "res(m)",
            "e2e-rt(ms)",
            "e2e-cache-rt(ms)",
            "speedup",
            "T-rt(s)",
            "T-cache-rt(s)",
        ],
        &rows,
    );
}

fn main() {
    let fixed_range: Vec<BaselineParams> = [0.05, 0.1, 0.15, 0.2, 0.25]
        .into_iter()
        .map(|resolution| BaselineParams {
            sensing_range: 3.0,
            resolution,
        })
        .collect();
    sweep(
        "Figure 19(a,b) — RT variants: fixed range 3 m, resolution sweep (5x scaled)",
        &fixed_range,
    );

    let fixed_res: Vec<BaselineParams> = [2.0, 2.5, 3.0, 3.5, 4.0]
        .into_iter()
        .map(|sensing_range| BaselineParams {
            sensing_range,
            resolution: 0.15,
        })
        .collect();
    sweep(
        "Figure 19(c,d) — RT variants: fixed resolution 0.15 m, range sweep",
        &fixed_res,
    );
    println!(
        "\npaper: octocache-rt 25%/17% faster in the two highlighted scenarios; up to 37x at 0.01m"
    );
}
