//! Shared harness code for the OctoCache benchmark binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (see DESIGN.md §3 for the index); this library holds what they
//! share: the backend factory, the 3D-construction runner, the UAV-mission
//! runner, cache sizing per the paper's §5.2 rule, and plain-text table
//! printing.
//!
//! Workload size is controlled by the `OCTO_SCALE` environment variable
//! (default 0.25; `OCTO_SCALE=0.05` gives a smoke-test run, `1.0` the
//! paper-shaped workload).

use std::time::{Duration, Instant};

use octocache::pipeline::{OctoMapSystem, RayTracer};
use octocache::{
    CacheConfig, EvictionOrder, IndexPolicy, MappingSystem, ParallelOctoCache, PhaseTimes,
    SerialOctoCache,
};
use octocache_datasets::{stats, Dataset, DatasetConfig, ScanSequence};
use octocache_geom::VoxelGrid;
use octocache_octomap::OccupancyParams;

/// The mapping backends compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Vanilla OctoMap.
    OctoMap,
    /// OctoMap with the RT (deduplicating) ray tracer.
    OctoMapRt,
    /// Serial OctoCache.
    Serial,
    /// Serial OctoCache-RT.
    SerialRt,
    /// Parallel (two-thread) OctoCache.
    Parallel,
    /// Parallel OctoCache-RT.
    ParallelRt,
}

impl Backend {
    /// The standard (non-RT) comparison set.
    pub const STANDARD: [Backend; 3] = [Backend::OctoMap, Backend::Serial, Backend::Parallel];
    /// The RT comparison set.
    pub const RT: [Backend; 3] = [Backend::OctoMapRt, Backend::SerialRt, Backend::ParallelRt];

    /// Short display name.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::OctoMap => "octomap",
            Backend::OctoMapRt => "octomap-rt",
            Backend::Serial => "octocache-serial",
            Backend::SerialRt => "octocache-serial-rt",
            Backend::Parallel => "octocache-parallel",
            Backend::ParallelRt => "octocache-parallel-rt",
        }
    }

    /// Whether this backend uses the deduplicating ray tracer.
    pub fn is_rt(&self) -> bool {
        matches!(
            self,
            Backend::OctoMapRt | Backend::SerialRt | Backend::ParallelRt
        )
    }

    /// Builds the backend.
    pub fn build(&self, grid: VoxelGrid, cache: CacheConfig) -> Box<dyn MappingSystem> {
        let params = OccupancyParams::default();
        let rt = if self.is_rt() {
            RayTracer::Dedup
        } else {
            RayTracer::Standard
        };
        match self {
            Backend::OctoMap | Backend::OctoMapRt => {
                Box::new(OctoMapSystem::with_ray_tracer(grid, params, rt))
            }
            Backend::Serial | Backend::SerialRt => {
                Box::new(SerialOctoCache::with_ray_tracer(grid, params, cache, rt))
            }
            Backend::Parallel | Backend::ParallelRt => {
                Box::new(ParallelOctoCache::with_ray_tracer(grid, params, cache, rt))
            }
        }
    }
}

/// The workload scale from `OCTO_SCALE` (default 0.25).
pub fn workload_scale() -> f64 {
    std::env::var("OCTO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 4.0)
        .unwrap_or(0.25)
}

/// The Jetson-TX2 emulation factor from `OCTO_TX2_FACTOR` (default 50):
/// measured compute latencies are multiplied by this inside the UAV
/// missions, emulating the paper's edge platform on a faster host.
pub fn tx2_factor() -> f64 {
    std::env::var("OCTO_TX2_FACTOR")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s >= 1.0 && *s <= 1000.0)
        .unwrap_or(50.0)
}

/// Dataset config at the ambient workload scale.
pub fn dataset_config() -> DatasetConfig {
    DatasetConfig {
        scale: workload_scale(),
        ..DatasetConfig::default()
    }
}

/// A 16-level grid at the given resolution.
pub fn grid(resolution: f64) -> VoxelGrid {
    VoxelGrid::new(resolution, 16).expect("valid resolution")
}

/// Sizes the cache per the paper's §5.2 rule: capacity 3–4× the average
/// non-duplicate voxels per batch, τ = 4.
pub fn cache_for(seq: &ScanSequence, resolution: f64) -> CacheConfig {
    let g = grid(resolution);
    // Sample a few batches to estimate non-duplicate voxels per batch.
    let sample: Vec<usize> = seq
        .scans()
        .iter()
        .step_by((seq.scans().len() / 8).max(1))
        .take(8)
        .map(|s| {
            stats::batch_stats(s, &g, seq.max_range())
                .map(|b| b.distinct_voxels)
                .unwrap_or(0)
        })
        .collect();
    let avg = sample.iter().sum::<usize>() / sample.len().max(1);
    CacheConfig::builder()
        .tau(4)
        .size_for_batch(avg.max(64), 3.5)
        .build()
        .expect("valid cache config")
}

/// A cache config with an explicit bucket count (power of two enforced by
/// rounding up).
pub fn cache_with(num_buckets: usize, tau: usize) -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(num_buckets.next_power_of_two())
        .tau(tau)
        .build()
        .expect("valid cache config")
}

/// Result of one full 3D-environment construction run.
#[derive(Debug, Clone)]
pub struct ConstructionResult {
    /// Backend label.
    pub backend: &'static str,
    /// Total wall-clock construction time (all scans + flush).
    pub total: Duration,
    /// Cumulative phase decomposition.
    pub phases: PhaseTimes,
    /// Total voxel observations fed to the backend.
    pub observations: usize,
    /// Observations absorbed as cache hits.
    pub cache_hits: u64,
    /// Voxels that reached the octree.
    pub octree_updates: usize,
}

impl ConstructionResult {
    /// Cache hit rate over all observations.
    pub fn hit_rate(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.observations as f64
        }
    }
}

/// Feeds every scan of a sequence into a backend and flushes it, measuring
/// wall-clock time (the 3D-environment-construction workload of §5.2).
pub fn construct(seq: &ScanSequence, mut backend: Box<dyn MappingSystem>) -> ConstructionResult {
    let label = leak_label(backend.name());
    let t0 = Instant::now();
    let mut observations = 0usize;
    let mut cache_hits = 0u64;
    let mut octree_updates = 0usize;
    for scan in seq.scans() {
        let report = backend
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .expect("scan within grid");
        observations += report.observations;
        cache_hits += report.cache_hits;
        octree_updates += report.octree_updates;
    }
    backend.finish();
    let total = t0.elapsed();
    ConstructionResult {
        backend: label,
        total,
        phases: backend.phase_times(),
        observations,
        cache_hits,
        octree_updates,
    }
}

fn leak_label(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

/// Replays the shared seeded blob-walk scenario (the exact generator the
/// cross-backend differential and golden-checksum suites use, from
/// [`octocache_datasets::scenario`]) through `backend` and returns the
/// resulting leaf checksum. Bench bins run this once before a sweep: a
/// broken build fails fast instead of producing a table of garbage
/// numbers, and the bench and test workload distributions stay in sync by
/// construction.
pub fn scenario_smoke(mut backend: Box<dyn MappingSystem>) -> u64 {
    let seq = octocache_datasets::scenario::blob_walk_sequence(0);
    for scan in seq.scans() {
        backend
            .insert_scan(scan.origin, &scan.points, seq.max_range())
            .expect("scenario scan within grid");
    }
    backend.finish();
    backend.take_tree().leaf_checksum()
}

/// Formats a `Duration` as seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Prints an aligned plain-text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Generates a dataset at the ambient scale, printing a provenance line.
pub fn load_dataset(dataset: Dataset) -> ScanSequence {
    let cfg = dataset_config();
    let seq = dataset.generate(&cfg);
    println!(
        "# dataset {} scale={} scans={} points={}",
        dataset.name(),
        cfg.scale,
        seq.scans().len(),
        seq.total_points()
    );
    seq
}

/// The per-dataset reference resolution used by the decomposition
/// experiments (Fig 22 / Table 3): fine enough that the octree dominates.
pub fn reference_resolution(dataset: Dataset) -> f64 {
    match dataset {
        Dataset::Fr079Corridor => 0.1,
        Dataset::FreiburgCampus => 0.2,
        Dataset::NewCollege => 0.1,
    }
}

/// Runs one closed-loop UAV mission with the given backend and
/// <sensing range, resolution> setting, at a sensor density scaled by
/// `OCTO_SCALE`.
pub fn uav_mission(
    env: octocache_sim::Environment,
    uav: octocache_sim::UavModel,
    backend: Backend,
    params: octocache_sim::BaselineParams,
) -> octocache_sim::MissionReport {
    let scale = workload_scale();
    let g = grid(params.resolution);
    // The paper's UAV cache: 512 Ki buckets × τ 4 (≈ 14 MB); scaled down
    // with the workload.
    let buckets = ((512.0 * 1024.0 * scale) as usize).max(1 << 10);
    let cache = cache_with(buckets, 4);
    // Dense sensor: the paper's mapping stage dominates the cycle (up to
    // 72 % of end-to-end runtime), which requires MAVBench-like point-cloud
    // sizes relative to the host speed.
    let density = scale.sqrt().max(0.3);
    let config = octocache_sim::MissionConfig {
        sensing_range: Some(params.sensing_range),
        sensor_cols: ((192.0 * density) as u32).max(24),
        sensor_rows: ((144.0 * density) as u32).max(18),
        control_time_s: 0.0005,
        compute_scale: tx2_factor(),
        ..octocache_sim::MissionConfig::default()
    };
    octocache_sim::Mission::new(env, uav, config)
        .run(backend.build(g, cache))
        .expect("mission stays within the mapped cube")
}

/// Builds a cache config variant with explicit indexing / eviction policies
/// (for the ablations).
pub fn cache_variant(
    base: CacheConfig,
    index: IndexPolicy,
    eviction: EvictionOrder,
) -> CacheConfig {
    CacheConfig::builder()
        .num_buckets(base.num_buckets())
        .tau(base.tau())
        .index_policy(index)
        .eviction_order(eviction)
        .build()
        .expect("valid cache config")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_factory_builds_all() {
        let g = grid(0.5);
        let cache = cache_with(64, 4);
        for b in Backend::STANDARD.into_iter().chain(Backend::RT) {
            let sys = b.build(g, cache);
            assert_eq!(sys.name(), b.label());
        }
    }

    #[test]
    fn construct_runs_all_backends_consistently() {
        std::env::set_var("OCTO_SCALE", "0.05");
        let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
        let g = grid(0.4);
        let cache = cache_for(&seq, 0.4);
        let baseline = construct(&seq, Backend::OctoMap.build(g, cache));
        assert!(baseline.observations > 0);
        assert_eq!(baseline.cache_hits, 0);
        let serial = construct(&seq, Backend::Serial.build(g, cache));
        assert_eq!(serial.observations, baseline.observations);
        assert!(serial.cache_hits > 0);
        assert!(serial.octree_updates < baseline.octree_updates);
    }

    #[test]
    fn cache_sizing_follows_batch_size() {
        let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
        let small = cache_for(&seq, 0.8);
        let large = cache_for(&seq, 0.1);
        assert!(large.capacity_after_eviction() >= small.capacity_after_eviction());
    }

    #[test]
    fn workload_scale_parses_env() {
        std::env::set_var("OCTO_SCALE", "0.5");
        assert_eq!(workload_scale(), 0.5);
        std::env::set_var("OCTO_SCALE", "garbage");
        assert_eq!(workload_scale(), 0.25);
        std::env::remove_var("OCTO_SCALE");
    }
}
