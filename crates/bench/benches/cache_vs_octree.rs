//! Criterion micro-benchmark behind Figure 22: per-observation cost of the
//! cache insertion path vs the octree update path, on a real scan batch.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use octocache::{CacheConfig, VoxelCache};
use octocache_bench::grid;
use octocache_datasets::{stats, Dataset, DatasetConfig};
use octocache_octomap::{OccupancyOcTree, OccupancyParams};

fn batch() -> Vec<(octocache_geom::VoxelKey, bool)> {
    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let g = grid(0.1);
    let mut out = Vec::new();
    for scan in seq.scans().iter().take(3) {
        stats::for_each_observation(scan, &g, seq.max_range(), |k, occ| out.push((k, occ)))
            .expect("in-grid scan");
    }
    out
}

fn bench_paths(c: &mut Criterion) {
    let observations = batch();
    let g = grid(0.1);
    let mut group = c.benchmark_group("per-observation-update");
    group.throughput(Throughput::Elements(observations.len() as u64));
    group.sample_size(10);

    group.bench_function("octree-direct", |b| {
        b.iter(|| {
            let mut tree = OccupancyOcTree::new(g, OccupancyParams::default());
            for &(k, occ) in &observations {
                tree.update_node(k, occ);
            }
            tree.num_nodes()
        });
    });

    group.bench_function("cache-insert", |b| {
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 14)
            .tau(4)
            .build()
            .unwrap();
        b.iter(|| {
            let mut cache = VoxelCache::new(cfg, OccupancyParams::default());
            for &(k, occ) in &observations {
                cache.insert(k, occ, |_| None);
            }
            cache.len()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
