//! Criterion benchmark behind Figures 20/21: full map construction across
//! backends on a small corridor workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octocache_bench::{cache_for, construct, grid, Backend};
use octocache_datasets::{Dataset, DatasetConfig};

fn bench_construction(c: &mut Criterion) {
    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let res = 0.1;
    let cache = cache_for(&seq, res);
    let mut group = c.benchmark_group("construction-fr079");
    group.sample_size(10);
    for backend in Backend::STANDARD.into_iter().chain(Backend::RT) {
        group.bench_with_input(
            BenchmarkId::from_parameter(backend.label()),
            &backend,
            |b, backend| {
                b.iter(|| construct(&seq, backend.build(grid(res), cache)).total);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
