//! Criterion micro-benchmark behind Figure 10: octree insertion throughput
//! as a function of voxel order.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use octocache::locality::VoxelOrder;
use octocache_bench::grid;
use octocache_datasets::{stats, Dataset, DatasetConfig};
use octocache_geom::VoxelKey;
use octocache_octomap::{OccupancyOcTree, OccupancyParams};

fn distinct_keys() -> Vec<VoxelKey> {
    let seq = Dataset::Fr079Corridor.generate(&DatasetConfig::tiny());
    let g = grid(0.1);
    let mut seen: HashSet<VoxelKey> = HashSet::new();
    let mut keys = Vec::new();
    for scan in seq.scans() {
        stats::for_each_observation(scan, &g, seq.max_range(), |k, _| {
            if seen.insert(k) {
                keys.push(k);
            }
        })
        .expect("in-grid scan");
    }
    keys
}

fn bench_orders(c: &mut Criterion) {
    let keys = distinct_keys();
    let g = grid(0.1);
    let mut group = c.benchmark_group("octree-insertion-order");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.sample_size(10);
    for order in VoxelOrder::ALL {
        let mut ordered = keys.clone();
        order.apply(&mut ordered);
        group.bench_with_input(
            BenchmarkId::from_parameter(order.label()),
            &ordered,
            |b, ordered| {
                b.iter(|| {
                    let mut tree = OccupancyOcTree::new(g, OccupancyParams::default());
                    for &k in ordered {
                        tree.update_node(k, true);
                    }
                    tree.num_nodes()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_orders);
criterion_main!(benches);
