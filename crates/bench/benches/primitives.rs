//! Criterion micro-benchmarks of the primitives under everything: Morton
//! encoding, the SPSC ring, and cache insertion at varying bucket loads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use octocache::spsc;
use octocache::{CacheConfig, VoxelCache};
use octocache_geom::{morton, VoxelKey};
use octocache_octomap::OccupancyParams;

fn keys(n: usize) -> Vec<VoxelKey> {
    (0..n)
        .map(|i| {
            let i = i as u64;
            VoxelKey::new(
                ((i * 7919) % 65536) as u16,
                ((i * 104729) % 65536) as u16,
                ((i * 1299709) % 65536) as u16,
            )
        })
        .collect()
}

fn bench_morton(c: &mut Criterion) {
    let ks = keys(4096);
    let mut group = c.benchmark_group("morton");
    group.throughput(Throughput::Elements(ks.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| ks.iter().map(|&k| morton::encode(k)).sum::<u64>())
    });
    let codes: Vec<u64> = ks.iter().map(|&k| morton::encode(k)).collect();
    group.bench_function("decode", |b| {
        b.iter(|| {
            codes
                .iter()
                .map(|&c| morton::decode(c).x as u64)
                .sum::<u64>()
        })
    });
    group.bench_function("sort", |b| {
        b.iter(|| {
            let mut v = ks.clone();
            morton::sort_keys(&mut v);
            v.len()
        })
    });
    group.finish();
}

fn bench_spsc(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("push-pop-4096", |b| {
        let (mut tx, mut rx) = spsc::channel::<u64>(8192);
        b.iter(|| {
            for i in 0..4096u64 {
                tx.push(i).unwrap();
            }
            let mut sum = 0u64;
            while let Some(v) = rx.try_pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
    group.finish();
}

fn bench_cache_insert(c: &mut Criterion) {
    let ks = keys(16 * 1024);
    let mut group = c.benchmark_group("cache-insert");
    group.throughput(Throughput::Elements(ks.len() as u64));
    for tau in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("tau", tau), &tau, |b, &tau| {
            let cfg = CacheConfig::builder()
                .num_buckets(1 << 12)
                .tau(tau)
                .build()
                .unwrap();
            b.iter(|| {
                let mut cache = VoxelCache::new(cfg, OccupancyParams::default());
                for &k in &ks {
                    cache.insert(k, true, |_| None);
                }
                cache.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_morton, bench_spsc, bench_cache_insert);
criterion_main!(benches);
