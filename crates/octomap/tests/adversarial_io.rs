//! Adversarial decode battery for the `.ot` / `.bt` readers.
//!
//! The durable subsystem feeds these readers bytes straight off disk after
//! a crash, so they must treat every input as hostile: arbitrary byte soup,
//! valid streams with flipped bits, and truncations at every length must
//! return a typed [`ReadError`] (or a correct tree) — never panic, never
//! silently decode a *different* map from a checksummed v2 stream.

use octocache_geom::{VoxelGrid, VoxelKey};
use octocache_octomap::{io, io_bt, OccupancyOcTree, OccupancyParams, TreeLayout};
use proptest::prelude::*;

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.25, 8).unwrap()
}

/// A small deterministic tree with mixed occupied/free regions.
fn sample_tree(layout: TreeLayout) -> OccupancyOcTree {
    let mut tree = OccupancyOcTree::with_layout(grid(), OccupancyParams::default(), layout);
    for i in 0u16..40 {
        let key = VoxelKey::new(i % 16, (i * 7) % 16, (i * 3) % 16);
        tree.update_node(key, i % 3 != 0);
    }
    tree
}

/// Runs every public reader over `bytes`; the only acceptable outcomes are
/// `Ok` or a typed `ReadError` (a panic fails the property).
fn feed_all_readers(bytes: &[u8]) {
    for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
        let _ = io::read_tree_with_layout(bytes, layout);
        let _ = io::read_tree_with_meta(bytes, layout);
        let _ = io_bt::read_binary_tree_with_layout(bytes, layout);
        let _ = io_bt::read_binary_tree_with_meta(bytes, layout);
    }
    let _ = io::peek_footer(bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure byte soup: the readers return errors, they don't crash or
    /// over-allocate.
    #[test]
    fn prop_byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        feed_all_readers(&bytes);
    }

    /// Soup behind a valid magic: exercises the header/node-stream parsing
    /// paths rather than bailing at the first four bytes.
    #[test]
    fn prop_magic_prefixed_soup_never_panics(
        ot in any::<bool>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut stream = if ot { b"OCT1".to_vec() } else { b"OCB1".to_vec() };
        stream.extend_from_slice(&bytes);
        feed_all_readers(&stream);
    }

    /// Single-bit flips in a checksummed v2 `.ot` stream: decoding either
    /// fails with a typed error or yields the *original* map — a flipped
    /// stream never silently becomes a different map. (The only undetected
    /// bits are the footer's epoch field, which does not affect the tree.)
    #[test]
    fn prop_v2_ot_bit_flips_never_yield_a_different_map(bit in 0usize..usize::MAX) {
        let tree = sample_tree(TreeLayout::Pointer);
        let reference = tree.leaf_checksum();
        let mut bytes = io::write_tree_v2(&tree, 42).to_vec();
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
            if let Ok((decoded, _)) = io::read_tree_with_meta(&bytes, layout) {
                prop_assert_eq!(
                    decoded.leaf_checksum(),
                    reference,
                    "flipped bit {} decoded to a different map",
                    bit
                );
            }
        }
    }

    /// The same single-bit-flip guarantee for v2 `.bt` streams, relative to
    /// the maximum-likelihood tree the unflipped stream reconstructs.
    #[test]
    fn prop_v2_bt_bit_flips_never_yield_a_different_map(bit in 0usize..usize::MAX) {
        let tree = sample_tree(TreeLayout::Pointer);
        let clean = io_bt::write_binary_tree_v2(&tree, 7).to_vec();
        let reference = io_bt::read_binary_tree_with_layout(&clean, TreeLayout::Pointer)
            .unwrap()
            .leaf_checksum();
        let mut bytes = clean;
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        if let Ok(decoded) = io_bt::read_binary_tree_with_layout(&bytes, TreeLayout::Arena) {
            prop_assert_eq!(
                decoded.leaf_checksum(),
                reference,
                "flipped bit {} decoded to a different ML map",
                bit
            );
        }
    }

    /// Truncations of a valid v2 stream at every length: a typed error, or
    /// (when the cut lands exactly on the v1 payload boundary) the original
    /// map read as a legacy stream.
    #[test]
    fn prop_v2_truncations_error_cleanly_or_decode_v1(cut in 0usize..usize::MAX) {
        let tree = sample_tree(TreeLayout::Arena);
        let reference = tree.leaf_checksum();
        let bytes = io::write_tree_v2(&tree, 3).to_vec();
        let cut = cut % bytes.len();
        if let Ok((decoded, meta)) = io::read_tree_with_meta(&bytes[..cut], TreeLayout::Pointer) {
            prop_assert_eq!(decoded.leaf_checksum(), reference);
            prop_assert!(meta.is_none(), "a truncated stream cannot keep its footer");
        }
    }

    /// Mutations of legacy v1 streams (no checksum to catch them) must
    /// still never panic, whatever they decode to.
    #[test]
    fn prop_v1_mutations_never_panic(
        bit in 0usize..usize::MAX,
        extra in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let tree = sample_tree(TreeLayout::Pointer);
        let mut ot = io::write_tree(&tree).to_vec();
        let b = bit % (ot.len() * 8);
        ot[b / 8] ^= 1 << (b % 8);
        ot.extend_from_slice(&extra);
        feed_all_readers(&ot);

        let mut bt = io_bt::write_binary_tree(&tree).to_vec();
        let b = bit % (bt.len() * 8);
        bt[b / 8] ^= 1 << (b % 8);
        bt.extend_from_slice(&extra);
        feed_all_readers(&bt);
    }
}

#[test]
fn v1_streams_read_back_with_no_footer() {
    let tree = sample_tree(TreeLayout::Pointer);
    let ot = io::write_tree(&tree);
    assert_eq!(io::peek_footer(&ot).unwrap(), None);
    let (decoded, meta) = io::read_tree_with_meta(&ot, TreeLayout::Arena).unwrap();
    assert!(meta.is_none());
    assert_eq!(decoded.leaf_checksum(), tree.leaf_checksum());

    let bt = io_bt::write_binary_tree(&tree);
    let (ml, meta) = io_bt::read_binary_tree_with_meta(&bt, TreeLayout::Arena).unwrap();
    assert!(meta.is_none());
    assert!(ml.num_leaves() > 0);
}

#[test]
fn v2_footer_round_trips_epoch_and_checksums_across_layouts() {
    for write_layout in [TreeLayout::Pointer, TreeLayout::Arena] {
        let tree = sample_tree(write_layout);
        let ot = io::write_tree_v2(&tree, 17);
        let footer = io::peek_footer(&ot)
            .unwrap()
            .expect("v2 stream has a footer");
        assert_eq!(footer.epoch, 17);
        assert_eq!(footer.leaf_checksum, tree.leaf_checksum());
        for read_layout in [TreeLayout::Pointer, TreeLayout::Arena] {
            let (decoded, meta) = io::read_tree_with_meta(&ot, read_layout).unwrap();
            assert_eq!(meta, Some(footer));
            assert_eq!(decoded.leaf_checksum(), tree.leaf_checksum());
        }

        let bt = io_bt::write_binary_tree_v2(&tree, 23);
        let footer = io::peek_footer(&bt)
            .unwrap()
            .expect("v2 .bt stream has a footer");
        assert_eq!(footer.epoch, 23);
        for read_layout in [TreeLayout::Pointer, TreeLayout::Arena] {
            let (ml, meta) = io_bt::read_binary_tree_with_meta(&bt, read_layout).unwrap();
            assert_eq!(meta, Some(footer));
            assert_eq!(ml.leaf_checksum(), footer.leaf_checksum);
        }
    }
}

#[test]
fn swapped_magics_are_rejected_not_misparsed() {
    let tree = sample_tree(TreeLayout::Pointer);
    let ot = io::write_tree_v2(&tree, 1);
    let bt = io_bt::write_binary_tree_v2(&tree, 1);
    // Feeding each format to the other reader must fail on the magic, not
    // decode garbage.
    assert!(matches!(
        io_bt::read_binary_tree_with_layout(&ot, TreeLayout::Pointer),
        Err(octocache_octomap::io::ReadError::BadMagic)
    ));
    assert!(matches!(
        io::read_tree_with_layout(&bt, TreeLayout::Pointer),
        Err(octocache_octomap::io::ReadError::BadMagic)
    ));
}
