//! Cross-layout property suite: the pointer tree and the arena node pool
//! must be observationally identical.
//!
//! Every property builds the same update sequence into both layouts and
//! asserts the results are voxel-for-voxel equal (tolerance 0.0), share the
//! same structure, and serialise to the same bytes — and that both `.ot`
//! (lossless) and `.bt` (maximum-likelihood) streams can be written from
//! either layout and read back into either layout without divergence.

use octocache_geom::{VoxelGrid, VoxelKey};
use octocache_octomap::{compare, io, io_bt, OccupancyOcTree, OccupancyParams, TreeLayout};
use proptest::prelude::*;

fn grid() -> VoxelGrid {
    VoxelGrid::new(0.25, 8).unwrap()
}

type Op = ((u16, u16, u16), bool);

/// Replays `ops` into a fresh tree stored in `layout`.
fn build(layout: TreeLayout, ops: &[Op]) -> OccupancyOcTree {
    let mut tree = OccupancyOcTree::with_layout(grid(), OccupancyParams::default(), layout);
    for ((x, y, z), occupied) in ops {
        tree.update_node(VoxelKey::new(*x, *y, *z), *occupied);
    }
    tree
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(((0u16..32, 0u16..32, 0u16..32), any::<bool>()), 1..250)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two layouts apply identical updates: equal maps, equal structure,
    /// equal serialised bytes — before and after pruning.
    #[test]
    fn prop_layouts_build_identical_trees(ops in ops_strategy()) {
        let mut pointer = build(TreeLayout::Pointer, &ops);
        let mut arena = build(TreeLayout::Arena, &ops);
        pointer.check_invariants().unwrap();
        arena.check_invariants().unwrap();

        let d = compare::diff(&pointer, &arena, 0.0);
        prop_assert!(d.is_identical(), "{} value mismatches", d.value_mismatches);
        prop_assert_eq!(pointer.num_nodes(), arena.num_nodes());
        prop_assert_eq!(pointer.num_leaves(), arena.num_leaves());
        // Depth-first serialisation is layout-independent, so identical
        // trees must produce identical bytes.
        prop_assert_eq!(io::write_tree(&pointer), io::write_tree(&arena));

        pointer.prune();
        arena.prune();
        pointer.check_invariants().unwrap();
        arena.check_invariants().unwrap();
        let dp = compare::diff(&pointer, &arena, 0.0);
        prop_assert!(dp.is_identical(), "layouts diverge after prune");
        prop_assert_eq!(pointer.num_nodes(), arena.num_nodes());
        prop_assert_eq!(io::write_tree(&pointer), io::write_tree(&arena));
    }

    /// `.ot` streams are lossless in both directions: write from either
    /// layout, read into either layout, always recover the exact map.
    #[test]
    fn prop_ot_round_trips_across_layouts(ops in ops_strategy()) {
        let original = build(TreeLayout::Pointer, &ops);
        let bytes = io::write_tree(&original);
        for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
            let restored = io::read_tree_with_layout(&bytes, layout).unwrap();
            prop_assert_eq!(restored.layout(), layout);
            restored.check_invariants().unwrap();
            let d = compare::diff(&original, &restored, 0.0);
            prop_assert!(d.is_identical(), "ot -> {layout} lost data");
            prop_assert_eq!(restored.num_nodes(), original.num_nodes());
            prop_assert_eq!(restored.num_leaves(), original.num_leaves());
            // Writing the restored tree reproduces the stream bit-for-bit,
            // whichever layout it was decoded into.
            prop_assert_eq!(io::write_tree(&restored), bytes.clone());
        }
    }

    /// `.bt` streams decode to the same maximum-likelihood tree whichever
    /// layout wrote them and whichever layout reads them.
    #[test]
    fn prop_bt_round_trips_across_layouts(ops in ops_strategy()) {
        let pointer = build(TreeLayout::Pointer, &ops);
        let arena = build(TreeLayout::Arena, &ops);
        let bytes = io_bt::write_binary_tree(&pointer);
        prop_assert_eq!(
            io_bt::write_binary_tree(&arena),
            bytes.clone(),
            "bt serialisation differs by source layout"
        );

        let from_pointer =
            io_bt::read_binary_tree_with_layout(&bytes, TreeLayout::Pointer).unwrap();
        let from_arena =
            io_bt::read_binary_tree_with_layout(&bytes, TreeLayout::Arena).unwrap();
        from_pointer.check_invariants().unwrap();
        from_arena.check_invariants().unwrap();
        prop_assert_eq!(from_arena.layout(), TreeLayout::Arena);
        let d = compare::diff(&from_pointer, &from_arena, 0.0);
        prop_assert!(d.is_identical(), "bt decodes differ across layouts");
        prop_assert_eq!(from_pointer.num_nodes(), from_arena.num_nodes());
        // `.bt` is lossy on values but must preserve every ternary
        // occupancy decision, regardless of the decoding layout.
        for ((x, y, z), _) in &ops {
            let key = VoxelKey::new(*x, *y, *z);
            prop_assert_eq!(pointer.is_occupied(key), from_arena.is_occupied(key));
        }
    }
}

#[test]
fn empty_trees_round_trip_across_layouts() {
    for write_layout in [TreeLayout::Pointer, TreeLayout::Arena] {
        let tree = OccupancyOcTree::with_layout(grid(), OccupancyParams::default(), write_layout);
        for read_layout in [TreeLayout::Pointer, TreeLayout::Arena] {
            let ot = io::read_tree_with_layout(&io::write_tree(&tree), read_layout).unwrap();
            assert!(ot.is_empty());
            assert_eq!(ot.layout(), read_layout);
            let bt =
                io_bt::read_binary_tree_with_layout(&io_bt::write_binary_tree(&tree), read_layout)
                    .unwrap();
            assert!(bt.is_empty());
            assert_eq!(bt.layout(), read_layout);
        }
    }
}
