//! The OctoMap-RT–style deduplicating ray tracer.
//!
//! OctoMap-RT (Min et al., RA-L 2023) accelerates OctoMap's ray tracing on
//! ray-tracing GPUs and, as a side effect of its buffer-based design,
//! *eliminates duplicated voxels within a batch* before the octree update.
//! Its octree insertion is unchanged from OctoMap. OctoMap-RT is not open
//! source, so the paper's authors reimplemented the algorithm on the Jetson
//! CPU (§5, footnote 8); this module is the same substitution: a CPU
//! deduplication pass with occupied-wins semantics.
//!
//! The resulting batches are what the paper's `OctoMap-RT` and
//! `OctoCache-RT` configurations consume.

use std::collections::HashMap;

use octocache_geom::{GeomError, Point3, VoxelGrid};

use crate::insert::{compute_update, InsertionReport, VoxelBatch};
use crate::tree::OccupancyOcTree;

/// Deduplicates a batch: one update per distinct voxel, first-seen order,
/// with occupied observations taking precedence over free ones (reference
/// OctoMap's `insertPointCloud` semantics).
pub fn dedup_batch(batch: &VoxelBatch) -> VoxelBatch {
    let mut index: HashMap<octocache_geom::VoxelKey, usize> = HashMap::with_capacity(batch.len());
    let mut out: Vec<crate::insert::VoxelUpdate> = Vec::with_capacity(batch.len() / 2);
    for u in batch.iter() {
        match index.get(&u.key) {
            Some(&i) => {
                if u.occupied && !out[i].occupied {
                    out[i].occupied = true;
                }
            }
            None => {
                index.insert(u.key, out.len());
                out.push(*u);
            }
        }
    }
    out.into_iter().collect()
}

/// Ray-traces one scan and returns the deduplicated batch — the `-RT`
/// front-end of the paper's Figure 17/19/21 configurations.
///
/// # Errors
///
/// See [`compute_update`].
pub fn compute_update_rt(
    grid: &VoxelGrid,
    origin: Point3,
    cloud: &[Point3],
    max_range: f64,
) -> Result<VoxelBatch, GeomError> {
    let mut raw = VoxelBatch::with_capacity(cloud.len() * 8);
    compute_update(grid, origin, cloud, max_range, &mut raw)?;
    Ok(dedup_batch(&raw))
}

/// Full OctoMap-RT pipeline: deduplicating ray tracing followed by the
/// standard octree update.
///
/// # Errors
///
/// See [`compute_update`].
pub fn insert_point_cloud_rt(
    tree: &mut OccupancyOcTree,
    origin: Point3,
    cloud: &[Point3],
    max_range: f64,
) -> Result<InsertionReport, GeomError> {
    let batch = compute_update_rt(tree.grid(), origin, cloud, max_range)?;
    crate::insert::apply_batch(tree, &batch);
    Ok(InsertionReport {
        rays: cloud.len(),
        updates_applied: batch.len(),
        distinct_voxels: batch.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert::VoxelUpdate;
    use crate::occupancy::OccupancyParams;
    use octocache_geom::VoxelKey;

    #[test]
    fn dedup_keeps_first_seen_order() {
        let batch: VoxelBatch = [
            (VoxelKey::new(5, 5, 5), false),
            (VoxelKey::new(1, 1, 1), false),
            (VoxelKey::new(5, 5, 5), false),
            (VoxelKey::new(9, 9, 9), true),
            (VoxelKey::new(1, 1, 1), false),
        ]
        .into_iter()
        .map(|(key, occupied)| VoxelUpdate { key, occupied })
        .collect();
        let d = dedup_batch(&batch);
        let keys: Vec<VoxelKey> = d.iter().map(|u| u.key).collect();
        assert_eq!(
            keys,
            vec![
                VoxelKey::new(5, 5, 5),
                VoxelKey::new(1, 1, 1),
                VoxelKey::new(9, 9, 9)
            ]
        );
    }

    #[test]
    fn dedup_occupied_wins() {
        let batch: VoxelBatch = [
            (VoxelKey::new(5, 5, 5), false),
            (VoxelKey::new(5, 5, 5), true),
            (VoxelKey::new(5, 5, 5), false),
        ]
        .into_iter()
        .map(|(key, occupied)| VoxelUpdate { key, occupied })
        .collect();
        let d = dedup_batch(&batch);
        assert_eq!(d.len(), 1);
        assert!(d.updates()[0].occupied);
    }

    #[test]
    fn dedup_empty_batch() {
        assert!(dedup_batch(&VoxelBatch::new()).is_empty());
    }

    #[test]
    fn rt_pipeline_matches_discretized_voxel_set() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let cloud: Vec<Point3> = (0..40)
            .map(|i| Point3::new(5.0, (i as f64) * 0.05 - 1.0, 0.3))
            .collect();
        let batch = compute_update_rt(&grid, Point3::ZERO, &cloud, 20.0).unwrap();
        assert_eq!(batch.distinct_voxels(), batch.len());

        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let report = insert_point_cloud_rt(&mut tree, Point3::ZERO, &cloud, 20.0).unwrap();
        assert_eq!(report.updates_applied, batch.len());
        assert_eq!(
            tree.is_occupied_at(Point3::new(5.0, 0.0, 0.3)).unwrap(),
            Some(true)
        );
    }
}
