//! Index-based node-pool storage for the occupancy octree.
//!
//! The pointer tree ([`crate::node::OcTreeNode`]) reproduces reference
//! OctoMap's layout — and with it the root-to-leaf pointer chase the paper
//! costs out in §3.2. This module is the alternative the related work
//! advocates (OpenVDB-style occupancy mapping, VoxelCache): all nodes live
//! in one `Vec`-backed pool addressed by `u32` indices.
//!
//! Layout rules:
//!
//! * slot 0 is the root; a tree with an empty pool has no root;
//! * the eight children of a node are allocated as one contiguous block of
//!   eight slots, so a child is `block + child_index` — one add, no pointer
//!   dereference — and siblings share cache lines;
//! * pruning pushes the freed child block onto a free-list instead of
//!   returning memory to the allocator; the next expansion or insertion
//!   reuses it (recycled slots are written before they are ever read, so
//!   blocks are recycled without clearing);
//! * update, search and prune are iterative — no recursion on the hot path.
//!
//! The pool is append-only apart from the free-list, so node indices are
//! stable across updates: an in-flight traversal's path array stays valid
//! while ancestors prune below it.

use octocache_geom::VoxelKey;

use crate::node::OcTreeNode;
use crate::occupancy::OccupancyParams;
use crate::stats::TreeStats;
use crate::tree::LeafOp;

/// Sentinel for "no child block".
const NO_BLOCK: u32 = u32::MAX;

/// One pooled node: 12 bytes instead of a heap box plus a 64-byte child
/// array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ArenaNode {
    log_odds: f32,
    /// Pool index of the first of this node's eight child slots, or
    /// [`NO_BLOCK`] for a childless node.
    block: u32,
    /// Child-presence bitmask (bit `i` set ⇔ child `i` exists).
    mask: u8,
}

impl ArenaNode {
    #[inline]
    fn leaf(log_odds: f32) -> ArenaNode {
        ArenaNode {
            log_odds,
            block: NO_BLOCK,
            mask: 0,
        }
    }
}

/// A `Vec`-backed occupancy octree: the [`crate::TreeLayout::Arena`]
/// storage behind [`crate::OccupancyOcTree`].
#[derive(Debug, Clone, Default)]
pub(crate) struct ArenaTree {
    nodes: Vec<ArenaNode>,
    /// Recycled child blocks (base indices), most recently freed last.
    free_blocks: Vec<u32>,
}

impl ArenaTree {
    pub(crate) fn new() -> ArenaTree {
        ArenaTree::default()
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    #[inline]
    pub(crate) fn log_odds(&self, idx: u32) -> f32 {
        self.nodes[idx as usize].log_odds
    }

    #[inline]
    pub(crate) fn child_mask(&self, idx: u32) -> u8 {
        self.nodes[idx as usize].mask
    }

    /// Pool index of child `i` of `idx`, if present.
    #[inline]
    pub(crate) fn child_of(&self, idx: u32, i: usize) -> Option<u32> {
        let n = &self.nodes[idx as usize];
        if n.mask & (1 << i) == 0 {
            None
        } else {
            Some(n.block + i as u32)
        }
    }

    /// Drops every node *and* the pool's capacity (so
    /// `memory_usage` reflects the release).
    pub(crate) fn clear(&mut self) {
        *self = ArenaTree::new();
    }

    /// Pool footprint in bytes: allocated capacity of the node pool
    /// (free-list slack included — recycled blocks stay resident) plus the
    /// free-list itself.
    pub(crate) fn memory_usage(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<ArenaNode>()
            + self.free_blocks.capacity() * std::mem::size_of::<u32>()
    }

    /// Grabs a child block: recycles the most recently freed one, else grows
    /// the pool by eight slots.
    fn alloc_block(&mut self) -> u32 {
        if let Some(b) = self.free_blocks.pop() {
            return b;
        }
        let b = self.nodes.len() as u32;
        self.nodes
            .resize(self.nodes.len() + 8, ArenaNode::leaf(0.0));
        b
    }

    /// The iterative root-to-leaf round trip: descend (expanding pruned
    /// aggregates, creating missing children), apply `op` at the leaf, then
    /// unwind the recorded path — prune equal-valued sibling sets, refresh
    /// inner values to the max of their children. Visit counting mirrors the
    /// pointer layout's recursion exactly, so node-visit telemetry is
    /// layout-independent.
    pub(crate) fn apply_at_leaf(
        &mut self,
        key: VoxelKey,
        depth: u8,
        params: &OccupancyParams,
        stats: &TreeStats,
        auto_prune: bool,
        op: LeafOp,
    ) -> f32 {
        let mut fresh = false;
        if self.nodes.is_empty() {
            self.nodes.push(ArenaNode::leaf(params.threshold));
            stats.count_created();
            fresh = true;
        }
        debug_assert!(depth as usize <= 16);
        let mut path = [0u32; 16];
        let mut idx = 0u32;
        let mut level = depth;
        while level > 0 {
            stats.count_visit();
            let child = key.child_index(level - 1).as_usize();
            let bit = 1u8 << child;
            let node = self.nodes[idx as usize];
            if !fresh && node.mask == 0 {
                // Childless non-fresh node: a pruned aggregate. Expand it so
                // the sibling octants keep their value.
                let block = self.alloc_block();
                for s in 0..8u32 {
                    self.nodes[(block + s) as usize] = ArenaNode::leaf(node.log_odds);
                }
                let n = &mut self.nodes[idx as usize];
                n.block = block;
                n.mask = 0xff;
                stats.count_expansion();
                stats.count_visits(8);
            }
            let mut created = false;
            if self.nodes[idx as usize].mask & bit == 0 {
                if self.nodes[idx as usize].block == NO_BLOCK {
                    let b = self.alloc_block();
                    self.nodes[idx as usize].block = b;
                }
                let b = self.nodes[idx as usize].block;
                self.nodes[(b + child as u32) as usize] = ArenaNode::leaf(params.threshold);
                self.nodes[idx as usize].mask |= bit;
                stats.count_created();
                created = true;
            }
            path[(depth - level) as usize] = idx;
            idx = self.nodes[idx as usize].block + child as u32;
            fresh = created;
            level -= 1;
        }

        stats.count_visit();
        let leaf = &mut self.nodes[idx as usize];
        let new = match op {
            LeafOp::Observe { occupied } => params.apply(leaf.log_odds, occupied),
            LeafOp::Add { delta } => params.clamp(leaf.log_odds + delta),
            LeafOp::Set { value } => params.clamp(value),
        };
        leaf.log_odds = new;
        stats.count_leaf_update();

        // Unwind: indices are stable (the pool never compacts), so the path
        // recorded on the way down stays valid while descendants prune.
        for d in (0..depth).rev() {
            let p = path[d as usize];
            stats.count_visit();
            if auto_prune && self.is_prunable(p) {
                self.prune_node(p);
                stats.count_prune();
            } else if let Some(max) = self.max_child(p) {
                self.nodes[p as usize].log_odds = max;
            }
        }
        new
    }

    /// Iterative lookup: one index add per level, no pointer dereference.
    pub(crate) fn search(&self, key: VoxelKey, depth: u8, stats: &TreeStats) -> Option<f32> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut idx = 0u32;
        stats.count_visit();
        let mut level = depth;
        while level > 0 {
            let n = self.nodes[idx as usize];
            if n.mask == 0 {
                // Pruned aggregate covering this voxel.
                return Some(n.log_odds);
            }
            let c = key.child_index(level - 1).as_usize();
            if n.mask & (1 << c) == 0 {
                return None;
            }
            idx = n.block + c as u32;
            stats.count_visit();
            level -= 1;
        }
        Some(self.nodes[idx as usize].log_odds)
    }

    /// Full bottom-up prune (iterative post-order): freed child blocks go to
    /// the free-list for recycling.
    pub(crate) fn prune(&mut self, depth: u8, stats: &TreeStats) {
        if self.nodes.is_empty() {
            return;
        }
        let mut stack: Vec<(u32, u8, bool)> = vec![(0, depth, false)];
        while let Some((idx, level, children_done)) = stack.pop() {
            let n = self.nodes[idx as usize];
            if level == 0 || n.mask == 0 {
                continue;
            }
            if !children_done {
                stack.push((idx, level, true));
                for c in 0..8u32 {
                    if n.mask & (1 << c) != 0 {
                        stack.push((n.block + c, level - 1, false));
                    }
                }
            } else if self.is_prunable(idx) {
                self.prune_node(idx);
                stats.count_prune();
            } else if let Some(max) = self.max_child(idx) {
                self.nodes[idx as usize].log_odds = max;
            }
        }
    }

    /// True when all eight children exist, all are childless and all carry
    /// the same value.
    fn is_prunable(&self, idx: u32) -> bool {
        let n = self.nodes[idx as usize];
        if n.mask != 0xff {
            return false;
        }
        let b = n.block as usize;
        let first = self.nodes[b];
        if first.mask != 0 {
            return false;
        }
        let v = first.log_odds;
        for s in 1..8 {
            let c = self.nodes[b + s];
            if c.mask != 0 || c.log_odds != v {
                return false;
            }
        }
        true
    }

    /// Merges eight equal childless children into their parent, recycling
    /// the child block. Caller must have checked `is_prunable`.
    fn prune_node(&mut self, idx: u32) {
        let block = self.nodes[idx as usize].block;
        let v = self.nodes[block as usize].log_odds;
        self.free_blocks.push(block);
        let n = &mut self.nodes[idx as usize];
        n.log_odds = v;
        n.block = NO_BLOCK;
        n.mask = 0;
    }

    fn max_child(&self, idx: u32) -> Option<f32> {
        let n = self.nodes[idx as usize];
        if n.mask == 0 {
            return None;
        }
        let mut max = f32::NEG_INFINITY;
        for c in 0..8u32 {
            if n.mask & (1 << c) != 0 {
                max = max.max(self.nodes[(n.block + c) as usize].log_odds);
            }
        }
        Some(max)
    }

    pub(crate) fn count_nodes(&self) -> usize {
        self.walk(|_| ()).0
    }

    pub(crate) fn count_leaves(&self) -> usize {
        self.walk(|_| ()).1
    }

    /// Visits every live node; returns (nodes, leaves).
    fn walk(&self, mut f: impl FnMut(u32)) -> (usize, usize) {
        if self.nodes.is_empty() {
            return (0, 0);
        }
        let (mut nodes, mut leaves) = (0usize, 0usize);
        let mut stack = vec![0u32];
        while let Some(idx) = stack.pop() {
            f(idx);
            nodes += 1;
            let n = self.nodes[idx as usize];
            if n.mask == 0 {
                leaves += 1;
                continue;
            }
            for c in 0..8u32 {
                if n.mask & (1 << c) != 0 {
                    stack.push(n.block + c);
                }
            }
        }
        (nodes, leaves)
    }

    /// Splices `other`'s top-level octant subtrees into `self` by child-block
    /// reindexing: whole eight-child blocks are copied and only their `block`
    /// indices rewritten — no per-voxel re-insertion, no value recomputation.
    ///
    /// Mirrors the pointer layout's merge contract: errors when both trees
    /// populate the same top octant or either root is childless while both
    /// hold data.
    pub(crate) fn merge_disjoint_top_level(&mut self, other: &ArenaTree) -> Result<(), String> {
        if other.nodes.is_empty() {
            return Ok(());
        }
        if self.nodes.is_empty() {
            self.nodes.push(ArenaNode::leaf(other.nodes[0].log_odds));
            self.splice_children(other, 0, 0);
            return Ok(());
        }
        let o_root = other.nodes[0];
        if o_root.mask == 0 || self.nodes[0].mask == 0 {
            return Err("cannot merge trees pruned to a childless root".into());
        }
        let overlap = self.nodes[0].mask & o_root.mask;
        if overlap != 0 {
            return Err(format!(
                "both trees populate top-level octant {}",
                overlap.trailing_zeros()
            ));
        }
        for c in 0..8u32 {
            if o_root.mask & (1 << c) == 0 {
                continue;
            }
            let dst = self.nodes[0].block + c;
            self.nodes[dst as usize] = ArenaNode::leaf(0.0);
            self.nodes[0].mask |= 1 << c;
            self.splice_children(other, o_root.block + c, dst);
        }
        if let Some(max) = self.max_child(0) {
            self.nodes[0].log_odds = max;
        }
        Ok(())
    }

    /// Copies the subtree rooted at `src[s_idx]` over `self[d_idx]`
    /// block-by-block: each eight-child block is copied in one splice and
    /// the copied nodes' `block` fields are then reindexed into `self`'s
    /// pool as their own blocks are allocated.
    fn splice_children(&mut self, src: &ArenaTree, s_idx: u32, d_idx: u32) {
        let mut stack: Vec<(u32, u32)> = vec![(s_idx, d_idx)];
        while let Some((s, d)) = stack.pop() {
            let sn = src.nodes[s as usize];
            let dn = &mut self.nodes[d as usize];
            dn.log_odds = sn.log_odds;
            if sn.mask == 0 {
                dn.block = NO_BLOCK;
                dn.mask = 0;
                continue;
            }
            let nb = self.alloc_block();
            for c in 0..8usize {
                self.nodes[nb as usize + c] = src.nodes[sn.block as usize + c];
            }
            let dn = &mut self.nodes[d as usize];
            dn.block = nb;
            dn.mask = sn.mask;
            for c in 0..8u32 {
                if sn.mask & (1 << c) != 0 && src.nodes[(sn.block + c) as usize].mask != 0 {
                    stack.push((sn.block + c, nb + c));
                }
            }
        }
    }

    /// Builds an arena from a pointer tree (same structure, same values).
    pub(crate) fn from_pointer(root: Option<&OcTreeNode>) -> ArenaTree {
        let mut t = ArenaTree::new();
        let Some(root) = root else {
            return t;
        };
        t.nodes.push(ArenaNode::leaf(root.log_odds()));
        let mut stack: Vec<(&OcTreeNode, u32)> = vec![(root, 0)];
        while let Some((n, d)) = stack.pop() {
            if !n.has_children() {
                continue;
            }
            let b = t.alloc_block();
            t.nodes[d as usize].block = b;
            t.nodes[d as usize].mask = n.child_mask();
            for (i, c) in n.children() {
                let di = b + i.as_usize() as u32;
                t.nodes[di as usize] = ArenaNode::leaf(c.log_odds());
                stack.push((c, di));
            }
        }
        t
    }

    /// Materialises the pool as a pointer tree (same structure, same
    /// values).
    #[cfg(test)]
    pub(crate) fn to_pointer(&self) -> Option<Box<OcTreeNode>> {
        if self.nodes.is_empty() {
            return None;
        }
        Some(Box::new(self.node_to_pointer(0)))
    }

    #[cfg(test)]
    fn node_to_pointer(&self, idx: u32) -> OcTreeNode {
        let n = self.nodes[idx as usize];
        let mut out = OcTreeNode::new(n.log_odds);
        if n.mask != 0 {
            for c in 0..8u8 {
                if n.mask & (1 << c) != 0 {
                    let child = self.node_to_pointer(n.block + c as u32);
                    let (slot, _) =
                        out.child_or_create(octocache_geom::ChildIndex::new(c), child.log_odds());
                    *slot = child;
                }
            }
        }
        out
    }

    /// Structural self-check: every reachable childless node holds no block,
    /// every block index is well-formed, and every allocated block is either
    /// reachable or on the free-list — exactly once.
    pub(crate) fn check_structure(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            if !self.free_blocks.is_empty() {
                return Err("free list non-empty in an empty tree".into());
            }
            return Ok(());
        }
        if !(self.nodes.len() - 1).is_multiple_of(8) {
            return Err(format!("pool size {} is not 1 + 8k", self.nodes.len()));
        }
        let total_blocks = (self.nodes.len() - 1) / 8;
        let block_slot = |b: u32| -> Result<usize, String> {
            let b = b as usize;
            if b == 0 || !(b - 1).is_multiple_of(8) || b + 8 > self.nodes.len() {
                Err(format!("bad block index {b}"))
            } else {
                Ok((b - 1) / 8)
            }
        };
        let mut seen = vec![false; total_blocks];
        for &b in &self.free_blocks {
            let s = block_slot(b)?;
            if seen[s] {
                return Err(format!("block {b} freed twice"));
            }
            seen[s] = true;
        }
        let mut live = 0usize;
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            let n = self.nodes[i as usize];
            if n.mask == 0 {
                if n.block != NO_BLOCK {
                    return Err(format!("childless node {i} keeps block {}", n.block));
                }
                continue;
            }
            let s = block_slot(n.block)?;
            if seen[s] {
                return Err(format!(
                    "block {} reached twice or also on free list",
                    n.block
                ));
            }
            seen[s] = true;
            live += 1;
            for c in 0..8u32 {
                if n.mask & (1 << c) != 0 {
                    stack.push(n.block + c);
                }
            }
        }
        if live + self.free_blocks.len() != total_blocks {
            return Err(format!(
                "leaked blocks: {live} live + {} free != {total_blocks} allocated",
                self.free_blocks.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OccupancyParams {
        OccupancyParams::default()
    }

    fn observe(t: &mut ArenaTree, key: VoxelKey, occupied: bool, stats: &TreeStats) -> f32 {
        t.apply_at_leaf(key, 4, &params(), stats, true, LeafOp::Observe { occupied })
    }

    #[test]
    fn update_then_search_round_trip() {
        let mut t = ArenaTree::new();
        let stats = TreeStats::new();
        let key = VoxelKey::new(3, 7, 11);
        let v = observe(&mut t, key, true, &stats);
        assert_eq!(t.search(key, 4, &stats), Some(v));
        assert_eq!(t.search(VoxelKey::new(0, 0, 0), 4, &stats), None);
        t.check_structure().unwrap();
    }

    #[test]
    fn prune_recycles_blocks() {
        let mut t = ArenaTree::new();
        let stats = TreeStats::new();
        // Saturate a full octant so its eight leaves prune to one aggregate.
        for x in 0..2u16 {
            for y in 0..2u16 {
                for z in 0..2u16 {
                    for _ in 0..10 {
                        observe(&mut t, VoxelKey::new(x, y, z), true, &stats);
                    }
                }
            }
        }
        assert!(stats.prunes() > 0);
        assert!(!t.free_blocks.is_empty(), "prune must feed the free list");
        t.check_structure().unwrap();
        let len_before = t.nodes.len();
        // The next expansion must reuse a recycled block, not grow the pool.
        observe(&mut t, VoxelKey::new(0, 0, 0), false, &stats);
        assert_eq!(t.nodes.len(), len_before);
        t.check_structure().unwrap();
    }

    #[test]
    fn pointer_round_trip_preserves_structure() {
        let mut t = ArenaTree::new();
        let stats = TreeStats::new();
        for (i, k) in [
            VoxelKey::new(0, 0, 0),
            VoxelKey::new(15, 15, 15),
            VoxelKey::new(7, 8, 9),
            VoxelKey::new(7, 8, 10),
        ]
        .iter()
        .enumerate()
        {
            observe(&mut t, *k, i % 2 == 0, &stats);
        }
        let ptr = t.to_pointer().unwrap();
        let back = ArenaTree::from_pointer(Some(&ptr));
        assert_eq!(back.count_nodes(), t.count_nodes());
        assert_eq!(back.count_leaves(), t.count_leaves());
        back.check_structure().unwrap();
        for x in 0..16u16 {
            let k = VoxelKey::new(x, x % 9, x % 11);
            assert_eq!(back.search(k, 4, &stats), t.search(k, 4, &stats));
        }
    }

    #[test]
    fn clear_releases_capacity() {
        let mut t = ArenaTree::new();
        let stats = TreeStats::new();
        observe(&mut t, VoxelKey::new(1, 2, 3), true, &stats);
        assert!(t.memory_usage() > 0);
        t.clear();
        assert_eq!(t.memory_usage(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn merge_splices_disjoint_octants() {
        let stats = TreeStats::new();
        let mut a = ArenaTree::new();
        observe(&mut a, VoxelKey::new(1, 2, 3), true, &stats);
        let mut b = ArenaTree::new();
        observe(&mut b, VoxelKey::new(12, 13, 14), true, &stats);

        let mut merged = ArenaTree::new();
        merged.merge_disjoint_top_level(&a).unwrap();
        merged.merge_disjoint_top_level(&b).unwrap();
        merged.check_structure().unwrap();
        assert_eq!(
            merged.search(VoxelKey::new(1, 2, 3), 4, &stats),
            a.search(VoxelKey::new(1, 2, 3), 4, &stats)
        );
        assert_eq!(
            merged.search(VoxelKey::new(12, 13, 14), 4, &stats),
            b.search(VoxelKey::new(12, 13, 14), 4, &stats)
        );
        assert_eq!(merged.search(VoxelKey::new(9, 1, 1), 4, &stats), None);

        let mut conflict = ArenaTree::new();
        observe(&mut conflict, VoxelKey::new(2, 2, 2), true, &stats);
        assert!(merged.merge_disjoint_top_level(&conflict).is_err());
    }
}
