//! Compact "bonsai-tree" serialisation (the analogue of OctoMap's `.bt`).
//!
//! Reference OctoMap ships two formats: `.ot` streams full log-odds (our
//! [`crate::io`]), and `.bt` stores only the ternary occupancy decision with
//! **two bits per child**, reconstructing a maximum-likelihood tree on read.
//! The `.bt` file is what most consumers (visualisers, planners) exchange,
//! at a fraction of the size. This module reproduces that trade:
//!
//! * occupied leaves decode to `clamp_max`, free leaves to `clamp_min`
//!   (maximum-likelihood values, exactly like OctoMap's `readBinary`);
//! * inner nodes are recomputed from children;
//! * the value-level information lost is precisely what `.bt` loses.
//!
//! Child codes: `00` absent, `01` free leaf, `10` occupied leaf, `11` inner
//! child follows (depth-first).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use octocache_geom::{ChildIndex, VoxelGrid};

use crate::io::{append_footer, split_footer, MapFooter, ReadError};
use crate::layout::TreeLayout;
use crate::node::OcTreeNode;
use crate::occupancy::OccupancyParams;
use crate::tree::{NodeRef, OccupancyOcTree};

const MAGIC: &[u8; 4] = b"OCB1";

/// Serialises the occupancy *decisions* of a tree (2 bits per child) as a
/// legacy v1 stream with no footer.
///
/// The output reconstructs to a maximum-likelihood tree: every occupied
/// region at `clamp_max`, every free region at `clamp_min`.
pub fn write_binary_tree(tree: &OccupancyOcTree) -> Bytes {
    write_payload(tree).freeze()
}

/// As [`write_binary_tree`], with the checksummed v2 footer appended (see
/// [`crate::io::MapFooter`]).
///
/// Because `.bt` streams are lossy, the footer's leaf checksum describes
/// the **maximum-likelihood tree the reader reconstructs**, not the source
/// tree — that is the only tree whose sum the reader can recompute.
pub fn write_binary_tree_v2(tree: &OccupancyOcTree, epoch: u64) -> Bytes {
    let mut buf = write_payload(tree);
    let ml =
        read_payload(&buf[..], tree.layout()).expect("freshly written .bt payload must decode");
    append_footer(&mut buf, ml.leaf_checksum(), epoch);
    buf.freeze()
}

fn write_payload(tree: &OccupancyOcTree) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64 + tree.num_nodes());
    buf.put_slice(MAGIC);
    buf.put_f64(tree.grid().resolution());
    buf.put_u8(tree.grid().depth());
    let p = tree.params();
    buf.put_f32(p.clamp_min);
    buf.put_f32(p.clamp_max);
    buf.put_f32(p.threshold);
    match tree.root_ref() {
        Some(root) => {
            buf.put_u8(1);
            write_node(root, tree.params(), &mut buf);
        }
        None => buf.put_u8(0),
    }
    buf
}

fn child_code(node: NodeRef<'_>, i: ChildIndex, params: &OccupancyParams) -> u16 {
    match node.child(i) {
        None => 0b00,
        Some(c) if c.has_children() => 0b11,
        Some(c) if params.is_occupied(c.log_odds()) => 0b10,
        Some(_) => 0b01,
    }
}

fn write_node(node: NodeRef<'_>, params: &OccupancyParams, buf: &mut BytesMut) {
    let mut mask = 0u16;
    for i in ChildIndex::all() {
        mask |= child_code(node, i, params) << (2 * i.as_usize());
    }
    buf.put_u16(mask);
    for i in ChildIndex::all() {
        if child_code(node, i, params) == 0b11 {
            write_node(node.child(i).expect("inner child"), params, buf);
        }
    }
}

/// Deserialises a `.bt`-style stream (v1 or v2) into a maximum-likelihood
/// tree stored in the ambient default layout
/// ([`TreeLayout::default_from_env`]). The stream itself is
/// layout-independent.
///
/// # Errors
///
/// Returns a [`ReadError`] for malformed input; never panics on untrusted
/// bytes.
pub fn read_binary_tree(bytes: &[u8]) -> Result<OccupancyOcTree, ReadError> {
    read_binary_tree_with_layout(bytes, TreeLayout::default_from_env())
}

/// As [`read_binary_tree`], but stores the decoded tree in an explicit
/// layout.
///
/// # Errors
///
/// Returns a [`ReadError`] for malformed input.
pub fn read_binary_tree_with_layout(
    bytes: &[u8],
    layout: TreeLayout,
) -> Result<OccupancyOcTree, ReadError> {
    read_binary_tree_with_meta(bytes, layout).map(|(tree, _)| tree)
}

/// As [`read_binary_tree_with_layout`], additionally returning the v2
/// footer when the stream carries one (`None` for legacy v1 streams). The
/// footer's payload CRC and reconstructed-tree leaf checksum are verified.
///
/// # Errors
///
/// Returns a [`ReadError`] for malformed input or failed integrity checks.
pub fn read_binary_tree_with_meta(
    bytes: &[u8],
    layout: TreeLayout,
) -> Result<(OccupancyOcTree, Option<MapFooter>), ReadError> {
    let (payload, meta) = split_footer(bytes)?;
    let tree = read_payload(payload, layout)?;
    if let Some(meta) = &meta {
        let actual = tree.leaf_checksum();
        if actual != meta.leaf_checksum {
            return Err(ReadError::LeafChecksumMismatch {
                expected: meta.leaf_checksum,
                actual,
            });
        }
    }
    Ok((tree, meta))
}

fn read_payload(bytes: &[u8], layout: TreeLayout) -> Result<OccupancyOcTree, ReadError> {
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(ReadError::BadMagic);
    }
    buf.advance(4);
    if buf.remaining() < 8 + 1 + 3 * 4 + 1 {
        return Err(ReadError::Truncated);
    }
    let resolution = buf.get_f64();
    let depth = buf.get_u8();
    let grid = VoxelGrid::new(resolution, depth).map_err(|e| ReadError::BadGrid(e.to_string()))?;
    let params = OccupancyParams {
        clamp_min: buf.get_f32(),
        clamp_max: buf.get_f32(),
        threshold: buf.get_f32(),
        ..OccupancyParams::default()
    };
    if params.validate().is_err() {
        return Err(ReadError::BadGrid("inconsistent occupancy params".into()));
    }
    let has_root = buf.get_u8() == 1;
    let mut tree = OccupancyOcTree::with_layout(grid, params, layout);
    if has_root {
        let mut root = OcTreeNode::new(params.threshold);
        read_node(&mut buf, &mut root, &params, depth)?;
        fixup_inner(&mut root);
        if buf.has_remaining() {
            return Err(ReadError::TrailingBytes(buf.remaining()));
        }
        tree.install_root(Some(Box::new(root)));
    } else if buf.has_remaining() {
        return Err(ReadError::TrailingBytes(buf.remaining()));
    }
    Ok(tree)
}

fn read_node(
    buf: &mut &[u8],
    node: &mut OcTreeNode,
    params: &OccupancyParams,
    levels_left: u8,
) -> Result<(), ReadError> {
    if buf.remaining() < 2 {
        return Err(ReadError::Truncated);
    }
    let mask = buf.get_u16();
    for i in ChildIndex::all() {
        let code = (mask >> (2 * i.as_usize())) & 0b11;
        match code {
            0b00 => {}
            0b01 => {
                let (child, _) = node.child_or_create(i, params.clamp_min);
                child.set_log_odds(params.clamp_min);
            }
            0b10 => {
                let (child, _) = node.child_or_create(i, params.clamp_max);
                child.set_log_odds(params.clamp_max);
            }
            _ => {
                if levels_left <= 1 {
                    return Err(ReadError::DepthOverflow);
                }
                let (child, _) = node.child_or_create(i, params.threshold);
                read_node(buf, child, params, levels_left - 1)?;
            }
        }
    }
    Ok(())
}

/// Recomputes inner-node values bottom-up (max of children).
fn fixup_inner(node: &mut OcTreeNode) {
    let indices: Vec<ChildIndex> = node.children().map(|(i, _)| i).collect();
    for i in indices {
        if let Some(child) = node.child_mut(i) {
            if child.has_children() {
                fixup_inner(child);
            }
        }
    }
    if let Some(max) = node.max_child_log_odds() {
        node.set_log_odds(max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert;
    use octocache_geom::{Point3, VoxelKey};

    fn sample_tree() -> OccupancyOcTree {
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let cloud: Vec<Point3> = (0..60)
            .map(|i| {
                let a = i as f64 * 0.11;
                Point3::new(6.0 + a.sin(), a.cos() * 4.0, (i % 5) as f64 * 0.3)
            })
            .collect();
        for origin in [Point3::ZERO, Point3::new(0.5, 0.5, 0.2)] {
            insert::insert_point_cloud(&mut tree, origin, &cloud, 30.0).unwrap();
        }
        tree
    }

    #[test]
    fn decisions_survive_roundtrip() {
        let tree = sample_tree();
        let bytes = write_binary_tree(&tree);
        let restored = read_binary_tree(&bytes).unwrap();
        restored.check_invariants().unwrap();
        // Every voxel's ternary decision (occupied / free / unknown) is
        // preserved even though values are maximum-likelihood.
        for x in (0..256u16).step_by(3) {
            for y in (96..160u16).step_by(3) {
                let key = VoxelKey::new(x, y, 130);
                assert_eq!(
                    tree.is_occupied(key),
                    restored.is_occupied(key),
                    "decision flip at {key}"
                );
            }
        }
    }

    #[test]
    fn binary_is_smaller_than_full() {
        let tree = sample_tree();
        let full = crate::io::write_tree(&tree);
        let binary = write_binary_tree(&tree);
        assert!(
            binary.len() * 2 < full.len(),
            "bt {} vs ot {}",
            binary.len(),
            full.len()
        );
    }

    #[test]
    fn restored_values_are_maximum_likelihood() {
        let tree = sample_tree();
        let restored = read_binary_tree(&write_binary_tree(&tree)).unwrap();
        let p = *restored.params();
        for leaf in restored.leaves() {
            assert!(
                leaf.log_odds == p.clamp_min || leaf.log_odds == p.clamp_max,
                "non-ML leaf value {}",
                leaf.log_odds
            );
        }
    }

    #[test]
    fn empty_tree_roundtrips() {
        let grid = VoxelGrid::new(0.1, 16).unwrap();
        let tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let restored = read_binary_tree(&write_binary_tree(&tree)).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn v2_roundtrip_checksums_ml_tree() {
        let tree = sample_tree();
        let bytes = write_binary_tree_v2(&tree, 9);
        let (restored, meta) = read_binary_tree_with_meta(&bytes, tree.layout()).unwrap();
        let meta = meta.expect("footer present");
        assert_eq!(meta.epoch, 9);
        // The footer checksums the reconstructed ML tree, not the source.
        assert_eq!(meta.leaf_checksum, restored.leaf_checksum());
        // Decisions still survive, as with v1.
        let v1 = read_binary_tree(&write_binary_tree(&tree)).unwrap();
        assert_eq!(v1.leaf_checksum(), restored.leaf_checksum());
    }

    #[test]
    fn v2_corruption_detected() {
        let tree = sample_tree();
        let bytes = write_binary_tree_v2(&tree, 1).to_vec();
        let mut corrupted = bytes.clone();
        corrupted[30] ^= 0x10;
        assert!(matches!(
            read_binary_tree(&corrupted),
            Err(ReadError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn malformed_input_rejected_without_panic() {
        assert!(matches!(
            read_binary_tree(b"XXXX"),
            Err(ReadError::BadMagic)
        ));
        let tree = sample_tree();
        let bytes = write_binary_tree(&tree).to_vec();
        for cut in [3usize, 10, 18, bytes.len() - 1] {
            assert!(read_binary_tree(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for i in (0..bytes.len().min(300)).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x55;
            let _ = read_binary_tree(&corrupted); // must not panic
        }
    }
}
