//! Storage-layout selection for the occupancy octree.
//!
//! The paper's cost model (§3.2) is built on OctoMap's pointer-chasing node
//! layout — "up to 32 memory accesses for a standard 16-level octree". The
//! related work (OpenVDB-style mapping, VoxelCache) attacks that layout
//! directly with flat, index-addressed node pools. This crate keeps both:
//! the pointer tree remains the differential oracle, and the arena pool
//! ([`crate::arena`]) is the locality-friendly alternative. Every
//! [`crate::OccupancyOcTree`] carries a [`TreeLayout`] and produces
//! voxel-for-voxel identical maps under either.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

/// How an [`crate::OccupancyOcTree`] stores its nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TreeLayout {
    /// Reference OctoMap's heap-pointer tree
    /// (`Option<Box<[Option<Box<OcTreeNode>>; 8]>>` per node). The
    /// differential oracle: the layout whose access pattern the paper
    /// analyses.
    #[default]
    Pointer,
    /// A `Vec`-backed node pool: `u32` indices, eight-child blocks allocated
    /// contiguously, and a free-list so pruning recycles blocks instead of
    /// returning them to the allocator.
    Arena,
}

impl TreeLayout {
    /// All layouts, oracle first.
    pub const ALL: [TreeLayout; 2] = [TreeLayout::Pointer, TreeLayout::Arena];

    /// Short lowercase name (`"pointer"` / `"arena"`), stable across
    /// serialisation, CLI flags and telemetry tags.
    pub fn name(&self) -> &'static str {
        match self {
            TreeLayout::Pointer => "pointer",
            TreeLayout::Arena => "arena",
        }
    }

    /// The ambient default layout: `OCTO_TREE_LAYOUT` (`pointer`/`arena`)
    /// when set and valid, otherwise [`TreeLayout::Pointer`].
    ///
    /// Resolved once per process and cached, so the environment variable
    /// flips the layout of every tree whose constructor did not choose one
    /// explicitly — this is how CI runs the whole suite over both layouts.
    pub fn default_from_env() -> TreeLayout {
        static AMBIENT: OnceLock<TreeLayout> = OnceLock::new();
        *AMBIENT.get_or_init(|| {
            std::env::var("OCTO_TREE_LAYOUT")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_default()
        })
    }
}

impl fmt::Display for TreeLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown layout name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayoutError(String);

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown tree layout {:?} (expected pointer|arena)",
            self.0
        )
    }
}

impl std::error::Error for ParseLayoutError {}

impl FromStr for TreeLayout {
    type Err = ParseLayoutError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "pointer" => Ok(TreeLayout::Pointer),
            "arena" => Ok(TreeLayout::Arena),
            other => Err(ParseLayoutError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for layout in TreeLayout::ALL {
            assert_eq!(layout.name().parse::<TreeLayout>().unwrap(), layout);
            assert_eq!(layout.to_string(), layout.name());
        }
        assert_eq!("ARENA".parse::<TreeLayout>().unwrap(), TreeLayout::Arena);
        assert!("octree".parse::<TreeLayout>().is_err());
    }

    #[test]
    fn serde_round_trip() {
        for layout in TreeLayout::ALL {
            let json = serde::json::to_string(&layout);
            let back: TreeLayout = serde::json::from_str(&json).unwrap();
            assert_eq!(back, layout);
        }
    }

    #[test]
    fn env_default_is_a_valid_layout() {
        // Whatever the ambient environment says, the resolver must yield a
        // usable layout (and be stable across calls).
        let a = TreeLayout::default_from_env();
        let b = TreeLayout::default_from_env();
        assert_eq!(a, b);
        assert!(TreeLayout::ALL.contains(&a));
    }
}
