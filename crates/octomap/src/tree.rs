use octocache_geom::{ChildIndex, GeomError, Point3, VoxelGrid, VoxelKey};

use crate::arena::ArenaTree;
use crate::layout::TreeLayout;
use crate::node::OcTreeNode;
use crate::occupancy::OccupancyParams;
use crate::stats::TreeStats;

/// A leaf of the octree together with its position and size.
///
/// `level` counts levels above the finest resolution: a leaf at level 0 is a
/// single voxel; a leaf at level `l` is a pruned cube of `2^l` voxels per
/// axis whose minimum-corner key is `key` (low `l` bits zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEntry {
    /// Minimum-corner voxel key of the leaf cube.
    pub key: VoxelKey,
    /// Levels above the finest resolution (0 = single voxel).
    pub level: u8,
    /// The leaf's log-odds occupancy.
    pub log_odds: f32,
}

impl LeafEntry {
    /// Edge length of the leaf cube in voxels.
    pub fn size_in_voxels(&self) -> u32 {
        1u32 << self.level
    }

    /// True when this leaf covers the given finest-level voxel key.
    pub fn covers(&self, key: VoxelKey) -> bool {
        key.ancestor_at(self.level) == self.key
    }
}

/// The OctoMap occupancy octree.
///
/// Stores clamped log-odds occupancy in an octree of depth
/// [`VoxelGrid::depth`]. Every update is a root-to-leaf round trip: descend
/// to the leaf (expanding pruned aggregates on the way), apply the update,
/// then propagate values back up (inner value = max of children) and prune
/// equal-valued sibling sets — the exact workflow of reference OctoMap and
/// the cost model of the paper's §2.2/Figure 5.
///
/// Nodes live in one of two interchangeable storage layouts
/// ([`TreeLayout`]): reference OctoMap's pointer tree (the differential
/// oracle) or a `Vec`-backed node pool with `u32` indices and a block
/// free-list. Both produce voxel-for-voxel identical maps and identical
/// node-visit telemetry; only memory layout and constant factors differ.
///
/// # Example
///
/// ```
/// # use octocache_octomap::{OccupancyOcTree, OccupancyParams};
/// # use octocache_geom::{VoxelGrid, VoxelKey};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = VoxelGrid::new(0.1, 16)?;
/// let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
/// let key = VoxelKey::origin(16);
/// tree.update_node(key, true);
/// assert_eq!(tree.is_occupied(key), Some(true));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OccupancyOcTree {
    grid: VoxelGrid,
    params: OccupancyParams,
    storage: Storage,
    stats: TreeStats,
    auto_prune: bool,
}

/// The node storage behind a tree, one variant per [`TreeLayout`].
#[derive(Debug)]
enum Storage {
    Pointer {
        root: Option<Box<OcTreeNode>>,
        /// Live allocation counters, maintained incrementally so
        /// [`OccupancyOcTree::memory_usage`] is O(1).
        alloc: PointerAlloc,
    },
    Arena(ArenaTree),
}

/// What the pointer layout actually allocates: one box per node plus one
/// eight-slot child array per inner node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PointerAlloc {
    nodes: usize,
    blocks: usize,
}

impl PointerAlloc {
    fn bytes(&self) -> usize {
        self.nodes * std::mem::size_of::<OcTreeNode>()
            + self.blocks * std::mem::size_of::<[Option<Box<OcTreeNode>>; 8]>()
    }

    /// Recounts from scratch (used after bulk operations: deserialisation,
    /// merge; the hot update path maintains the counters incrementally).
    fn recount(root: Option<&OcTreeNode>) -> PointerAlloc {
        fn walk(node: &OcTreeNode, a: &mut PointerAlloc) {
            a.nodes += 1;
            if node.has_children() {
                a.blocks += 1;
                for (_, c) in node.children() {
                    walk(c, a);
                }
            }
        }
        let mut a = PointerAlloc::default();
        if let Some(root) = root {
            walk(root, &mut a);
        }
        a
    }
}

impl OccupancyOcTree {
    /// Creates an empty tree over the given grid with the given sensor
    /// model, using the ambient default layout
    /// ([`TreeLayout::default_from_env`]).
    pub fn new(grid: VoxelGrid, params: OccupancyParams) -> Self {
        Self::with_layout(grid, params, TreeLayout::default_from_env())
    }

    /// Creates an empty tree with an explicit storage layout.
    pub fn with_layout(grid: VoxelGrid, params: OccupancyParams, layout: TreeLayout) -> Self {
        let storage = match layout {
            TreeLayout::Pointer => Storage::Pointer {
                root: None,
                alloc: PointerAlloc::default(),
            },
            TreeLayout::Arena => Storage::Arena(ArenaTree::new()),
        };
        OccupancyOcTree {
            grid,
            params,
            storage,
            stats: TreeStats::new(),
            auto_prune: true,
        }
    }

    /// The storage layout this tree uses.
    pub fn layout(&self) -> TreeLayout {
        match &self.storage {
            Storage::Pointer { .. } => TreeLayout::Pointer,
            Storage::Arena(_) => TreeLayout::Arena,
        }
    }

    /// The world↔key mapping this tree uses.
    pub fn grid(&self) -> &VoxelGrid {
        &self.grid
    }

    /// The sensor model.
    pub fn params(&self) -> &OccupancyParams {
        &self.params
    }

    /// Node-visit instrumentation counters.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Disables/enables pruning during updates. Reference OctoMap calls this
    /// `lazy_eval`; disabling trades memory for update speed.
    pub fn set_auto_prune(&mut self, on: bool) {
        self.auto_prune = on;
    }

    /// True when the tree stores no nodes at all.
    pub fn is_empty(&self) -> bool {
        match &self.storage {
            Storage::Pointer { root, .. } => root.is_none(),
            Storage::Arena(a) => a.is_empty(),
        }
    }

    /// Removes every node, releasing the allocation (pool capacity
    /// included).
    pub fn clear(&mut self) {
        match &mut self.storage {
            Storage::Pointer { root, alloc } => {
                *root = None;
                *alloc = PointerAlloc::default();
            }
            Storage::Arena(a) => a.clear(),
        }
    }

    /// A layout-independent reference to the root node, if any.
    pub(crate) fn root_ref(&self) -> Option<NodeRef<'_>> {
        match &self.storage {
            Storage::Pointer { root, .. } => root.as_deref().map(NodeRef::Pointer),
            Storage::Arena(a) => {
                if a.is_empty() {
                    None
                } else {
                    Some(NodeRef::Arena { tree: a, idx: 0 })
                }
            }
        }
    }

    /// The root's log-odds, if the tree is non-empty.
    pub fn root_log_odds(&self) -> Option<f32> {
        self.root_ref().map(|r| r.log_odds())
    }

    /// Installs a deserialised root, converting it into this tree's layout
    /// (see [`crate::io`]).
    pub(crate) fn install_root(&mut self, root: Option<Box<OcTreeNode>>) {
        match &mut self.storage {
            Storage::Pointer { root: slot, alloc } => {
                *slot = root;
                *alloc = PointerAlloc::recount(slot.as_deref());
            }
            Storage::Arena(a) => *a = ArenaTree::from_pointer(root.as_deref()),
        }
    }

    /// Deep-copies the tree: an independent, observationally identical map
    /// in the same storage layout.
    ///
    /// This is the snapshot-publication primitive of the read path
    /// (`octocache::query`): the arena layout copies its flat node pool in
    /// one `Vec` clone (plus the free list), the pointer layout clones the
    /// node graph. Instrumentation counters start at zero in the copy —
    /// queries against a snapshot are counted on the snapshot, not on the
    /// live tree it was taken from.
    pub fn deep_clone(&self) -> OccupancyOcTree {
        let storage = match &self.storage {
            Storage::Pointer { root, alloc } => Storage::Pointer {
                root: root.clone(),
                alloc: *alloc,
            },
            Storage::Arena(a) => Storage::Arena(a.clone()),
        };
        OccupancyOcTree {
            grid: self.grid,
            params: self.params,
            storage,
            stats: TreeStats::new(),
            auto_prune: self.auto_prune,
        }
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        match &self.storage {
            Storage::Pointer { root, .. } => root.as_ref().map_or(0, |r| r.count_nodes()),
            Storage::Arena(a) => a.count_nodes(),
        }
    }

    /// Number of leaves (pruned cubes count once).
    pub fn num_leaves(&self) -> usize {
        match &self.storage {
            Storage::Pointer { root, .. } => root.as_ref().map_or(0, |r| r.count_leaves()),
            Storage::Arena(a) => a.count_leaves(),
        }
    }

    /// Heap footprint in bytes, counting what the layout actually
    /// allocates: node boxes plus eight-slot child arrays for the pointer
    /// tree, pool capacity (free-list slack included) plus the free-list
    /// for the arena. Maintained incrementally — O(1), safe to sample every
    /// scan.
    pub fn memory_usage(&self) -> usize {
        match &self.storage {
            Storage::Pointer { alloc, .. } => alloc.bytes(),
            Storage::Arena(a) => a.memory_usage(),
        }
    }

    /// Integrates one occupancy observation at `key` (the paper's per-voxel
    /// update: `±δ` with clamping) and returns the new log-odds.
    pub fn update_node(&mut self, key: VoxelKey, occupied: bool) -> f32 {
        self.apply_at_leaf(key, LeafOp::Observe { occupied })
    }

    /// Adds an arbitrary accumulated log-odds `delta` at `key` (clamped) and
    /// returns the new value. This is the operation a cache eviction uses
    /// when it has folded several observations into one value.
    pub fn update_node_log_odds(&mut self, key: VoxelKey, delta: f32) -> f32 {
        self.apply_at_leaf(key, LeafOp::Add { delta })
    }

    /// Overwrites the log-odds at `key` (clamped) and returns the stored
    /// value. Used when evicted cache entries already carry the *absolute*
    /// accumulated occupancy (paper §4.2: "any voxel evicted from the cache
    /// will overwrite its occupancy value to the octree").
    pub fn set_node_log_odds(&mut self, key: VoxelKey, value: f32) -> f32 {
        self.apply_at_leaf(key, LeafOp::Set { value })
    }

    fn apply_at_leaf(&mut self, key: VoxelKey, op: LeafOp) -> f32 {
        let depth = self.grid.depth();
        let prior = self.params.threshold;
        match &mut self.storage {
            Storage::Pointer { root, alloc } => {
                let mut root_created = false;
                let root = root.get_or_insert_with(|| {
                    self.stats.count_created();
                    alloc.nodes += 1;
                    root_created = true;
                    Box::new(OcTreeNode::new(prior))
                });
                Self::update_recurs(
                    root,
                    root_created,
                    key,
                    depth,
                    &self.params,
                    &self.stats,
                    self.auto_prune,
                    alloc,
                    op,
                )
            }
            Storage::Arena(a) => {
                a.apply_at_leaf(key, depth, &self.params, &self.stats, self.auto_prune, op)
            }
        }
    }

    /// Recursive descent + unwind. `level` is the current node's height above
    /// the leaves (`depth` at the root, 0 at a leaf). `is_fresh` marks nodes
    /// created during *this* descent, which must not be expanded (they are
    /// not pruned aggregates) — reference OctoMap's `created_node` flag.
    #[allow(clippy::too_many_arguments)]
    fn update_recurs(
        node: &mut OcTreeNode,
        is_fresh: bool,
        key: VoxelKey,
        level: u8,
        params: &OccupancyParams,
        stats: &TreeStats,
        auto_prune: bool,
        alloc: &mut PointerAlloc,
        op: LeafOp,
    ) -> f32 {
        stats.count_visit();
        if level == 0 {
            let new = match op {
                LeafOp::Observe { occupied } => params.apply(node.log_odds(), occupied),
                LeafOp::Add { delta } => params.clamp(node.log_odds() + delta),
                LeafOp::Set { value } => params.clamp(value),
            };
            node.set_log_odds(new);
            stats.count_leaf_update();
            return new;
        }

        let child_idx = key.child_index(level - 1);
        if !is_fresh && !node.has_children() {
            // This childless inner node is a pruned aggregate: expand it so
            // the sibling octants keep their value.
            node.expand();
            alloc.nodes += 8;
            alloc.blocks += 1;
            stats.count_expansion();
            stats.count_visits(8);
        }
        let had_children = node.has_children();
        let (child, created) = node.child_or_create(child_idx, params.threshold);
        if created {
            stats.count_created();
            alloc.nodes += 1;
            if !had_children {
                alloc.blocks += 1;
            }
        }
        let leaf_value = Self::update_recurs(
            child,
            created,
            key,
            level - 1,
            params,
            stats,
            auto_prune,
            alloc,
            op,
        );

        // Unwind: refresh this node from its children (the paper's
        // "trace-back from N_u to the root"), prune when possible.
        stats.count_visit();
        if auto_prune && node.is_prunable() {
            node.prune();
            alloc.nodes -= 8;
            alloc.blocks -= 1;
            stats.count_prune();
        } else if let Some(max) = node.max_child_log_odds() {
            node.set_log_odds(max);
        }
        leaf_value
    }

    /// Looks up the log-odds at `key`, descending until a leaf or pruned
    /// aggregate covers it. `None` means the voxel is in unknown space.
    pub fn search(&self, key: VoxelKey) -> Option<f32> {
        self.stats.count_query();
        match &self.storage {
            Storage::Pointer { root, .. } => {
                let mut node = root.as_deref()?;
                self.stats.count_visit();
                let mut level = self.grid.depth();
                while level > 0 {
                    if !node.has_children() {
                        // Pruned aggregate covering this voxel — but
                        // distinguish the "fresh root" case where nothing
                        // was ever inserted.
                        return Some(node.log_odds());
                    }
                    node = node.child(key.child_index(level - 1))?;
                    self.stats.count_visit();
                    level -= 1;
                }
                Some(node.log_odds())
            }
            Storage::Arena(a) => a.search(key, self.grid.depth(), &self.stats),
        }
    }

    /// Occupancy decision at `key`: `Some(true)` occupied, `Some(false)`
    /// free, `None` unknown.
    pub fn is_occupied(&self, key: VoxelKey) -> Option<bool> {
        self.search(key).map(|l| self.params.is_occupied(l))
    }

    /// Occupancy probability at `key`, or `None` for unknown space.
    pub fn occupancy_probability(&self, key: VoxelKey) -> Option<f64> {
        self.search(key).map(crate::occupancy::logodds_to_prob)
    }

    /// Convenience: occupancy decision at a world point.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] when the point is outside the grid.
    pub fn is_occupied_at(&self, p: Point3) -> Result<Option<bool>, GeomError> {
        Ok(self.is_occupied(self.grid.key_of(p)?))
    }

    /// Prunes the whole tree bottom-up (useful after bulk updates with
    /// auto-prune disabled).
    pub fn prune(&mut self) {
        let depth = self.grid.depth();
        match &mut self.storage {
            Storage::Pointer { root, alloc } => {
                if let Some(root) = root.as_deref_mut() {
                    Self::prune_recurs(root, depth, &self.stats, alloc);
                }
            }
            Storage::Arena(a) => a.prune(depth, &self.stats),
        }
    }

    fn prune_recurs(node: &mut OcTreeNode, level: u8, stats: &TreeStats, alloc: &mut PointerAlloc) {
        if level == 0 || !node.has_children() {
            return;
        }
        for i in ChildIndex::all() {
            if let Some(c) = node.child_mut(i) {
                Self::prune_recurs(c, level - 1, stats, alloc);
            }
        }
        if node.is_prunable() {
            node.prune();
            alloc.nodes -= 8;
            alloc.blocks -= 1;
            stats.count_prune();
        } else if let Some(max) = node.max_child_log_odds() {
            node.set_log_odds(max);
        }
    }

    /// FNV-1a checksum over the leaf set `(key, level, log-odds bits)`.
    ///
    /// The sum is independent of the storage layout and of pointer identity:
    /// two trees holding the same pruned leaf structure with bit-identical
    /// log-odds produce the same checksum regardless of how they were built.
    /// It is embedded in the v2 map footer ([`crate::io`]) and is the
    /// bit-match oracle for crash recovery (`octocache::durable`).
    pub fn leaf_checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for leaf in self.leaves() {
            h = crate::checksum::fnv1a(
                h,
                leaf.key.x as u64
                    | (leaf.key.y as u64) << 16
                    | (leaf.key.z as u64) << 32
                    | (leaf.level as u64) << 48,
            );
            h = crate::checksum::fnv1a(h, leaf.log_odds.to_bits() as u64);
        }
        h
    }

    /// Iterates over all leaves (pruned cubes yield one entry).
    pub fn leaves(&self) -> Leaves<'_> {
        let mut stack = Vec::new();
        if let Some(root) = self.root_ref() {
            stack.push((root, VoxelKey::new(0, 0, 0), self.grid.depth()));
        }
        Leaves { stack }
    }

    /// Validates the tree's structural invariants, returning a description
    /// of the first violation found:
    ///
    /// * every inner node's value equals the maximum over its children;
    /// * every value lies within the clamping bounds;
    /// * no node sits below the finest level.
    ///
    /// Intended for tests and debugging after bulk operations.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn recurse(node: NodeRef<'_>, level: u8, params: &OccupancyParams) -> Result<(), String> {
            let v = node.log_odds();
            if !(params.clamp_min..=params.clamp_max).contains(&v) {
                return Err(format!("value {v} outside clamp range at level {level}"));
            }
            if node.has_children() {
                if level == 0 {
                    return Err("leaf-level node has children".into());
                }
                let max = node.max_child_log_odds().expect("has children");
                if (max - v).abs() > 1e-6 {
                    return Err(format!(
                        "inner node holds {v} but max child is {max} at level {level}"
                    ));
                }
                for (_, child) in node.children() {
                    recurse(child, level - 1, params)?;
                }
            }
            Ok(())
        }
        // Layout-level structure first: allocation counters must match the
        // actual tree (pointer), block bookkeeping must balance (arena).
        match &self.storage {
            Storage::Pointer { root, alloc } => {
                let actual = PointerAlloc::recount(root.as_deref());
                if *alloc != actual {
                    return Err(format!(
                        "allocation counters drifted: tracked {alloc:?}, actual {actual:?}"
                    ));
                }
            }
            Storage::Arena(a) => a.check_structure()?,
        }
        match self.root_ref() {
            None => Ok(()),
            Some(root) => {
                // A fresh never-updated root may carry the prior unclamped
                // threshold; treat the threshold as always legal.
                if !root.has_children() && root.log_odds() == self.params.threshold {
                    return Ok(());
                }
                recurse(root, self.grid.depth(), &self.params)
            }
        }
    }

    /// Merges `other` into `self`, assuming the two trees populate disjoint
    /// top-level octants (as the shards of a spatially-partitioned map do).
    /// The root value is refreshed afterwards.
    ///
    /// Pointer trees deep-clone the spliced subtrees; arena trees splice by
    /// child-block reindexing (whole eight-child blocks copied into the
    /// pool, indices rewritten) rather than node-by-node re-insertion. A
    /// tree merged from a differently-laid-out `other` converts the spliced
    /// subtrees on the fly; `self`'s layout never changes.
    ///
    /// # Errors
    ///
    /// Returns a message when both trees populate the same top-level octant
    /// or when either tree is pruned all the way to a childless root while
    /// the other holds data (the octant ownership is then ambiguous).
    pub fn merge_disjoint_top_level(&mut self, other: &OccupancyOcTree) -> Result<(), String> {
        let threshold = self.params.threshold;
        match &mut self.storage {
            Storage::Pointer { root, alloc } => {
                let Some(other_root) = other.root_ref() else {
                    return Ok(()); // nothing to merge
                };
                if root.is_none() {
                    *root = Some(Box::new(other_root.to_owned_node()));
                    *alloc = PointerAlloc::recount(root.as_deref());
                    return Ok(());
                }
                let self_root = root.as_deref_mut().expect("checked above");
                if !other_root.has_children() || !self_root.has_children() {
                    return Err("cannot merge trees pruned to a childless root".into());
                }
                for (i, child) in other_root.children() {
                    if self_root.child(i).is_some() {
                        return Err(format!("both trees populate top-level octant {i}"));
                    }
                    let (slot, _) = self_root.child_or_create(i, threshold);
                    *slot = child.to_owned_node();
                }
                if let Some(max) = self_root.max_child_log_odds() {
                    self_root.set_log_odds(max);
                }
                *alloc = PointerAlloc::recount(root.as_deref());
                Ok(())
            }
            Storage::Arena(a) => match &other.storage {
                Storage::Arena(b) => a.merge_disjoint_top_level(b),
                Storage::Pointer { root, .. } => {
                    let converted = ArenaTree::from_pointer(root.as_deref());
                    a.merge_disjoint_top_level(&converted)
                }
            },
        }
    }

    /// Iterates over the leaves whose cubes intersect the key-space box
    /// `[min, max]` (inclusive), pruning whole subtrees outside it — an
    /// O(answer × depth) descent rather than a full-tree scan.
    pub fn leaves_in_key_box(&self, min: VoxelKey, max: VoxelKey) -> BoxLeaves<'_> {
        let mut stack = Vec::new();
        if let Some(root) = self.root_ref() {
            stack.push((root, VoxelKey::new(0, 0, 0), self.grid.depth()));
        }
        BoxLeaves { stack, min, max }
    }

    /// Iterates over the occupied leaves only.
    pub fn occupied_leaves(&self) -> impl Iterator<Item = LeafEntry> + '_ {
        let params = self.params;
        self.leaves()
            .filter(move |l| params.is_occupied(l.log_odds))
    }

    /// The tight key-space bounding box (inclusive min and max voxel keys)
    /// of all occupied space, or `None` when nothing is occupied. Used by
    /// planners to bound their search region.
    pub fn occupied_bounding_box(&self) -> Option<(VoxelKey, VoxelKey)> {
        let mut min: Option<VoxelKey> = None;
        let mut max: Option<VoxelKey> = None;
        for leaf in self.occupied_leaves() {
            let hi_off = (leaf.size_in_voxels() - 1) as u16;
            let hi = VoxelKey::new(
                leaf.key.x + hi_off,
                leaf.key.y + hi_off,
                leaf.key.z + hi_off,
            );
            min = Some(match min {
                None => leaf.key,
                Some(m) => VoxelKey::new(
                    m.x.min(leaf.key.x),
                    m.y.min(leaf.key.y),
                    m.z.min(leaf.key.z),
                ),
            });
            max = Some(match max {
                None => hi,
                Some(m) => VoxelKey::new(m.x.max(hi.x), m.y.max(hi.y), m.z.max(hi.z)),
            });
        }
        min.zip(max)
    }

    /// Counts leaves at the finest level whose value crosses the occupancy
    /// threshold, expanding pruned cubes. (Voxel-weighted occupied volume.)
    pub fn occupied_voxel_count(&self) -> u64 {
        self.leaves()
            .filter(|l| self.params.is_occupied(l.log_odds))
            .map(|l| {
                let edge = l.size_in_voxels() as u64;
                edge * edge * edge
            })
            .sum()
    }
}

/// A leaf-level mutation, shared between both storage layouts.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LeafOp {
    Observe { occupied: bool },
    Add { delta: f32 },
    Set { value: f32 },
}

/// A layout-independent shared reference to one tree node: either a plain
/// `&OcTreeNode` or an index into an arena pool. `Copy`, so traversals
/// (leaves, io, invariant checks, multi-resolution queries) are written
/// once and run over either layout.
#[derive(Debug, Clone, Copy)]
pub(crate) enum NodeRef<'a> {
    Pointer(&'a OcTreeNode),
    Arena { tree: &'a ArenaTree, idx: u32 },
}

impl<'a> NodeRef<'a> {
    pub(crate) fn log_odds(self) -> f32 {
        match self {
            NodeRef::Pointer(n) => n.log_odds(),
            NodeRef::Arena { tree, idx } => tree.log_odds(idx),
        }
    }

    pub(crate) fn child_mask(self) -> u8 {
        match self {
            NodeRef::Pointer(n) => n.child_mask(),
            NodeRef::Arena { tree, idx } => tree.child_mask(idx),
        }
    }

    pub(crate) fn has_children(self) -> bool {
        self.child_mask() != 0
    }

    pub(crate) fn child(self, i: ChildIndex) -> Option<NodeRef<'a>> {
        match self {
            NodeRef::Pointer(n) => n.child(i).map(NodeRef::Pointer),
            NodeRef::Arena { tree, idx } => tree
                .child_of(idx, i.as_usize())
                .map(|c| NodeRef::Arena { tree, idx: c }),
        }
    }

    pub(crate) fn children(self) -> impl Iterator<Item = (ChildIndex, NodeRef<'a>)> {
        ChildIndex::all().filter_map(move |i| self.child(i).map(|c| (i, c)))
    }

    pub(crate) fn max_child_log_odds(self) -> Option<f32> {
        self.children()
            .map(|(_, c)| c.log_odds())
            .fold(None, |acc, v| {
                Some(match acc {
                    Some(a) => a.max(v),
                    None => v,
                })
            })
    }

    /// Deep-clones the referenced subtree into pointer form.
    pub(crate) fn to_owned_node(self) -> OcTreeNode {
        let mut out = OcTreeNode::new(self.log_odds());
        for (i, child) in self.children() {
            let sub = child.to_owned_node();
            let (slot, _) = out.child_or_create(i, sub.log_odds());
            *slot = sub;
        }
        out
    }
}

/// Iterator over a tree's leaves. Created by [`OccupancyOcTree::leaves`].
#[derive(Debug)]
pub struct Leaves<'a> {
    stack: Vec<(NodeRef<'a>, VoxelKey, u8)>,
}

impl Iterator for Leaves<'_> {
    type Item = LeafEntry;

    fn next(&mut self) -> Option<LeafEntry> {
        while let Some((node, base, level)) = self.stack.pop() {
            if !node.has_children() {
                return Some(LeafEntry {
                    key: base,
                    level,
                    log_odds: node.log_odds(),
                });
            }
            let child_bit = level - 1;
            for (i, child) in node.children() {
                let c = i.as_usize() as u16;
                let child_key = VoxelKey::new(
                    base.x | ((c & 1) << child_bit),
                    base.y | (((c >> 1) & 1) << child_bit),
                    base.z | (((c >> 2) & 1) << child_bit),
                );
                self.stack.push((child, child_key, child_bit));
            }
        }
        None
    }
}

/// Iterator over the leaves intersecting a key-space box. Created by
/// [`OccupancyOcTree::leaves_in_key_box`].
#[derive(Debug)]
pub struct BoxLeaves<'a> {
    stack: Vec<(NodeRef<'a>, VoxelKey, u8)>,
    min: VoxelKey,
    max: VoxelKey,
}

impl BoxLeaves<'_> {
    /// True when the node cube `[base, base + 2^level)` intersects the box.
    fn intersects(&self, base: VoxelKey, level: u8) -> bool {
        let size = 1u32 << level;
        let lo = |b: u16| b as u32;
        let hi = |b: u16| b as u32 + size; // exclusive
        lo(base.x) <= self.max.x as u32
            && hi(base.x) > self.min.x as u32
            && lo(base.y) <= self.max.y as u32
            && hi(base.y) > self.min.y as u32
            && lo(base.z) <= self.max.z as u32
            && hi(base.z) > self.min.z as u32
    }
}

impl Iterator for BoxLeaves<'_> {
    type Item = LeafEntry;

    fn next(&mut self) -> Option<LeafEntry> {
        while let Some((node, base, level)) = self.stack.pop() {
            if !self.intersects(base, level) {
                continue;
            }
            if !node.has_children() {
                return Some(LeafEntry {
                    key: base,
                    level,
                    log_odds: node.log_odds(),
                });
            }
            let child_bit = level - 1;
            for (i, child) in node.children() {
                let c = i.as_usize() as u16;
                let child_key = VoxelKey::new(
                    base.x | ((c & 1) << child_bit),
                    base.y | (((c >> 1) & 1) << child_bit),
                    base.z | (((c >> 2) & 1) << child_bit),
                );
                self.stack.push((child, child_key, child_bit));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octocache_geom::morton;
    use proptest::prelude::*;

    fn small_tree() -> OccupancyOcTree {
        let grid = VoxelGrid::new(1.0, 4).unwrap();
        OccupancyOcTree::new(grid, OccupancyParams::default())
    }

    #[test]
    fn empty_tree_returns_unknown() {
        let tree = small_tree();
        assert_eq!(tree.search(VoxelKey::new(1, 2, 3)), None);
        assert_eq!(tree.is_occupied(VoxelKey::new(1, 2, 3)), None);
        assert!(tree.is_empty());
        assert_eq!(tree.num_nodes(), 0);
    }

    #[test]
    fn single_update_is_searchable() {
        let mut tree = small_tree();
        let key = VoxelKey::new(3, 7, 11);
        let v = tree.update_node(key, true);
        assert_eq!(tree.search(key), Some(v));
        assert!(v > 0.0);
        assert_eq!(tree.is_occupied(key), Some(true));
        // A different voxel is still unknown.
        assert_eq!(tree.search(VoxelKey::new(0, 0, 0)), None);
    }

    #[test]
    fn repeated_updates_accumulate_and_clamp() {
        let mut tree = small_tree();
        let key = VoxelKey::new(5, 5, 5);
        let mut last = f32::MIN;
        for _ in 0..10 {
            let v = tree.update_node(key, true);
            assert!(v >= last);
            last = v;
        }
        assert_eq!(last, tree.params().clamp_max);
        for _ in 0..20 {
            last = tree.update_node(key, false);
        }
        assert_eq!(last, tree.params().clamp_min);
        assert_eq!(tree.is_occupied(key), Some(false));
    }

    #[test]
    fn deep_clone_is_independent_and_identical() {
        for layout in [TreeLayout::Pointer, TreeLayout::Arena] {
            let grid = VoxelGrid::new(1.0, 4).unwrap();
            let mut tree = OccupancyOcTree::with_layout(grid, OccupancyParams::default(), layout);
            for i in 0..40u16 {
                tree.update_node(
                    VoxelKey::new(i % 16, (i * 7) % 16, (i * 3) % 16),
                    i % 3 != 0,
                );
            }
            let snap = tree.deep_clone();
            assert_eq!(snap.layout(), layout);
            assert_eq!(snap.num_nodes(), tree.num_nodes());
            // (memory_usage may differ: the clone has no pool slack.)
            assert!(snap.memory_usage() > 0);
            snap.check_invariants().unwrap();
            let before: Vec<LeafEntry> = snap.leaves().collect();
            // Mutating the original must not leak into the clone…
            for i in 0..16u16 {
                tree.update_node(VoxelKey::new(i, i, i), true);
            }
            let after: Vec<LeafEntry> = snap.leaves().collect();
            assert_eq!(before, after, "{layout:?}: clone observed a mutation");
            // …and the clone answers exactly what the original answered.
            for i in 0..40u16 {
                let key = VoxelKey::new(i % 16, (i * 7) % 16, (i * 3) % 16);
                assert!(snap.search(key).is_some(), "{layout:?}: {key} lost");
            }
            // Snapshot counters start at zero (queries above notwithstanding).
            assert_eq!(snap.stats().leaf_updates(), 0);
        }
    }

    #[test]
    fn deep_clone_of_empty_tree_is_empty() {
        let tree = small_tree();
        let snap = tree.deep_clone();
        assert!(snap.is_empty());
        assert_eq!(snap.num_nodes(), 0);
    }

    #[test]
    fn set_node_overwrites() {
        let mut tree = small_tree();
        let key = VoxelKey::new(2, 2, 2);
        tree.update_node(key, true);
        let v = tree.set_node_log_odds(key, -1.0);
        assert_eq!(v, -1.0);
        assert_eq!(tree.search(key), Some(-1.0));
        // Setting beyond the clamp range clamps.
        assert_eq!(tree.set_node_log_odds(key, 100.0), tree.params().clamp_max);
    }

    #[test]
    fn update_log_odds_adds_delta() {
        let mut tree = small_tree();
        let key = VoxelKey::new(9, 1, 4);
        tree.set_node_log_odds(key, 1.0);
        let v = tree.update_node_log_odds(key, -0.25);
        assert!((v - 0.75).abs() < 1e-6);
    }

    #[test]
    fn inner_nodes_hold_max_of_children() {
        let mut tree = small_tree();
        tree.set_node_log_odds(VoxelKey::new(0, 0, 0), -1.0);
        tree.set_node_log_odds(VoxelKey::new(1, 0, 0), 2.0);
        assert_eq!(tree.root_log_odds(), Some(2.0));
    }

    #[test]
    fn pruning_merges_equal_siblings() {
        let mut tree = small_tree();
        // Fill one complete parent octant (keys 0..2 per axis) to the
        // clamped max so all 8 leaves carry the same value.
        for x in 0..2u16 {
            for y in 0..2u16 {
                for z in 0..2u16 {
                    for _ in 0..10 {
                        tree.update_node(VoxelKey::new(x, y, z), true);
                    }
                }
            }
        }
        // The 8 leaves must have merged: search still works...
        assert_eq!(tree.is_occupied(VoxelKey::new(1, 1, 1)), Some(true));
        // ...and fewer than 8 leaf nodes exist below that parent. The
        // pruned cube shows up as a single leaf at level >= 1.
        let leaf = tree
            .leaves()
            .find(|l| l.covers(VoxelKey::new(0, 0, 0)))
            .unwrap();
        assert!(leaf.level >= 1);
        assert!(tree.stats().prunes() > 0);
    }

    #[test]
    fn expansion_preserves_sibling_values() {
        let mut tree = small_tree();
        // Create a pruned occupied cube...
        for x in 0..2u16 {
            for y in 0..2u16 {
                for z in 0..2u16 {
                    for _ in 0..10 {
                        tree.update_node(VoxelKey::new(x, y, z), true);
                    }
                }
            }
        }
        let max = tree.params().clamp_max;
        // ...then update one voxel inside it as free; siblings must keep max.
        tree.update_node(VoxelKey::new(0, 0, 0), false);
        assert_eq!(tree.search(VoxelKey::new(1, 1, 1)), Some(max));
        let v = tree.search(VoxelKey::new(0, 0, 0)).unwrap();
        assert!(v < max);
    }

    #[test]
    fn node_visits_track_round_trip() {
        let mut tree = small_tree();
        let key = VoxelKey::new(3, 3, 3);
        tree.stats().reset();
        tree.update_node(key, true);
        let s = tree.stats().snapshot();
        // depth 4: descent visits 4 levels + root creation etc.; unwind
        // re-visits inner nodes. At minimum 2*depth visits per paper.
        assert!(
            s.node_visits >= 2 * 4 - 1,
            "expected >= 7 visits, got {}",
            s.node_visits
        );
        assert_eq!(s.leaf_updates, 1);
    }

    #[test]
    fn leaves_cover_all_updates() {
        let mut tree = small_tree();
        let keys = [
            VoxelKey::new(0, 0, 0),
            VoxelKey::new(15, 15, 15),
            VoxelKey::new(7, 8, 9),
        ];
        for &k in &keys {
            tree.update_node(k, true);
        }
        for &k in &keys {
            assert!(tree.leaves().any(|l| l.covers(k)), "no leaf covers {k}");
        }
    }

    #[test]
    fn occupied_voxel_count_weights_pruned_cubes() {
        let mut tree = small_tree();
        for x in 0..2u16 {
            for y in 0..2u16 {
                for z in 0..2u16 {
                    for _ in 0..10 {
                        tree.update_node(VoxelKey::new(x, y, z), true);
                    }
                }
            }
        }
        assert_eq!(tree.occupied_voxel_count(), 8);
    }

    #[test]
    fn clear_resets_tree() {
        let mut tree = small_tree();
        tree.update_node(VoxelKey::new(1, 1, 1), true);
        assert!(!tree.is_empty());
        tree.clear();
        assert!(tree.is_empty());
        assert_eq!(tree.search(VoxelKey::new(1, 1, 1)), None);
    }

    #[test]
    fn world_point_query() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let p = Point3::new(1.2, -0.7, 3.3);
        let key = grid.key_of(p).unwrap();
        tree.update_node(key, true);
        assert_eq!(tree.is_occupied_at(p).unwrap(), Some(true));
        assert!(tree.is_occupied_at(Point3::new(1e9, 0.0, 0.0)).is_err());
    }

    #[test]
    fn occupied_bounding_box_is_tight() {
        let mut tree = small_tree();
        assert_eq!(tree.occupied_bounding_box(), None);
        tree.update_node(VoxelKey::new(3, 7, 2), true);
        tree.update_node(VoxelKey::new(9, 1, 5), true);
        tree.update_node(VoxelKey::new(5, 5, 5), false); // free: excluded
        let (min, max) = tree.occupied_bounding_box().unwrap();
        assert_eq!(min, VoxelKey::new(3, 1, 2));
        assert_eq!(max, VoxelKey::new(9, 7, 5));
        assert_eq!(tree.occupied_leaves().count(), 2);
    }

    #[test]
    fn merge_disjoint_octants() {
        // Tree A populates the low octant, tree B the high one.
        let mut a = small_tree();
        a.update_node(VoxelKey::new(1, 2, 3), true);
        a.update_node(VoxelKey::new(4, 5, 6), false);
        let mut b = small_tree();
        b.update_node(VoxelKey::new(12, 13, 14), true);

        let mut merged = small_tree();
        merged.merge_disjoint_top_level(&a).unwrap();
        merged.merge_disjoint_top_level(&b).unwrap();
        merged.check_invariants().unwrap();
        assert_eq!(
            merged.search(VoxelKey::new(1, 2, 3)),
            a.search(VoxelKey::new(1, 2, 3))
        );
        assert_eq!(
            merged.search(VoxelKey::new(4, 5, 6)),
            a.search(VoxelKey::new(4, 5, 6))
        );
        assert_eq!(
            merged.search(VoxelKey::new(12, 13, 14)),
            b.search(VoxelKey::new(12, 13, 14))
        );
        // Unpopulated space stays unknown.
        assert_eq!(merged.search(VoxelKey::new(9, 1, 1)), None);
    }

    #[test]
    fn merge_conflicting_octants_rejected() {
        let mut a = small_tree();
        a.update_node(VoxelKey::new(1, 1, 1), true);
        let mut b = small_tree();
        b.update_node(VoxelKey::new(2, 2, 2), true); // same low octant
        let mut merged = small_tree();
        merged.merge_disjoint_top_level(&a).unwrap();
        assert!(merged.merge_disjoint_top_level(&b).is_err());
    }

    #[test]
    fn merge_empty_is_noop() {
        let mut merged = small_tree();
        let empty = small_tree();
        merged.merge_disjoint_top_level(&empty).unwrap();
        assert!(merged.is_empty());
    }

    #[test]
    fn memory_usage_tracks_allocation_across_insert_prune_clear() {
        for layout in TreeLayout::ALL {
            let grid = VoxelGrid::new(1.0, 4).unwrap();
            let mut tree = OccupancyOcTree::with_layout(grid, OccupancyParams::default(), layout);
            assert_eq!(tree.memory_usage(), 0, "{layout}: empty tree owns nothing");

            // Insert with pruning off so the full octant stays expanded.
            tree.set_auto_prune(false);
            for x in 0..2u16 {
                for y in 0..2u16 {
                    for z in 0..2u16 {
                        for _ in 0..10 {
                            tree.update_node(VoxelKey::new(x, y, z), true);
                        }
                    }
                }
            }
            let grown = tree.memory_usage();
            assert!(grown > 0, "{layout}: inserts must grow the footprint");
            tree.check_invariants().unwrap();

            tree.prune();
            tree.check_invariants().unwrap();
            let pruned = tree.memory_usage();
            match layout {
                // The pointer tree returns pruned boxes and child arrays to
                // the allocator.
                TreeLayout::Pointer => {
                    assert!(
                        pruned < grown,
                        "pointer: prune must shrink ({pruned} >= {grown})"
                    )
                }
                // The arena keeps pruned blocks resident on its free-list —
                // that slack is deliberate (recycling) and must stay
                // counted. Free-list bookkeeping may add a few bytes but the
                // pool itself never shrinks.
                TreeLayout::Arena => {
                    assert!(
                        pruned >= grown,
                        "arena: prune keeps pool capacity ({pruned} < {grown})"
                    )
                }
            }

            tree.clear();
            assert_eq!(
                tree.memory_usage(),
                0,
                "{layout}: clear releases everything"
            );
        }
    }

    #[test]
    fn layouts_agree_on_maps_and_counters() {
        let grid = VoxelGrid::new(1.0, 4).unwrap();
        let mut pointer =
            OccupancyOcTree::with_layout(grid, OccupancyParams::default(), TreeLayout::Pointer);
        let mut arena =
            OccupancyOcTree::with_layout(grid, OccupancyParams::default(), TreeLayout::Arena);
        assert_eq!(pointer.layout(), TreeLayout::Pointer);
        assert_eq!(arena.layout(), TreeLayout::Arena);
        let keys = [
            VoxelKey::new(0, 0, 0),
            VoxelKey::new(1, 1, 1),
            VoxelKey::new(15, 15, 15),
            VoxelKey::new(7, 8, 9),
            VoxelKey::new(1, 1, 1),
        ];
        for (n, &k) in keys.iter().enumerate() {
            let a = pointer.update_node(k, n % 2 == 0);
            let b = arena.update_node(k, n % 2 == 0);
            assert_eq!(a, b);
        }
        assert_eq!(pointer.num_nodes(), arena.num_nodes());
        assert_eq!(pointer.num_leaves(), arena.num_leaves());
        let sp = pointer.stats().snapshot();
        let sa = arena.stats().snapshot();
        assert_eq!(sp.node_visits, sa.node_visits);
        assert_eq!(sp.nodes_created, sa.nodes_created);
        assert_eq!(sp.leaf_updates, sa.leaf_updates);
        for x in 0..16u16 {
            for y in 0..16u16 {
                let k = VoxelKey::new(x, y, (x + y) % 16);
                assert_eq!(pointer.search(k), arena.search(k), "{k}");
            }
        }
        pointer.check_invariants().unwrap();
        arena.check_invariants().unwrap();
    }

    #[test]
    fn manual_prune_after_lazy_updates() {
        let mut tree = small_tree();
        tree.set_auto_prune(false);
        for x in 0..2u16 {
            for y in 0..2u16 {
                for z in 0..2u16 {
                    for _ in 0..10 {
                        tree.update_node(VoxelKey::new(x, y, z), true);
                    }
                }
            }
        }
        let nodes_before = tree.num_nodes();
        tree.prune();
        assert!(tree.num_nodes() < nodes_before);
        assert_eq!(tree.is_occupied(VoxelKey::new(1, 0, 1)), Some(true));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Whatever sequence of observations is applied, search returns the
        /// same value as a flat reference map that applies the paper's
        /// update rule per voxel.
        #[test]
        fn prop_matches_flat_reference(
            ops in proptest::collection::vec(
                ((0u16..16, 0u16..16, 0u16..16), any::<bool>()),
                1..200
            )
        ) {
            use std::collections::HashMap;
            let mut tree = small_tree();
            let params = *tree.params();
            let mut reference: HashMap<VoxelKey, f32> = HashMap::new();
            for ((x, y, z), occ) in ops {
                let key = VoxelKey::new(x, y, z);
                let e = reference.entry(key).or_insert(params.threshold);
                *e = params.apply(*e, occ);
                tree.update_node(key, occ);
            }
            for (key, expected) in &reference {
                prop_assert_eq!(tree.search(*key), Some(*expected));
            }
        }

        /// Invariants hold after any interleaving of observe / add / set
        /// operations (with and without a final manual prune).
        #[test]
        fn prop_invariants_hold_under_mixed_ops(
            ops in proptest::collection::vec(
                ((0u16..16, 0u16..16, 0u16..16), 0u8..3, -3.0f32..3.0),
                1..150
            ),
            lazy in proptest::bool::ANY,
        ) {
            let mut tree = small_tree();
            tree.set_auto_prune(!lazy);
            for ((x, y, z), kind, value) in ops {
                let key = VoxelKey::new(x, y, z);
                match kind {
                    0 => {
                        tree.update_node(key, value > 0.0);
                    }
                    1 => {
                        tree.update_node_log_odds(key, value);
                    }
                    _ => {
                        tree.set_node_log_odds(key, value);
                    }
                }
            }
            tree.check_invariants().unwrap();
            tree.prune();
            tree.check_invariants().unwrap();
        }

        /// Leaves are disjoint and cover exactly the updated space.
        #[test]
        fn prop_leaves_partition(
            keys in proptest::collection::vec((0u16..16, 0u16..16, 0u16..16), 1..60)
        ) {
            let mut tree = small_tree();
            for &(x, y, z) in &keys {
                tree.update_node(VoxelKey::new(x, y, z), (x + y + z) % 2 == 0);
            }
            let leaves: Vec<LeafEntry> = tree.leaves().collect();
            // No two leaves overlap: compare Morton ranges.
            let mut ranges: Vec<(u64, u64)> = leaves
                .iter()
                .map(|l| {
                    let start = morton::encode(l.key);
                    let len = 1u64 << (3 * l.level as u32);
                    (start, start + len)
                })
                .collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlapping leaves");
            }
        }
    }
}
