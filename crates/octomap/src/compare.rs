//! Voxel-level comparison of occupancy maps.
//!
//! The paper's correctness requirement is *query consistency*: OctoCache
//! must answer every voxel query exactly as vanilla OctoMap would. This
//! module turns that requirement into a measurable quantity — a full
//! voxel-by-voxel diff of two trees — used by the integration tests and by
//! EXPERIMENTS.md to certify reproduced runs.

use std::collections::HashMap;

use octocache_geom::VoxelKey;

use crate::tree::OccupancyOcTree;

/// Outcome of comparing two occupancy maps voxel by voxel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MapDiff {
    /// Finest-level voxels known (non-unknown) in either map.
    pub known_voxels: u64,
    /// Voxels known in both maps with log-odds equal within tolerance.
    pub matching: u64,
    /// Voxels known in both maps but with differing values.
    pub value_mismatches: u64,
    /// Voxels known in exactly one of the maps.
    pub coverage_mismatches: u64,
    /// Voxels occupied in both maps.
    pub occupied_both: u64,
    /// Voxels occupied in exactly one map.
    pub occupied_one: u64,
    /// Largest absolute log-odds difference seen on commonly-known voxels.
    pub max_abs_diff: f32,
}

impl MapDiff {
    /// Fraction of known voxels whose values agree (1.0 = identical maps).
    pub fn agreement(&self) -> f64 {
        if self.known_voxels == 0 {
            1.0
        } else {
            self.matching as f64 / self.known_voxels as f64
        }
    }

    /// Intersection-over-union of the occupied sets.
    pub fn occupied_iou(&self) -> f64 {
        let union = self.occupied_both + self.occupied_one;
        if union == 0 {
            1.0
        } else {
            self.occupied_both as f64 / union as f64
        }
    }

    /// True when the maps are voxel-for-voxel identical within tolerance.
    pub fn is_identical(&self) -> bool {
        self.value_mismatches == 0 && self.coverage_mismatches == 0
    }
}

/// Expands a tree into per-voxel log-odds at the finest level.
///
/// Pruned cubes are expanded; intended for the modest map sizes of tests
/// and experiment validation, not for gigavoxel maps.
pub fn flatten(tree: &OccupancyOcTree) -> HashMap<VoxelKey, f32> {
    let mut out = HashMap::new();
    for leaf in tree.leaves() {
        let size = leaf.size_in_voxels() as u16;
        for dx in 0..size {
            for dy in 0..size {
                for dz in 0..size {
                    out.insert(
                        VoxelKey::new(leaf.key.x + dx, leaf.key.y + dy, leaf.key.z + dz),
                        leaf.log_odds,
                    );
                }
            }
        }
    }
    out
}

/// Compares two trees voxel by voxel with the given log-odds tolerance.
///
/// Both trees should share grid parameters; occupancy decisions use each
/// tree's own threshold.
pub fn diff(a: &OccupancyOcTree, b: &OccupancyOcTree, tolerance: f32) -> MapDiff {
    let fa = flatten(a);
    let fb = flatten(b);
    let mut d = MapDiff::default();
    for (key, &va) in &fa {
        match fb.get(key) {
            Some(&vb) => {
                d.known_voxels += 1;
                let delta = (va - vb).abs();
                d.max_abs_diff = d.max_abs_diff.max(delta);
                if delta <= tolerance {
                    d.matching += 1;
                } else {
                    d.value_mismatches += 1;
                }
                let oa = a.params().is_occupied(va);
                let ob = b.params().is_occupied(vb);
                match (oa, ob) {
                    (true, true) => d.occupied_both += 1,
                    (true, false) | (false, true) => d.occupied_one += 1,
                    _ => {}
                }
            }
            None => {
                d.known_voxels += 1;
                d.coverage_mismatches += 1;
                if a.params().is_occupied(va) {
                    d.occupied_one += 1;
                }
            }
        }
    }
    for (key, &vb) in &fb {
        if !fa.contains_key(key) {
            d.known_voxels += 1;
            d.coverage_mismatches += 1;
            if b.params().is_occupied(vb) {
                d.occupied_one += 1;
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert;
    use crate::occupancy::OccupancyParams;
    use octocache_geom::{Point3, VoxelGrid};

    fn tree_with_wall(extra_scan: bool) -> OccupancyOcTree {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let cloud: Vec<Point3> = (0..20)
            .map(|i| Point3::new(5.0, -2.0 + i as f64 * 0.2, 0.25))
            .collect();
        insert::insert_point_cloud(&mut tree, Point3::ZERO, &cloud, 20.0).unwrap();
        if extra_scan {
            insert::insert_point_cloud(&mut tree, Point3::new(0.0, 1.0, 0.0), &cloud, 20.0)
                .unwrap();
        }
        tree
    }

    #[test]
    fn identical_trees_diff_clean() {
        let a = tree_with_wall(false);
        let b = tree_with_wall(false);
        let d = diff(&a, &b, 1e-6);
        assert!(d.is_identical(), "{d:?}");
        assert_eq!(d.agreement(), 1.0);
        assert_eq!(d.occupied_iou(), 1.0);
        assert!(d.known_voxels > 0);
    }

    #[test]
    fn different_trees_report_mismatches() {
        let a = tree_with_wall(false);
        let b = tree_with_wall(true);
        let d = diff(&a, &b, 1e-6);
        assert!(!d.is_identical());
        assert!(d.agreement() < 1.0);
        assert!(d.value_mismatches + d.coverage_mismatches > 0);
        assert!(d.max_abs_diff > 0.0);
    }

    #[test]
    fn empty_trees_are_identical() {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        let a = OccupancyOcTree::new(grid, OccupancyParams::default());
        let b = OccupancyOcTree::new(grid, OccupancyParams::default());
        let d = diff(&a, &b, 1e-6);
        assert!(d.is_identical());
        assert_eq!(d.known_voxels, 0);
        assert_eq!(d.agreement(), 1.0);
    }

    #[test]
    fn flatten_expands_pruned_cubes() {
        let grid = VoxelGrid::new(1.0, 4).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        for x in 0..2u16 {
            for y in 0..2u16 {
                for z in 0..2u16 {
                    for _ in 0..10 {
                        tree.update_node(VoxelKey::new(x, y, z), true);
                    }
                }
            }
        }
        let flat = flatten(&tree);
        // The pruned cube must contribute all 8 voxels.
        for x in 0..2u16 {
            for y in 0..2u16 {
                for z in 0..2u16 {
                    assert!(flat.contains_key(&VoxelKey::new(x, y, z)));
                }
            }
        }
    }

    #[test]
    fn diff_is_symmetric_in_counts() {
        let a = tree_with_wall(false);
        let b = tree_with_wall(true);
        let d1 = diff(&a, &b, 1e-6);
        let d2 = diff(&b, &a, 1e-6);
        assert_eq!(d1.known_voxels, d2.known_voxels);
        assert_eq!(d1.coverage_mismatches, d2.coverage_mismatches);
        assert_eq!(d1.value_mismatches, d2.value_mismatches);
    }
}
