//! Integrity checksums shared by the serialisation formats and the
//! durability layer.
//!
//! Two independent sums are used by the v2 map footer ([`crate::io`]) and the
//! scan journal (`octocache::durable`):
//!
//! * [`crc32`] — the IEEE 802.3 CRC-32 over raw bytes, guarding a byte
//!   *payload* against torn writes and bit rot. Implemented from scratch
//!   (table-driven, reflected polynomial `0xEDB88320`) because the workspace
//!   vendors no compression/CRC crate.
//! * [`OccupancyOcTree::leaf_checksum`](crate::OccupancyOcTree::leaf_checksum)
//!   — an FNV-1a fold over the *decoded* leaf set `(key, level, log-odds)`,
//!   guarding semantic round-trip fidelity. It is storage-layout independent,
//!   so a map written from a pointer tree and re-read into an arena tree (or
//!   vice versa) keeps the same sum.

/// Streaming CRC-32 (IEEE) state.
///
/// ```
/// # use octocache_octomap::checksum::Crc32;
/// let mut c = Crc32::new();
/// c.update(b"123456789");
/// assert_eq!(c.finish(), 0xCBF4_3926); // the canonical check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

/// 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

impl Crc32 {
    /// Starts a fresh CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running sum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s = TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// Final CRC value (state is not consumed; more updates keep folding).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// One FNV-1a fold step over a 64-bit word (offset basis is supplied by the
/// caller; the standard 64-bit basis is `0xcbf2_9ce4_8422_2325`).
#[inline]
pub fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The universal CRC-32/IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty_and_zeroes() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(&[0u8]), 0xD202_EF8D);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1031).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "undetected flip at {i}.{bit}");
            }
        }
    }
}
