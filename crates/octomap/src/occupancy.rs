use serde::{Deserialize, Serialize};

/// Converts a probability in `(0, 1)` to its log-odds.
///
/// # Example
///
/// ```
/// # use octocache_octomap::prob_to_logodds;
/// assert_eq!(prob_to_logodds(0.5), 0.0);
/// assert!(prob_to_logodds(0.7) > 0.0);
/// ```
#[inline]
pub fn prob_to_logodds(p: f64) -> f32 {
    (p / (1.0 - p)).ln() as f32
}

/// Converts a log-odds value back to a probability in `(0, 1)`.
///
/// # Example
///
/// ```
/// # use octocache_octomap::{logodds_to_prob, prob_to_logodds};
/// let p = logodds_to_prob(prob_to_logodds(0.7));
/// assert!((p - 0.7).abs() < 1e-6);
/// ```
#[inline]
pub fn logodds_to_prob(l: f32) -> f64 {
    1.0 / (1.0 + (-l as f64).exp())
}

/// The occupancy sensor model: log-odds update deltas, clamping bounds and
/// the occupied/free decision threshold.
///
/// Terminology maps onto the paper's §2.2 as follows: `delta_occupied` /
/// `delta_free` are the per-update heuristics `δ_occupied` / `δ_free`;
/// `clamp_min` / `clamp_max` are `min_occ` / `max_occ`; `threshold` is `t`.
/// The defaults are reference OctoMap's: hit probability 0.7, miss
/// probability 0.4, clamping probabilities 0.12 / 0.97, threshold 0.5.
///
/// # Example
///
/// ```
/// # use octocache_octomap::OccupancyParams;
/// let params = OccupancyParams::default();
/// // One hit then one miss leaves the voxel net-occupied (0.85 - 0.41 > 0).
/// let l = params.apply(params.apply(0.0, true), false);
/// assert!(params.is_occupied(l));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyParams {
    /// Log-odds added on an occupied observation (`δ_occupied`, > 0).
    pub delta_occupied: f32,
    /// Log-odds subtracted on a free observation (`δ_free`, stored > 0).
    pub delta_free: f32,
    /// Lower clamping bound (`min_occ`).
    pub clamp_min: f32,
    /// Upper clamping bound (`max_occ`).
    pub clamp_max: f32,
    /// Occupancy decision threshold (`t`): log-odds ≥ `threshold` is occupied.
    pub threshold: f32,
}

impl Default for OccupancyParams {
    fn default() -> Self {
        OccupancyParams {
            delta_occupied: prob_to_logodds(0.7), // ≈ +0.85
            delta_free: -prob_to_logodds(0.4),    // ≈ +0.41 (subtracted)
            clamp_min: prob_to_logodds(0.12),     // ≈ -2.0
            clamp_max: prob_to_logodds(0.97),     // ≈ +3.5
            threshold: prob_to_logodds(0.5),      // 0.0
        }
    }
}

impl OccupancyParams {
    /// Validates internal consistency (positive deltas, ordered clamps,
    /// threshold within the clamp range). Useful when constructing params
    /// from configuration files.
    pub fn validate(&self) -> Result<(), String> {
        if self.delta_occupied.is_nan() || self.delta_occupied <= 0.0 {
            return Err(format!(
                "delta_occupied must be > 0, got {}",
                self.delta_occupied
            ));
        }
        if self.delta_free.is_nan() || self.delta_free <= 0.0 {
            return Err(format!("delta_free must be > 0, got {}", self.delta_free));
        }
        if self.clamp_min.is_nan() || self.clamp_max.is_nan() || self.clamp_min >= self.clamp_max {
            return Err(format!(
                "clamp_min {} must be below clamp_max {}",
                self.clamp_min, self.clamp_max
            ));
        }
        if self.threshold < self.clamp_min || self.threshold > self.clamp_max {
            return Err(format!(
                "threshold {} outside clamp range [{}, {}]",
                self.threshold, self.clamp_min, self.clamp_max
            ));
        }
        Ok(())
    }

    /// Applies one observation to a log-odds value, clamping to the bounds.
    ///
    /// This is the per-voxel update rule from the paper's §2.2:
    /// `min(l + δ_occupied, max_occ)` for occupied observations,
    /// `max(l − δ_free, min_occ)` for free ones.
    #[inline]
    pub fn apply(&self, log_odds: f32, occupied: bool) -> f32 {
        if occupied {
            (log_odds + self.delta_occupied).min(self.clamp_max)
        } else {
            (log_odds - self.delta_free).max(self.clamp_min)
        }
    }

    /// The signed delta for one observation (before clamping).
    #[inline]
    pub fn delta(&self, occupied: bool) -> f32 {
        if occupied {
            self.delta_occupied
        } else {
            -self.delta_free
        }
    }

    /// Clamps an arbitrary log-odds value into the allowed range.
    #[inline]
    pub fn clamp(&self, log_odds: f32) -> f32 {
        log_odds.clamp(self.clamp_min, self.clamp_max)
    }

    /// True when a log-odds value crosses the occupancy threshold.
    #[inline]
    pub fn is_occupied(&self, log_odds: f32) -> bool {
        log_odds >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_match_octomap_reference() {
        let p = OccupancyParams::default();
        assert!((p.delta_occupied - 0.8473).abs() < 1e-3);
        assert!((p.delta_free - 0.4055).abs() < 1e-3);
        assert!((p.clamp_min + 1.9924).abs() < 1e-3);
        assert!((p.clamp_max - 3.4761).abs() < 1e-3);
        assert_eq!(p.threshold, 0.0);
        p.validate().unwrap();
    }

    #[test]
    fn prob_logodds_roundtrip() {
        for p in [0.12, 0.3, 0.5, 0.7, 0.97] {
            let back = logodds_to_prob(prob_to_logodds(p));
            assert!((back - p).abs() < 1e-6, "{p} -> {back}");
        }
    }

    #[test]
    fn apply_clamps_at_bounds() {
        let p = OccupancyParams::default();
        let mut l = 0.0f32;
        for _ in 0..100 {
            l = p.apply(l, true);
        }
        assert_eq!(l, p.clamp_max);
        for _ in 0..100 {
            l = p.apply(l, false);
        }
        assert_eq!(l, p.clamp_min);
    }

    #[test]
    fn threshold_decision() {
        let p = OccupancyParams::default();
        assert!(p.is_occupied(0.0));
        assert!(p.is_occupied(1.0));
        assert!(!p.is_occupied(-0.01));
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let good = OccupancyParams::default();
        assert!(OccupancyParams {
            delta_occupied: 0.0,
            ..good
        }
        .validate()
        .is_err());
        assert!(OccupancyParams {
            delta_free: -0.1,
            ..good
        }
        .validate()
        .is_err());
        assert!(OccupancyParams {
            clamp_min: 5.0,
            ..good
        }
        .validate()
        .is_err());
        assert!(OccupancyParams {
            threshold: 100.0,
            ..good
        }
        .validate()
        .is_err());
    }

    #[test]
    fn delta_signs() {
        let p = OccupancyParams::default();
        assert!(p.delta(true) > 0.0);
        assert!(p.delta(false) < 0.0);
    }

    proptest! {
        #[test]
        fn prop_apply_stays_in_clamp_range(
            l in -5.0f32..5.0,
            occupied in any::<bool>(),
        ) {
            let p = OccupancyParams::default();
            let l = p.clamp(l);
            let next = p.apply(l, occupied);
            prop_assert!(next >= p.clamp_min && next <= p.clamp_max);
        }

        #[test]
        fn prop_apply_monotone_in_observation(l in -5.0f32..5.0) {
            // Monotonicity holds for values inside the clamp range (values
            // outside it are first pulled back to the bounds).
            let p = OccupancyParams::default();
            let l = p.clamp(l);
            prop_assert!(p.apply(l, true) >= l);
            prop_assert!(p.apply(l, false) <= l);
        }

        #[test]
        fn prop_logodds_prob_monotone(a in -5.0f32..5.0, b in -5.0f32..5.0) {
            if a < b {
                prop_assert!(logodds_to_prob(a) < logodds_to_prob(b));
            }
        }
    }
}
