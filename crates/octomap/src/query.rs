//! Extended query operations on the occupancy octree: ray casting,
//! multi-resolution lookups and bounding-box scans.
//!
//! These mirror reference OctoMap's planner-facing API (`castRay`,
//! `getTreeDepth`-limited search, leaf bounding-box iterators): the
//! navigation stack of the paper's Figure 3 consumes exactly these calls
//! during the planning stage.

use octocache_geom::{morton, ray, Aabb, GeomError, Point3, VoxelKey};

use crate::tree::{LeafEntry, OccupancyOcTree};

/// Result of a [`cast_ray`] query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RayCastResult {
    /// The ray reached an occupied voxel; carries its key and the metric
    /// distance from the origin to that voxel's center.
    Hit {
        /// The first occupied voxel along the ray.
        key: VoxelKey,
        /// Distance from the ray origin to the voxel center (metres).
        distance: f64,
    },
    /// The ray traversed only free/unknown space up to `max_range`.
    Miss,
    /// The ray left known space and `ignore_unknown` was false; carries the
    /// first unknown voxel.
    Unknown {
        /// The first voxel with no occupancy information.
        key: VoxelKey,
    },
}

/// Casts a ray from `origin` in `direction` until it hits an occupied
/// voxel, reaches `max_range`, or (unless `ignore_unknown`) enters unknown
/// space — reference OctoMap's `castRay`.
///
/// `direction` need not be normalised.
///
/// Two boundary rules match reference OctoMap:
///
/// - an origin inside an occupied voxel reports an immediate
///   [`RayCastResult::Hit`] at distance zero, rather than sailing through
///   its own voxel;
/// - a voxel only counts (as hit or unknown) while its *center* lies within
///   `max_range`. In particular a ray terminating exactly on a voxel face
///   does not report the voxel behind that face — it only ever touches the
///   boundary, never enters — so the cast resolves to
///   [`RayCastResult::Miss`].
///
/// # Errors
///
/// Returns [`GeomError`] when the origin is outside the map or the
/// direction is degenerate.
pub fn cast_ray(
    tree: &OccupancyOcTree,
    origin: Point3,
    direction: Point3,
    max_range: f64,
    ignore_unknown: bool,
) -> Result<RayCastResult, GeomError> {
    let dir = direction.normalized().ok_or(GeomError::DegenerateRay)?;
    let grid = *tree.grid();
    let end = grid.clamp_point(origin + dir * max_range);
    let keys = ray::trace(&grid, origin, end)?;
    let origin_key = grid.key_of(origin)?;
    // Reference OctoMap checks the starting voxel before stepping: a sensor
    // inside an occupied voxel is already in collision.
    if let Some(l) = tree.search(origin_key) {
        if tree.params().is_occupied(l) {
            return Ok(RayCastResult::Hit {
                key: origin_key,
                distance: 0.0,
            });
        }
    }
    // Include the endpoint voxel itself in the scan; the max-range cut
    // below rejects it again when the ray merely grazes its near face.
    let end_key = grid.key_of(end)?;
    let max_range_sq = max_range * max_range;
    for key in keys.iter().copied().chain(std::iter::once(end_key)) {
        if key == origin_key {
            continue;
        }
        match tree.search(key) {
            Some(l) if tree.params().is_occupied(l) => {
                let center = grid.center_of(key);
                if origin.distance_squared(center) > max_range_sq {
                    return Ok(RayCastResult::Miss);
                }
                return Ok(RayCastResult::Hit {
                    key,
                    distance: origin.distance(center),
                });
            }
            Some(_) => {}
            None => {
                if !ignore_unknown {
                    if origin.distance_squared(grid.center_of(key)) > max_range_sq {
                        return Ok(RayCastResult::Miss);
                    }
                    return Ok(RayCastResult::Unknown { key });
                }
            }
        }
    }
    Ok(RayCastResult::Miss)
}

/// Traversal statistics from one [`batch_search`] call.
///
/// `nodes_reused + nodes_visited` is the total number of root-to-leaf path
/// nodes the batch needed; a one-at-a-time loop over `tree.search` would
/// have visited all of them. The reuse fraction is the read-path analogue
/// of the cache's locality theorem (§4.3): Morton-adjacent queries share
/// long root prefixes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of lookups answered.
    pub queries: u64,
    /// Path nodes freshly descended into.
    pub nodes_visited: u64,
    /// Path nodes reused from the previous (Morton-adjacent) query's
    /// descent instead of being re-fetched from the root.
    pub nodes_reused: u64,
}

impl BatchStats {
    /// Fraction of path nodes served from the shared prefix, in `[0, 1]`.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.nodes_visited + self.nodes_reused;
        if total == 0 {
            0.0
        } else {
            self.nodes_reused as f64 / total as f64
        }
    }

    /// Accumulates another batch's counters into `self`.
    pub fn merge(&mut self, other: &BatchStats) {
        self.queries += other.queries;
        self.nodes_visited += other.nodes_visited;
        self.nodes_reused += other.nodes_reused;
    }
}

/// Looks up the log-odds of every key in `keys`, reusing root-to-leaf
/// traversal prefixes across Morton-adjacent queries.
///
/// The queries are answered in ascending Morton order internally — two
/// consecutive keys in that order share every ancestor at or above their
/// common-ancestor level, so the descent restarts from the deepest shared
/// path node instead of the root — but results are returned in **input
/// order**: `out[i]` is exactly `tree.search(keys[i])`. Duplicate keys cost
/// a single descent.
pub fn batch_search(tree: &OccupancyOcTree, keys: &[VoxelKey]) -> (Vec<Option<f32>>, BatchStats) {
    let mut values: Vec<Option<f32>> = vec![None; keys.len()];
    let mut stats = BatchStats {
        queries: keys.len() as u64,
        ..BatchStats::default()
    };
    tree.stats().count_queries(keys.len() as u64);
    let Some(root) = tree.root_ref() else {
        return (values, stats);
    };
    let depth = tree.grid().depth();
    let order = morton::sort_index(keys);
    // path[i] is the node at level `depth - i` along the previous key's
    // descent; path[0] is the root.
    let mut path = Vec::with_capacity(depth as usize + 1);
    let mut prev: Option<VoxelKey> = None;
    for &qi in &order {
        let key = keys[qi as usize];
        // Nodes at levels depth ..= common_ancestor_level are identical for
        // both keys: keep that prefix of the previous path.
        let keep = match prev {
            Some(p) if p == key => path.len(),
            Some(p) => {
                let common = key.common_ancestor_level(p, depth);
                path.len().min((depth - common) as usize + 1)
            }
            None => 0,
        };
        path.truncate(keep);
        stats.nodes_reused += keep as u64;
        if path.is_empty() {
            path.push(root);
            stats.nodes_visited += 1;
            tree.stats().count_visit();
        }
        let mut node = *path.last().expect("path holds at least the root");
        let mut level = depth - (path.len() as u8 - 1);
        // Same stopping rules as `OccupancyOcTree::search`: a childless
        // node covers the key as a pruned aggregate; a missing child means
        // unknown space.
        values[qi as usize] = loop {
            if level == 0 || !node.has_children() {
                break Some(node.log_odds());
            }
            match node.child(key.child_index(level - 1)) {
                Some(c) => {
                    path.push(c);
                    stats.nodes_visited += 1;
                    tree.stats().count_visit();
                    node = c;
                    level -= 1;
                }
                None => break None,
            }
        };
        prev = Some(key);
    }
    (values, stats)
}

/// Looks up the occupancy at `key` truncated to `level` levels above the
/// leaves — a multi-resolution query against the pruned tree structure
/// (reference OctoMap's depth-limited `search`).
///
/// Returns the log-odds of the deepest node at or above `level` covering
/// the key, or `None` in unknown space. At `level = 0` this equals
/// [`OccupancyOcTree::search`].
pub fn search_at_level(tree: &OccupancyOcTree, key: VoxelKey, level: u8) -> Option<f32> {
    let depth = tree.grid().depth();
    let level = level.min(depth);
    // Walk leaves() would be O(n); instead re-descend manually.
    let mut node = tree.root_ref()?;
    let mut current = depth;
    while current > level {
        if !node.has_children() {
            return Some(node.log_odds());
        }
        node = node.child(key.child_index(current - 1))?;
        current -= 1;
    }
    Some(node.log_odds())
}

/// Collects the leaves whose cubes intersect the world-space box — the
/// bounding-box scan planners use for local collision maps (reference
/// OctoMap's `begin_leafs_bbx`).
///
/// # Errors
///
/// Returns [`GeomError`] when the box lies outside the mapped region.
pub fn leaves_in_box(tree: &OccupancyOcTree, bounds: &Aabb) -> Result<Vec<LeafEntry>, GeomError> {
    let grid = tree.grid();
    let min_key = grid.key_of(grid.clamp_point(bounds.min))?;
    let max_key = grid.key_of(grid.clamp_point(bounds.max))?;
    Ok(tree.leaves_in_key_box(min_key, max_key).collect())
}

/// True when any voxel overlapping `bounds` is occupied — the all-at-once
/// collision check for a robot's bounding volume.
///
/// # Errors
///
/// See [`leaves_in_box`].
pub fn any_occupied_in_box(tree: &OccupancyOcTree, bounds: &Aabb) -> Result<bool, GeomError> {
    Ok(leaves_in_box(tree, bounds)?
        .iter()
        .any(|leaf| tree.params().is_occupied(leaf.log_odds)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert;
    use crate::occupancy::OccupancyParams;
    use octocache_geom::VoxelGrid;

    /// A map with a wall plane at x = 5 spanning y,z in [-2, 2].
    fn walled_tree() -> OccupancyOcTree {
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let cloud: Vec<Point3> = (-8..=8)
            .flat_map(|y| (-8..=8).map(move |z| Point3::new(5.0, y as f64 * 0.25, z as f64 * 0.25)))
            .collect();
        for _ in 0..2 {
            insert::insert_point_cloud(&mut tree, Point3::ZERO, &cloud, 20.0).unwrap();
        }
        tree
    }

    #[test]
    fn cast_ray_hits_wall() {
        let tree = walled_tree();
        let result = cast_ray(&tree, Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 20.0, true).unwrap();
        match result {
            RayCastResult::Hit { distance, key } => {
                assert!((distance - 5.0).abs() < 0.5, "distance {distance}");
                assert_eq!(tree.is_occupied(key), Some(true));
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn cast_ray_miss_within_free_space() {
        let tree = walled_tree();
        // Cast away from the wall but only through scanned free space.
        let result = cast_ray(
            &tree,
            Point3::ZERO,
            Point3::new(1.0, 0.0, 0.0),
            2.0, // stops before the wall
            true,
        )
        .unwrap();
        assert_eq!(result, RayCastResult::Miss);
    }

    #[test]
    fn cast_ray_reports_unknown() {
        let tree = walled_tree();
        // Cast backwards into never-scanned space.
        let result = cast_ray(
            &tree,
            Point3::ZERO,
            Point3::new(-1.0, 0.0, 0.0),
            10.0,
            false,
        )
        .unwrap();
        assert!(matches!(result, RayCastResult::Unknown { .. }));
        // With ignore_unknown it sails through.
        let result =
            cast_ray(&tree, Point3::ZERO, Point3::new(-1.0, 0.0, 0.0), 10.0, true).unwrap();
        assert_eq!(result, RayCastResult::Miss);
    }

    #[test]
    fn cast_ray_terminating_exactly_on_voxel_face_misses() {
        // Regression: the wall's near faces sit at x = 4.875 (voxel centers
        // at 5.0, resolution 0.25). A ray from the origin whose max range
        // ends *exactly* on that face touches the occupied voxel's boundary
        // but never enters it: the cast must be a Miss, not a Hit at
        // distance > max_range.
        let tree = walled_tree();
        // Voxel-center-aligned origin so distances along the ray are exact:
        // the wall voxel's center is (5.125, 0.125, 0.125), its near face at
        // x = 5.0, hence 4.875 m from the origin.
        let origin = Point3::new(0.125, 0.125, 0.125);
        let to_face = 4.875;
        let result = cast_ray(&tree, origin, Point3::new(1.0, 0.0, 0.0), to_face, true).unwrap();
        assert_eq!(result, RayCastResult::Miss);
        // One voxel further and the wall center comes within range: a Hit,
        // with the reported distance within max_range.
        let result = cast_ray(
            &tree,
            origin,
            Point3::new(1.0, 0.0, 0.0),
            to_face + 0.25,
            true,
        )
        .unwrap();
        match result {
            RayCastResult::Hit { distance, .. } => {
                assert!((distance - 5.0).abs() < 1e-9, "distance {distance}");
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn cast_ray_unknown_beyond_max_range_is_miss() {
        // The unknown voxel behind a face-exact endpoint is equally out of
        // range: with ignore_unknown = false the cast still misses.
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        // Known free corridor along +x up to x = 2.0 (centers 0.125..1.875).
        for i in 0..8 {
            let key = grid
                .key_of(Point3::new(0.125 + i as f64 * 0.25, 0.125, 0.125))
                .unwrap();
            tree.update_node(key, false);
        }
        let origin = Point3::new(0.125, 0.125, 0.125);
        // Max range ends exactly on the last known voxel's far face.
        let result = cast_ray(&tree, origin, Point3::new(1.0, 0.0, 0.0), 1.875, false).unwrap();
        assert_eq!(result, RayCastResult::Miss);
        // A slightly longer range reaches the unknown voxel's center.
        let result = cast_ray(&tree, origin, Point3::new(1.0, 0.0, 0.0), 2.125, false).unwrap();
        assert!(matches!(result, RayCastResult::Unknown { .. }));
    }

    #[test]
    fn cast_ray_origin_inside_occupied_voxel_hits_at_zero() {
        // Regression: a sensor standing inside an occupied voxel is already
        // in collision — reference OctoMap reports the starting voxel
        // immediately instead of skipping it.
        let tree = walled_tree();
        let origin = Point3::new(5.0, 0.0, 0.0); // inside the wall
        let origin_key = tree.grid().key_of(origin).unwrap();
        assert_eq!(tree.is_occupied(origin_key), Some(true), "test setup");
        for dir in [Point3::new(1.0, 0.0, 0.0), Point3::new(-1.0, 0.3, 0.0)] {
            let result = cast_ray(&tree, origin, dir, 10.0, true).unwrap();
            assert_eq!(
                result,
                RayCastResult::Hit {
                    key: origin_key,
                    distance: 0.0
                },
                "direction {dir}"
            );
        }
    }

    #[test]
    fn cast_ray_rejects_degenerate_direction() {
        let tree = walled_tree();
        assert!(matches!(
            cast_ray(&tree, Point3::ZERO, Point3::ZERO, 10.0, true),
            Err(GeomError::DegenerateRay)
        ));
    }

    #[test]
    fn batch_search_matches_single_lookups() {
        let tree = walled_tree();
        let grid = *tree.grid();
        // A mix of occupied wall voxels, known-free corridor voxels,
        // unknown voxels and duplicates, in deliberately non-Morton order.
        let mut keys: Vec<VoxelKey> = Vec::new();
        for y in [-1.0, 0.0, 1.5] {
            keys.push(grid.key_of(Point3::new(5.0, y, 0.0)).unwrap());
            keys.push(grid.key_of(Point3::new(2.0, y, 0.0)).unwrap());
            keys.push(grid.key_of(Point3::new(-7.0, y, 3.0)).unwrap());
        }
        keys.push(keys[0]); // duplicate
        let (values, stats) = batch_search(&tree, &keys);
        assert_eq!(values.len(), keys.len());
        for (i, key) in keys.iter().enumerate() {
            let single = tree.search(*key);
            assert_eq!(
                values[i].map(f32::to_bits),
                single.map(f32::to_bits),
                "key {key} at index {i}"
            );
        }
        assert_eq!(stats.queries, keys.len() as u64);
        assert!(stats.nodes_reused > 0, "adjacent queries share no prefix?");
        assert!(stats.reuse_fraction() > 0.0 && stats.reuse_fraction() < 1.0);
    }

    #[test]
    fn batch_search_empty_and_empty_tree() {
        let tree = walled_tree();
        let (values, stats) = batch_search(&tree, &[]);
        assert!(values.is_empty());
        assert_eq!(stats, BatchStats::default());

        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let empty = OccupancyOcTree::new(grid, OccupancyParams::default());
        let keys = [VoxelKey::new(1, 2, 3), VoxelKey::new(7, 7, 7)];
        let (values, stats) = batch_search(&empty, &keys);
        assert_eq!(values, vec![None, None]);
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.nodes_visited + stats.nodes_reused, 0);
    }

    #[test]
    fn batch_search_duplicates_reuse_full_path() {
        let tree = walled_tree();
        let key = tree.grid().key_of(Point3::new(5.0, 0.0, 0.0)).unwrap();
        let keys = vec![key; 8];
        let (values, stats) = batch_search(&tree, &keys);
        assert!(values.iter().all(|v| *v == values[0] && v.is_some()));
        // One real descent; the 7 duplicates reuse the whole path.
        let (single, one_stats) = batch_search(&tree, &[key]);
        assert_eq!(single[0], values[0]);
        assert_eq!(stats.nodes_visited, one_stats.nodes_visited);
        assert_eq!(stats.nodes_reused, 7 * one_stats.nodes_visited);
    }

    #[test]
    fn search_at_level_zero_matches_search() {
        let tree = walled_tree();
        let key = tree.grid().key_of(Point3::new(5.0, 0.0, 0.0)).unwrap();
        assert_eq!(search_at_level(&tree, key, 0), tree.search(key));
    }

    #[test]
    fn search_at_level_aggregates_upward() {
        let tree = walled_tree();
        let key = tree.grid().key_of(Point3::new(5.0, 0.0, 0.0)).unwrap();
        // The inner node covering the wall voxel holds the max of its
        // children, so the coarse lookup is also occupied.
        let coarse = search_at_level(&tree, key, 3).unwrap();
        assert!(tree.params().is_occupied(coarse));
        // Root level equals the root value.
        let root = search_at_level(&tree, key, tree.grid().depth()).unwrap();
        assert_eq!(root, tree.root_log_odds().unwrap());
    }

    #[test]
    fn search_at_level_unknown_space() {
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        assert_eq!(search_at_level(&tree, VoxelKey::new(1, 1, 1), 2), None);
    }

    #[test]
    fn leaves_in_box_finds_wall_only() {
        let tree = walled_tree();
        // A box tight around part of the wall.
        let wall_box = Aabb::new(Point3::new(4.8, -1.0, -1.0), Point3::new(5.4, 1.0, 1.0));
        let leaves = leaves_in_box(&tree, &wall_box).unwrap();
        assert!(!leaves.is_empty());
        assert!(leaves.iter().any(|l| tree.params().is_occupied(l.log_odds)));

        // A box in free space between origin and wall.
        let free_box = Aabb::new(Point3::new(1.0, -0.5, -0.5), Point3::new(2.0, 0.5, 0.5));
        let free_leaves = leaves_in_box(&tree, &free_box).unwrap();
        assert!(free_leaves
            .iter()
            .all(|l| !tree.params().is_occupied(l.log_odds)));
    }

    #[test]
    fn any_occupied_in_box_collision_check() {
        let tree = walled_tree();
        let hit = Aabb::new(Point3::new(4.5, -0.5, -0.5), Point3::new(5.5, 0.5, 0.5));
        let free = Aabb::new(Point3::new(1.0, -0.5, -0.5), Point3::new(2.0, 0.5, 0.5));
        assert!(any_occupied_in_box(&tree, &hit).unwrap());
        assert!(!any_occupied_in_box(&tree, &free).unwrap());
    }

    #[test]
    fn box_descent_matches_full_scan_filter() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let tree = walled_tree();
        let mut runner = TestRunner::default();
        runner
            .run(
                &(
                    (32700u16..32850, 32700u16..32850, 32700u16..32850),
                    (1u16..60, 1u16..60, 1u16..60),
                ),
                |((x, y, z), (dx, dy, dz))| {
                    let min = VoxelKey::new(x, y, z);
                    let max = VoxelKey::new(x + dx, y + dy, z + dz);
                    let mut fast: Vec<_> = tree
                        .leaves_in_key_box(min, max)
                        .map(|l| (l.key, l.level))
                        .collect();
                    let mut slow: Vec<_> = tree
                        .leaves()
                        .filter(|leaf| {
                            let size = leaf.size_in_voxels();
                            let inside = |lo: u16, v: u16, hi: u16| {
                                (v as u32) <= hi as u32 && v as u32 + size > lo as u32
                            };
                            inside(min.x, leaf.key.x, max.x)
                                && inside(min.y, leaf.key.y, max.y)
                                && inside(min.z, leaf.key.z, max.z)
                        })
                        .map(|l| (l.key, l.level))
                        .collect();
                    fast.sort();
                    slow.sort();
                    prop_assert_eq!(fast, slow);
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn leaves_in_box_covers_pruned_cubes() {
        // Build a pruned occupied cube and query a box inside it: the
        // covering pruned leaf must be reported.
        let grid = VoxelGrid::new(1.0, 4).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        for x in 8..10u16 {
            for y in 8..10u16 {
                for z in 8..10u16 {
                    for _ in 0..10 {
                        tree.update_node(VoxelKey::new(x, y, z), true);
                    }
                }
            }
        }
        let b = Aabb::new(Point3::new(0.2, 0.2, 0.2), Point3::new(0.8, 0.8, 0.8));
        let leaves = leaves_in_box(&tree, &b).unwrap();
        assert_eq!(leaves.len(), 1);
        assert!(leaves[0].level >= 1, "expected a pruned cube");
    }
}
