//! Extended query operations on the occupancy octree: ray casting,
//! multi-resolution lookups and bounding-box scans.
//!
//! These mirror reference OctoMap's planner-facing API (`castRay`,
//! `getTreeDepth`-limited search, leaf bounding-box iterators): the
//! navigation stack of the paper's Figure 3 consumes exactly these calls
//! during the planning stage.

use octocache_geom::{ray, Aabb, GeomError, Point3, VoxelKey};

use crate::tree::{LeafEntry, OccupancyOcTree};

/// Result of a [`cast_ray`] query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RayCastResult {
    /// The ray reached an occupied voxel; carries its key and the metric
    /// distance from the origin to that voxel's center.
    Hit {
        /// The first occupied voxel along the ray.
        key: VoxelKey,
        /// Distance from the ray origin to the voxel center (metres).
        distance: f64,
    },
    /// The ray traversed only free/unknown space up to `max_range`.
    Miss,
    /// The ray left known space and `ignore_unknown` was false; carries the
    /// first unknown voxel.
    Unknown {
        /// The first voxel with no occupancy information.
        key: VoxelKey,
    },
}

/// Casts a ray from `origin` in `direction` until it hits an occupied
/// voxel, reaches `max_range`, or (unless `ignore_unknown`) enters unknown
/// space — reference OctoMap's `castRay`.
///
/// `direction` need not be normalised.
///
/// # Errors
///
/// Returns [`GeomError`] when the origin is outside the map or the
/// direction is degenerate.
pub fn cast_ray(
    tree: &OccupancyOcTree,
    origin: Point3,
    direction: Point3,
    max_range: f64,
    ignore_unknown: bool,
) -> Result<RayCastResult, GeomError> {
    let dir = direction.normalized().ok_or(GeomError::DegenerateRay)?;
    let grid = *tree.grid();
    let end = grid.clamp_point(origin + dir * max_range);
    let keys = ray::trace(&grid, origin, end)?;
    let origin_key = grid.key_of(origin)?;
    // Include the endpoint voxel itself in the scan.
    let end_key = grid.key_of(end)?;
    for key in keys.iter().copied().chain(std::iter::once(end_key)) {
        if key == origin_key {
            continue;
        }
        match tree.search(key) {
            Some(l) if tree.params().is_occupied(l) => {
                return Ok(RayCastResult::Hit {
                    key,
                    distance: origin.distance(grid.center_of(key)),
                });
            }
            Some(_) => {}
            None => {
                if !ignore_unknown {
                    return Ok(RayCastResult::Unknown { key });
                }
            }
        }
    }
    Ok(RayCastResult::Miss)
}

/// Looks up the occupancy at `key` truncated to `level` levels above the
/// leaves — a multi-resolution query against the pruned tree structure
/// (reference OctoMap's depth-limited `search`).
///
/// Returns the log-odds of the deepest node at or above `level` covering
/// the key, or `None` in unknown space. At `level = 0` this equals
/// [`OccupancyOcTree::search`].
pub fn search_at_level(tree: &OccupancyOcTree, key: VoxelKey, level: u8) -> Option<f32> {
    let depth = tree.grid().depth();
    let level = level.min(depth);
    // Walk leaves() would be O(n); instead re-descend manually.
    let mut node = tree.root_ref()?;
    let mut current = depth;
    while current > level {
        if !node.has_children() {
            return Some(node.log_odds());
        }
        node = node.child(key.child_index(current - 1))?;
        current -= 1;
    }
    Some(node.log_odds())
}

/// Collects the leaves whose cubes intersect the world-space box — the
/// bounding-box scan planners use for local collision maps (reference
/// OctoMap's `begin_leafs_bbx`).
///
/// # Errors
///
/// Returns [`GeomError`] when the box lies outside the mapped region.
pub fn leaves_in_box(tree: &OccupancyOcTree, bounds: &Aabb) -> Result<Vec<LeafEntry>, GeomError> {
    let grid = tree.grid();
    let min_key = grid.key_of(grid.clamp_point(bounds.min))?;
    let max_key = grid.key_of(grid.clamp_point(bounds.max))?;
    Ok(tree.leaves_in_key_box(min_key, max_key).collect())
}

/// True when any voxel overlapping `bounds` is occupied — the all-at-once
/// collision check for a robot's bounding volume.
///
/// # Errors
///
/// See [`leaves_in_box`].
pub fn any_occupied_in_box(tree: &OccupancyOcTree, bounds: &Aabb) -> Result<bool, GeomError> {
    Ok(leaves_in_box(tree, bounds)?
        .iter()
        .any(|leaf| tree.params().is_occupied(leaf.log_odds)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert;
    use crate::occupancy::OccupancyParams;
    use octocache_geom::VoxelGrid;

    /// A map with a wall plane at x = 5 spanning y,z in [-2, 2].
    fn walled_tree() -> OccupancyOcTree {
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let cloud: Vec<Point3> = (-8..=8)
            .flat_map(|y| (-8..=8).map(move |z| Point3::new(5.0, y as f64 * 0.25, z as f64 * 0.25)))
            .collect();
        for _ in 0..2 {
            insert::insert_point_cloud(&mut tree, Point3::ZERO, &cloud, 20.0).unwrap();
        }
        tree
    }

    #[test]
    fn cast_ray_hits_wall() {
        let tree = walled_tree();
        let result = cast_ray(&tree, Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 20.0, true).unwrap();
        match result {
            RayCastResult::Hit { distance, key } => {
                assert!((distance - 5.0).abs() < 0.5, "distance {distance}");
                assert_eq!(tree.is_occupied(key), Some(true));
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn cast_ray_miss_within_free_space() {
        let tree = walled_tree();
        // Cast away from the wall but only through scanned free space.
        let result = cast_ray(
            &tree,
            Point3::ZERO,
            Point3::new(1.0, 0.0, 0.0),
            2.0, // stops before the wall
            true,
        )
        .unwrap();
        assert_eq!(result, RayCastResult::Miss);
    }

    #[test]
    fn cast_ray_reports_unknown() {
        let tree = walled_tree();
        // Cast backwards into never-scanned space.
        let result = cast_ray(
            &tree,
            Point3::ZERO,
            Point3::new(-1.0, 0.0, 0.0),
            10.0,
            false,
        )
        .unwrap();
        assert!(matches!(result, RayCastResult::Unknown { .. }));
        // With ignore_unknown it sails through.
        let result =
            cast_ray(&tree, Point3::ZERO, Point3::new(-1.0, 0.0, 0.0), 10.0, true).unwrap();
        assert_eq!(result, RayCastResult::Miss);
    }

    #[test]
    fn cast_ray_rejects_degenerate_direction() {
        let tree = walled_tree();
        assert!(matches!(
            cast_ray(&tree, Point3::ZERO, Point3::ZERO, 10.0, true),
            Err(GeomError::DegenerateRay)
        ));
    }

    #[test]
    fn search_at_level_zero_matches_search() {
        let tree = walled_tree();
        let key = tree.grid().key_of(Point3::new(5.0, 0.0, 0.0)).unwrap();
        assert_eq!(search_at_level(&tree, key, 0), tree.search(key));
    }

    #[test]
    fn search_at_level_aggregates_upward() {
        let tree = walled_tree();
        let key = tree.grid().key_of(Point3::new(5.0, 0.0, 0.0)).unwrap();
        // The inner node covering the wall voxel holds the max of its
        // children, so the coarse lookup is also occupied.
        let coarse = search_at_level(&tree, key, 3).unwrap();
        assert!(tree.params().is_occupied(coarse));
        // Root level equals the root value.
        let root = search_at_level(&tree, key, tree.grid().depth()).unwrap();
        assert_eq!(root, tree.root_log_odds().unwrap());
    }

    #[test]
    fn search_at_level_unknown_space() {
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        assert_eq!(search_at_level(&tree, VoxelKey::new(1, 1, 1), 2), None);
    }

    #[test]
    fn leaves_in_box_finds_wall_only() {
        let tree = walled_tree();
        // A box tight around part of the wall.
        let wall_box = Aabb::new(Point3::new(4.8, -1.0, -1.0), Point3::new(5.4, 1.0, 1.0));
        let leaves = leaves_in_box(&tree, &wall_box).unwrap();
        assert!(!leaves.is_empty());
        assert!(leaves.iter().any(|l| tree.params().is_occupied(l.log_odds)));

        // A box in free space between origin and wall.
        let free_box = Aabb::new(Point3::new(1.0, -0.5, -0.5), Point3::new(2.0, 0.5, 0.5));
        let free_leaves = leaves_in_box(&tree, &free_box).unwrap();
        assert!(free_leaves
            .iter()
            .all(|l| !tree.params().is_occupied(l.log_odds)));
    }

    #[test]
    fn any_occupied_in_box_collision_check() {
        let tree = walled_tree();
        let hit = Aabb::new(Point3::new(4.5, -0.5, -0.5), Point3::new(5.5, 0.5, 0.5));
        let free = Aabb::new(Point3::new(1.0, -0.5, -0.5), Point3::new(2.0, 0.5, 0.5));
        assert!(any_occupied_in_box(&tree, &hit).unwrap());
        assert!(!any_occupied_in_box(&tree, &free).unwrap());
    }

    #[test]
    fn box_descent_matches_full_scan_filter() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let tree = walled_tree();
        let mut runner = TestRunner::default();
        runner
            .run(
                &(
                    (32700u16..32850, 32700u16..32850, 32700u16..32850),
                    (1u16..60, 1u16..60, 1u16..60),
                ),
                |((x, y, z), (dx, dy, dz))| {
                    let min = VoxelKey::new(x, y, z);
                    let max = VoxelKey::new(x + dx, y + dy, z + dz);
                    let mut fast: Vec<_> = tree
                        .leaves_in_key_box(min, max)
                        .map(|l| (l.key, l.level))
                        .collect();
                    let mut slow: Vec<_> = tree
                        .leaves()
                        .filter(|leaf| {
                            let size = leaf.size_in_voxels();
                            let inside = |lo: u16, v: u16, hi: u16| {
                                (v as u32) <= hi as u32 && v as u32 + size > lo as u32
                            };
                            inside(min.x, leaf.key.x, max.x)
                                && inside(min.y, leaf.key.y, max.y)
                                && inside(min.z, leaf.key.z, max.z)
                        })
                        .map(|l| (l.key, l.level))
                        .collect();
                    fast.sort();
                    slow.sort();
                    prop_assert_eq!(fast, slow);
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn leaves_in_box_covers_pruned_cubes() {
        // Build a pruned occupied cube and query a box inside it: the
        // covering pruned leaf must be reported.
        let grid = VoxelGrid::new(1.0, 4).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        for x in 8..10u16 {
            for y in 8..10u16 {
                for z in 8..10u16 {
                    for _ in 0..10 {
                        tree.update_node(VoxelKey::new(x, y, z), true);
                    }
                }
            }
        }
        let b = Aabb::new(Point3::new(0.2, 0.2, 0.2), Point3::new(0.8, 0.8, 0.8));
        let leaves = leaves_in_box(&tree, &b).unwrap();
        assert_eq!(leaves.len(), 1);
        assert!(leaves[0].level >= 1, "expected a pruned cube");
    }
}
