//! A from-scratch reimplementation of the OctoMap occupancy mapping baseline.
//!
//! This crate is the *substrate* under the OctoCache reproduction: the paper
//! accelerates OctoMap, so an OctoMap that faithfully exhibits the same
//! bottlenecks (root-to-leaf pointer chasing on every voxel update, duplicated
//! voxel updates from ray tracing) has to exist first. The implementation
//! follows Hornung et al., "OctoMap: an efficient probabilistic 3D mapping
//! framework based on octrees" (Autonomous Robots 2013):
//!
//! * [`OccupancyOcTree`] — an octree storing clamped log-odds occupancy per
//!   node; inner nodes hold the **maximum** of their children (the
//!   conservative policy the paper assumes in §2.2); equal-valued leaf sets
//!   are pruned. Two interchangeable storage layouts ([`TreeLayout`]): the
//!   paper's pointer-chasing node tree, and an index-addressed arena pool
//!   in the style of the related flat-layout work.
//! * [`OccupancyParams`] — the sensor model: per-hit/per-miss log-odds deltas
//!   (`δ_occupied` / `δ_free`), clamping bounds and the occupancy threshold.
//! * [`insert`] — point-cloud insertion: ray tracing each beam into free and
//!   occupied voxels and updating the tree, with the paper's default
//!   *raw* policy (every duplicated voxel update reaches the tree) and the
//!   set-discretised variant for comparison.
//! * [`rt`] — the OctoMap-RT–style deduplicating ray tracer used by the
//!   paper's `-RT` baselines (reimplemented on CPU, as the authors did).
//! * [`stats`] — node-visit instrumentation: a hardware-independent proxy for
//!   the memory traffic the paper measures.
//! * [`io`] — compact binary serialisation of a tree.
//!
//! # Example
//!
//! ```
//! # use octocache_octomap::{OccupancyOcTree, OccupancyParams};
//! # use octocache_geom::{Point3, VoxelGrid};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = VoxelGrid::new(0.1, 16)?;
//! let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
//! let origin = Point3::ZERO;
//! let hit = Point3::new(1.0, 0.4, 0.2);
//! octocache_octomap::insert::insert_ray(&mut tree, origin, hit)?;
//! let key = grid.key_of(hit)?;
//! assert_eq!(tree.is_occupied(key), Some(true));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
pub mod checksum;
pub mod compare;
pub mod insert;
pub mod io;
pub mod io_bt;
mod layout;
mod node;
mod occupancy;
pub mod query;
pub mod rt;
pub mod stats;
mod tree;

pub use layout::{ParseLayoutError, TreeLayout};
pub use node::OcTreeNode;
pub use occupancy::{logodds_to_prob, prob_to_logodds, OccupancyParams};
pub use tree::{LeafEntry, OccupancyOcTree};
