//! Node-visit instrumentation.
//!
//! The paper's bottleneck analysis (§3.2) is about *memory accesses*: a voxel
//! update performs a root-to-leaf round trip, touching up to `2 × depth`
//! nodes. Wall-clock time on any particular host is a noisy proxy for that;
//! these counters record the node touches directly, giving a
//! hardware-independent signal that benches report alongside timings.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Counters accumulated by an [`OccupancyOcTree`](crate::OccupancyOcTree).
///
/// Interior-mutable (relaxed atomics) so that read-only operations like
/// queries can also be counted — including concurrent queries against an
/// immutable published snapshot, which is why the tree must stay `Sync`.
/// All accesses use `Ordering::Relaxed`: the counters are statistics, not
/// synchronisation, and on the write path the tree is behind `&mut self`
/// or a mutex anyway (paper §4.4), so relaxed increments cost the same as
/// the plain `Cell` stores they replaced.
#[derive(Debug, Default)]
pub struct TreeStats {
    node_visits: AtomicU64,
    nodes_created: AtomicU64,
    leaf_updates: AtomicU64,
    queries: AtomicU64,
    prunes: AtomicU64,
    expansions: AtomicU64,
}

impl TreeStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        TreeStats::default()
    }

    /// Total tree nodes touched (descent + unwind), the paper's
    /// memory-access proxy.
    pub fn node_visits(&self) -> u64 {
        self.node_visits.load(Ordering::Relaxed)
    }

    /// Nodes allocated.
    pub fn nodes_created(&self) -> u64 {
        self.nodes_created.load(Ordering::Relaxed)
    }

    /// Leaf-level occupancy updates applied.
    pub fn leaf_updates(&self) -> u64 {
        self.leaf_updates.load(Ordering::Relaxed)
    }

    /// Point queries served.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Prune operations performed.
    pub fn prunes(&self) -> u64 {
        self.prunes.load(Ordering::Relaxed)
    }

    /// Expansions of pruned nodes during descent.
    pub fn expansions(&self) -> u64 {
        self.expansions.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.node_visits.store(0, Ordering::Relaxed);
        self.nodes_created.store(0, Ordering::Relaxed);
        self.leaf_updates.store(0, Ordering::Relaxed);
        self.queries.store(0, Ordering::Relaxed);
        self.prunes.store(0, Ordering::Relaxed);
        self.expansions.store(0, Ordering::Relaxed);
    }

    /// Takes a copyable snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            node_visits: self.node_visits(),
            nodes_created: self.nodes_created(),
            leaf_updates: self.leaf_updates(),
            queries: self.queries(),
            prunes: self.prunes(),
            expansions: self.expansions(),
        }
    }

    #[inline]
    pub(crate) fn count_visit(&self) {
        self.node_visits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_visits(&self, n: u64) {
        self.node_visits.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_created(&self) {
        self.nodes_created.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_leaf_update(&self) {
        self.leaf_updates.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_queries(&self, n: u64) {
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_prune(&self) {
        self.prunes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_expansion(&self) {
        self.expansions.fetch_add(1, Ordering::Relaxed);
    }
}

/// A plain-data snapshot of [`TreeStats`], safe to move across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Total tree nodes touched.
    pub node_visits: u64,
    /// Nodes allocated.
    pub nodes_created: u64,
    /// Leaf-level occupancy updates applied.
    pub leaf_updates: u64,
    /// Point queries served.
    pub queries: u64,
    /// Prune operations performed.
    pub prunes: u64,
    /// Expansions of pruned nodes during descent.
    pub expansions: u64,
}

impl StatsSnapshot {
    /// Difference between two snapshots (`self` minus the earlier `base`).
    pub fn since(&self, base: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            node_visits: self.node_visits - base.node_visits,
            nodes_created: self.nodes_created - base.nodes_created,
            leaf_updates: self.leaf_updates - base.leaf_updates,
            queries: self.queries - base.queries,
            prunes: self.prunes - base.prunes,
            expansions: self.expansions - base.expansions,
        }
    }

    /// Adds another snapshot's counters into `self` (aggregating shards or
    /// worker threads).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.node_visits += other.node_visits;
        self.nodes_created += other.nodes_created;
        self.leaf_updates += other.leaf_updates;
        self.queries += other.queries;
        self.prunes += other.prunes;
        self.expansions += other.expansions;
    }

    /// Average node visits per leaf update (the paper's per-voxel memory
    /// access count). Returns 0 when no updates occurred.
    pub fn visits_per_update(&self) -> f64 {
        if self.leaf_updates == 0 {
            0.0
        } else {
            self.node_visits as f64 / self.leaf_updates as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "visits={} created={} updates={} queries={} prunes={} expansions={}",
            self.node_visits,
            self.nodes_created,
            self.leaf_updates,
            self.queries,
            self.prunes,
            self.expansions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = TreeStats::new();
        s.count_visit();
        s.count_visits(4);
        s.count_created();
        s.count_leaf_update();
        s.count_query();
        s.count_prune();
        s.count_expansion();
        assert_eq!(s.node_visits(), 5);
        assert_eq!(s.nodes_created(), 1);
        assert_eq!(s.leaf_updates(), 1);
        assert_eq!(s.queries(), 1);
        assert_eq!(s.prunes(), 1);
        assert_eq!(s.expansions(), 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_since_subtracts() {
        let s = TreeStats::new();
        s.count_visits(10);
        let base = s.snapshot();
        s.count_visits(7);
        s.count_leaf_update();
        let diff = s.snapshot().since(&base);
        assert_eq!(diff.node_visits, 7);
        assert_eq!(diff.leaf_updates, 1);
    }

    #[test]
    fn snapshot_merge_adds_and_serde_round_trips() {
        let mut a = StatsSnapshot {
            node_visits: 10,
            leaf_updates: 2,
            ..Default::default()
        };
        let b = StatsSnapshot {
            node_visits: 5,
            nodes_created: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.node_visits, 15);
        assert_eq!(a.nodes_created, 3);
        assert_eq!(a.leaf_updates, 2);
        let back: StatsSnapshot = serde::json::from_str(&serde::json::to_string(&a)).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn visits_per_update_handles_zero() {
        assert_eq!(StatsSnapshot::default().visits_per_update(), 0.0);
        let s = StatsSnapshot {
            node_visits: 32,
            leaf_updates: 2,
            ..Default::default()
        };
        assert_eq!(s.visits_per_update(), 16.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!StatsSnapshot::default().to_string().is_empty());
    }
}
