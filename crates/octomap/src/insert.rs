//! Point-cloud insertion: the OctoMap generation workflow of the paper's
//! Figure 4 (ray tracing → voxel batch → octree update).
//!
//! A sensor scan is a set of 3D points sampled on obstacle surfaces. For each
//! point, a ray from the sensor origin marks every crossed voxel *free* and
//! the endpoint voxel *occupied*. The resulting [`VoxelBatch`] preserves the
//! raw ray order — the paper's "original order in OctoMap generated from ray
//! tracing" (Figure 10) — including all duplicates, because duplicated voxel
//! updates reaching the octree are precisely the inefficiency OctoCache
//! exploits (§3.1).
//!
//! Two insertion policies are provided:
//!
//! * [`insert_point_cloud`] — the paper's baseline: every ray-traced voxel
//!   observation is applied to the tree individually.
//! * [`insert_point_cloud_discretized`] — reference OctoMap's set-based
//!   variant that deduplicates within the batch first (one update per voxel,
//!   occupied observations win); used for comparisons.

use octocache_geom::{ray, GeomError, Point3, VoxelGrid, VoxelKey};

use crate::tree::OccupancyOcTree;

/// One voxel observation produced by ray tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VoxelUpdate {
    /// The observed voxel.
    pub key: VoxelKey,
    /// Whether the observation is an occupied hit (`true`) or a free
    /// crossing (`false`).
    pub occupied: bool,
}

/// A batch of voxel observations from one scan, in raw ray-traced order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VoxelBatch {
    updates: Vec<VoxelUpdate>,
    num_occupied: usize,
}

impl VoxelBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        VoxelBatch::default()
    }

    /// Creates an empty batch with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        VoxelBatch {
            updates: Vec::with_capacity(capacity),
            num_occupied: 0,
        }
    }

    /// Appends one observation.
    #[inline]
    pub fn push(&mut self, key: VoxelKey, occupied: bool) {
        self.updates.push(VoxelUpdate { key, occupied });
        if occupied {
            self.num_occupied += 1;
        }
    }

    /// The observations in ray-traced order.
    #[inline]
    pub fn updates(&self) -> &[VoxelUpdate] {
        &self.updates
    }

    /// Total observations (including duplicates).
    #[inline]
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when the batch holds no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Number of occupied observations.
    #[inline]
    pub fn num_occupied(&self) -> usize {
        self.num_occupied
    }

    /// Number of free observations.
    #[inline]
    pub fn num_free(&self) -> usize {
        self.updates.len() - self.num_occupied
    }

    /// Clears the batch, retaining allocations.
    pub fn clear(&mut self) {
        self.updates.clear();
        self.num_occupied = 0;
    }

    /// Number of *distinct* voxels in the batch.
    pub fn distinct_voxels(&self) -> usize {
        let mut keys: Vec<VoxelKey> = self.updates.iter().map(|u| u.key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Intra-batch duplication factor: total observations over distinct
    /// voxels (the paper reports 2.78–31.32× for the evaluated datasets).
    pub fn duplication_factor(&self) -> f64 {
        let d = self.distinct_voxels();
        if d == 0 {
            0.0
        } else {
            self.len() as f64 / d as f64
        }
    }

    /// Iterates over the observations.
    pub fn iter(&self) -> std::slice::Iter<'_, VoxelUpdate> {
        self.updates.iter()
    }
}

impl<'a> IntoIterator for &'a VoxelBatch {
    type Item = &'a VoxelUpdate;
    type IntoIter = std::slice::Iter<'a, VoxelUpdate>;
    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

impl FromIterator<VoxelUpdate> for VoxelBatch {
    fn from_iter<I: IntoIterator<Item = VoxelUpdate>>(iter: I) -> Self {
        let mut batch = VoxelBatch::new();
        for u in iter {
            batch.push(u.key, u.occupied);
        }
        batch
    }
}

impl Extend<VoxelUpdate> for VoxelBatch {
    fn extend<I: IntoIterator<Item = VoxelUpdate>>(&mut self, iter: I) {
        for u in iter {
            self.push(u.key, u.occupied);
        }
    }
}

/// Ray-traces one scan into a voxel batch, appending to `out` (cleared
/// first).
///
/// Each point beyond `max_range` from the origin is truncated to
/// `max_range` and contributes only free voxels (no endpoint hit), matching
/// reference OctoMap. Points outside the map cube are clamped to its
/// boundary.
///
/// # Errors
///
/// Returns [`GeomError`] when the sensor origin itself is non-finite or
/// outside the map.
pub fn compute_update(
    grid: &VoxelGrid,
    origin: Point3,
    cloud: &[Point3],
    max_range: f64,
    out: &mut VoxelBatch,
) -> Result<(), GeomError> {
    out.clear();
    if !origin.is_finite() {
        return Err(GeomError::NotFinite);
    }
    grid.key_of(origin)?;
    let mut key_ray = ray::KeyRay::with_capacity(256);
    for &point in cloud {
        if !point.is_finite() {
            continue;
        }
        let delta = point - origin;
        let dist = delta.norm();
        let (end, hit) = if max_range > 0.0 && dist > max_range {
            (origin + delta * (max_range / dist), false)
        } else {
            (point, true)
        };
        let end = grid.clamp_point(end);
        ray::trace_into(grid, origin, end, &mut key_ray)?;
        for &k in key_ray.as_slice() {
            out.push(k, false);
        }
        if hit {
            out.push(grid.key_of(end)?, true);
        }
    }
    Ok(())
}

/// Applies a batch to the tree in order, one update per observation — the
/// paper's baseline OctoMap behaviour where every duplicate reaches the
/// octree.
pub fn apply_batch(tree: &mut OccupancyOcTree, batch: &VoxelBatch) {
    for u in batch.iter() {
        tree.update_node(u.key, u.occupied);
    }
}

/// Report of one point-cloud insertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertionReport {
    /// Rays traced (= points within the cloud that were processed).
    pub rays: usize,
    /// Voxel observations applied to the tree.
    pub updates_applied: usize,
    /// Distinct voxels among the observations.
    pub distinct_voxels: usize,
}

/// Ray-traces and inserts one scan with the raw (duplicate-preserving)
/// policy.
///
/// # Errors
///
/// See [`compute_update`].
pub fn insert_point_cloud(
    tree: &mut OccupancyOcTree,
    origin: Point3,
    cloud: &[Point3],
    max_range: f64,
) -> Result<InsertionReport, GeomError> {
    let mut batch = VoxelBatch::with_capacity(cloud.len() * 8);
    compute_update(tree.grid(), origin, cloud, max_range, &mut batch)?;
    apply_batch(tree, &batch);
    Ok(InsertionReport {
        rays: cloud.len(),
        updates_applied: batch.len(),
        distinct_voxels: batch.distinct_voxels(),
    })
}

/// Ray-traces and inserts one scan with reference OctoMap's discretised
/// policy: the batch is reduced to one update per distinct voxel first
/// (occupied wins over free), then applied.
///
/// # Errors
///
/// See [`compute_update`].
pub fn insert_point_cloud_discretized(
    tree: &mut OccupancyOcTree,
    origin: Point3,
    cloud: &[Point3],
    max_range: f64,
) -> Result<InsertionReport, GeomError> {
    let mut batch = VoxelBatch::with_capacity(cloud.len() * 8);
    compute_update(tree.grid(), origin, cloud, max_range, &mut batch)?;
    let deduped = crate::rt::dedup_batch(&batch);
    apply_batch(tree, &deduped);
    Ok(InsertionReport {
        rays: cloud.len(),
        updates_applied: deduped.len(),
        distinct_voxels: deduped.len(),
    })
}

/// Traces and inserts a single ray (free voxels along it, occupied
/// endpoint).
///
/// # Errors
///
/// See [`compute_update`].
pub fn insert_ray(
    tree: &mut OccupancyOcTree,
    origin: Point3,
    end: Point3,
) -> Result<(), GeomError> {
    let grid = *tree.grid();
    let keys = ray::trace(&grid, origin, grid.clamp_point(end))?;
    for &k in keys.as_slice() {
        tree.update_node(k, false);
    }
    tree.update_node(grid.key_of(grid.clamp_point(end))?, true);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::OccupancyParams;

    fn tree() -> OccupancyOcTree {
        let grid = VoxelGrid::new(0.5, 8).unwrap();
        OccupancyOcTree::new(grid, OccupancyParams::default())
    }

    #[test]
    fn batch_counts() {
        let mut b = VoxelBatch::new();
        b.push(VoxelKey::new(1, 1, 1), false);
        b.push(VoxelKey::new(1, 1, 1), false);
        b.push(VoxelKey::new(2, 2, 2), true);
        assert_eq!(b.len(), 3);
        assert_eq!(b.num_occupied(), 1);
        assert_eq!(b.num_free(), 2);
        assert_eq!(b.distinct_voxels(), 2);
        assert!((b.duplication_factor() - 1.5).abs() < 1e-12);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.duplication_factor(), 0.0);
    }

    #[test]
    fn compute_update_marks_endpoint_occupied() {
        let t = tree();
        let mut batch = VoxelBatch::new();
        let end = Point3::new(3.0, 0.2, 0.2);
        compute_update(t.grid(), Point3::ZERO, &[end], 10.0, &mut batch).unwrap();
        let end_key = t.grid().key_of(end).unwrap();
        let last = batch.updates().last().unwrap();
        assert_eq!(last.key, end_key);
        assert!(last.occupied);
        assert!(batch.num_free() > 0);
        // Free voxels never include the endpoint.
        assert!(batch
            .iter()
            .filter(|u| !u.occupied)
            .all(|u| u.key != end_key));
    }

    #[test]
    fn max_range_truncates_to_free_only() {
        let t = tree();
        let mut batch = VoxelBatch::new();
        let far = Point3::new(50.0, 0.0, 0.0);
        compute_update(t.grid(), Point3::ZERO, &[far], 5.0, &mut batch).unwrap();
        assert_eq!(batch.num_occupied(), 0);
        assert!(batch.num_free() > 0);
        // No free voxel lies beyond max_range + one voxel of slack.
        for u in batch.iter() {
            let c = t.grid().center_of(u.key);
            assert!(c.norm() <= 5.0 + 0.5);
        }
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let t = tree();
        let mut batch = VoxelBatch::new();
        compute_update(
            t.grid(),
            Point3::ZERO,
            &[Point3::new(f64::NAN, 0.0, 0.0), Point3::new(2.0, 0.0, 0.0)],
            10.0,
            &mut batch,
        )
        .unwrap();
        assert_eq!(batch.num_occupied(), 1);
    }

    #[test]
    fn non_finite_origin_errors() {
        let t = tree();
        let mut batch = VoxelBatch::new();
        let err = compute_update(
            t.grid(),
            Point3::new(f64::INFINITY, 0.0, 0.0),
            &[Point3::ZERO],
            10.0,
            &mut batch,
        );
        assert!(err.is_err());
    }

    #[test]
    fn insert_point_cloud_builds_occupied_surface() {
        let mut t = tree();
        let cloud = vec![
            Point3::new(4.0, 0.0, 0.0),
            Point3::new(4.0, 0.5, 0.0),
            Point3::new(4.0, 1.0, 0.0),
        ];
        let report = insert_point_cloud(&mut t, Point3::ZERO, &cloud, 20.0).unwrap();
        assert_eq!(report.rays, 3);
        assert!(report.updates_applied >= report.distinct_voxels);
        for p in &cloud {
            assert_eq!(t.is_occupied_at(*p).unwrap(), Some(true));
        }
        // Space between origin and surface is free.
        assert_eq!(
            t.is_occupied_at(Point3::new(2.0, 0.2, 0.0)).unwrap(),
            Some(false)
        );
    }

    #[test]
    fn discretized_applies_fewer_updates() {
        let cloud: Vec<Point3> = (0..30)
            .map(|i| Point3::new(4.0, (i as f64) * 0.01, 0.0)) // dense: same voxels
            .collect();
        let mut t1 = tree();
        let raw = insert_point_cloud(&mut t1, Point3::ZERO, &cloud, 20.0).unwrap();
        let mut t2 = tree();
        let disc = insert_point_cloud_discretized(&mut t2, Point3::ZERO, &cloud, 20.0).unwrap();
        assert!(disc.updates_applied < raw.updates_applied);
        assert_eq!(disc.updates_applied, raw.distinct_voxels);
        // Both agree the surface voxel is occupied.
        let key = t1.grid().key_of(Point3::new(4.0, 0.1, 0.0)).unwrap();
        assert_eq!(t1.is_occupied(key), Some(true));
        assert_eq!(t2.is_occupied(key), Some(true));
    }

    #[test]
    fn insert_ray_marks_path_free() {
        let mut t = tree();
        insert_ray(&mut t, Point3::ZERO, Point3::new(3.0, 0.0, 0.0)).unwrap();
        assert_eq!(
            t.is_occupied_at(Point3::new(1.5, 0.0, 0.0)).unwrap(),
            Some(false)
        );
        assert_eq!(
            t.is_occupied_at(Point3::new(3.0, 0.0, 0.0)).unwrap(),
            Some(true)
        );
    }

    #[test]
    fn batch_from_and_into_iterator() {
        let updates = vec![
            VoxelUpdate {
                key: VoxelKey::new(1, 2, 3),
                occupied: true,
            },
            VoxelUpdate {
                key: VoxelKey::new(4, 5, 6),
                occupied: false,
            },
        ];
        let batch: VoxelBatch = updates.iter().copied().collect();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.num_occupied(), 1);
        let round: Vec<VoxelUpdate> = (&batch).into_iter().copied().collect();
        assert_eq!(round, updates);
        let mut b2 = VoxelBatch::new();
        b2.extend(updates.clone());
        assert_eq!(b2.len(), 2);
    }
}
