use octocache_geom::ChildIndex;

/// One node of the occupancy octree.
///
/// A node stores its clamped log-odds occupancy and, when it is an inner
/// node, a boxed array of eight optional children. The layout deliberately
/// mirrors reference OctoMap's pointer-based tree: updating a voxel chases
/// one pointer per level, which is exactly the memory-access pattern whose
/// cost the paper analyses (§3.2: "up to 32 memory accesses for a standard
/// 16-level octree" on the root-to-leaf round trip).
#[derive(Debug, Clone, PartialEq)]
pub struct OcTreeNode {
    log_odds: f32,
    /// Child-presence bitmask: bit `i` set ⇔ `children[i]` is `Some`.
    ///
    /// `has_children`, `children()` and the pruning checks consult the mask
    /// instead of scanning eight `Option` slots, keeping the hot traversal
    /// path to a single byte test.
    mask: u8,
    children: Option<Box<[Option<Box<OcTreeNode>>; 8]>>,
}

impl OcTreeNode {
    /// Creates a childless node with the given log-odds.
    #[inline]
    pub fn new(log_odds: f32) -> Self {
        OcTreeNode {
            log_odds,
            mask: 0,
            children: None,
        }
    }

    /// The node's log-odds occupancy value.
    #[inline]
    pub fn log_odds(&self) -> f32 {
        self.log_odds
    }

    /// Sets the node's log-odds occupancy value.
    #[inline]
    pub fn set_log_odds(&mut self, v: f32) {
        self.log_odds = v;
    }

    /// The child-presence bitmask (bit `i` set ⇔ child `i` exists).
    #[inline]
    pub fn child_mask(&self) -> u8 {
        self.mask
    }

    /// True when the node has at least one child.
    #[inline]
    pub fn has_children(&self) -> bool {
        self.mask != 0
    }

    /// Shared access to a child.
    #[inline]
    pub fn child(&self, i: ChildIndex) -> Option<&OcTreeNode> {
        if self.mask & (1 << i.as_usize()) == 0 {
            return None;
        }
        self.children
            .as_ref()
            .and_then(|c| c[i.as_usize()].as_deref())
    }

    /// Exclusive access to a child.
    #[inline]
    pub fn child_mut(&mut self, i: ChildIndex) -> Option<&mut OcTreeNode> {
        if self.mask & (1 << i.as_usize()) == 0 {
            return None;
        }
        self.children
            .as_mut()
            .and_then(|c| c[i.as_usize()].as_deref_mut())
    }

    /// Returns the child at `i`, creating it (initialised to `init_log_odds`)
    /// if absent. Returns whether the child was newly created alongside the
    /// mutable reference.
    pub fn child_or_create(
        &mut self,
        i: ChildIndex,
        init_log_odds: f32,
    ) -> (&mut OcTreeNode, bool) {
        let children = self
            .children
            .get_or_insert_with(|| Box::new(std::array::from_fn(|_| None)));
        let slot = &mut children[i.as_usize()];
        let created = slot.is_none();
        if created {
            *slot = Some(Box::new(OcTreeNode::new(init_log_odds)));
            self.mask |= 1 << i.as_usize();
        }
        (slot.as_deref_mut().expect("just filled"), created)
    }

    /// Iterates over the present children with their indices.
    pub fn children(&self) -> impl Iterator<Item = (ChildIndex, &OcTreeNode)> {
        let mask = self.mask;
        self.children
            .iter()
            .flat_map(|c| c.iter().enumerate())
            .filter(move |(i, _)| mask & (1 << i) != 0)
            .filter_map(|(i, slot)| slot.as_deref().map(|n| (ChildIndex::new(i as u8), n)))
    }

    /// Number of present children (0..=8).
    #[inline]
    pub fn child_count(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// The maximum log-odds over present children, if any.
    ///
    /// Reference OctoMap's conservative inner-node policy (`maxChildLogOdds`),
    /// and the rule the paper states in §2.2: "the occupancy value of each
    /// node equals the maximum among its 8 children".
    pub fn max_child_log_odds(&self) -> Option<f32> {
        self.children()
            .map(|(_, c)| c.log_odds)
            .fold(None, |acc, v| {
                Some(match acc {
                    Some(a) => a.max(v),
                    None => v,
                })
            })
    }

    /// True when this node can be pruned: all eight children exist, none has
    /// children of its own, and they all carry the same log-odds.
    pub fn is_prunable(&self) -> bool {
        if self.mask != 0xff {
            return false;
        }
        let Some(children) = &self.children else {
            return false;
        };
        let mut value = None;
        for slot in children.iter() {
            let Some(c) = slot else { return false };
            if c.has_children() {
                return false;
            }
            match value {
                None => value = Some(c.log_odds),
                Some(v) if v == c.log_odds => {}
                _ => return false,
            }
        }
        true
    }

    /// Prunes this node: deletes all children, keeping their common value.
    ///
    /// # Panics
    ///
    /// Debug-asserts [`OcTreeNode::is_prunable`]; in release an un-prunable
    /// node is pruned destructively (children discarded, value kept as max).
    pub fn prune(&mut self) {
        debug_assert!(self.is_prunable());
        if let Some(v) = self.max_child_log_odds() {
            self.log_odds = v;
        }
        self.mask = 0;
        self.children = None;
    }

    /// Expands a pruned node: creates all eight children carrying this
    /// node's value. The inverse of [`OcTreeNode::prune`].
    pub fn expand(&mut self) {
        debug_assert!(!self.has_children());
        let v = self.log_odds;
        self.mask = 0xff;
        self.children = Some(Box::new(std::array::from_fn(|_| {
            Some(Box::new(OcTreeNode::new(v)))
        })));
    }

    /// Recursively counts all nodes in this subtree, including `self`.
    pub fn count_nodes(&self) -> usize {
        1 + self.children().map(|(_, c)| c.count_nodes()).sum::<usize>()
    }

    /// Recursively counts leaf nodes (nodes without children) in the subtree.
    pub fn count_leaves(&self) -> usize {
        if !self.has_children() {
            1
        } else {
            self.children().map(|(_, c)| c.count_leaves()).sum()
        }
    }

    /// Approximate heap footprint of the subtree in bytes: each node costs
    /// its struct size, plus the child array when present.
    pub fn memory_usage(&self) -> usize {
        let own = std::mem::size_of::<OcTreeNode>();
        let arr = if self.children.is_some() {
            std::mem::size_of::<[Option<Box<OcTreeNode>>; 8]>()
        } else {
            0
        };
        own + arr
            + self
                .children()
                .map(|(_, c)| c.memory_usage())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(i: u8) -> ChildIndex {
        ChildIndex::new(i)
    }

    #[test]
    fn new_node_is_leaf() {
        let n = OcTreeNode::new(0.5);
        assert_eq!(n.log_odds(), 0.5);
        assert!(!n.has_children());
        assert_eq!(n.child_count(), 0);
        assert_eq!(n.count_nodes(), 1);
        assert_eq!(n.count_leaves(), 1);
    }

    #[test]
    fn child_or_create_creates_once() {
        let mut n = OcTreeNode::new(0.0);
        let (_, created) = n.child_or_create(idx(3), 1.0);
        assert!(created);
        let (c, created) = n.child_or_create(idx(3), 2.0);
        assert!(!created);
        assert_eq!(c.log_odds(), 1.0); // init value ignored on existing child
        assert_eq!(n.child_count(), 1);
        assert!(n.child(idx(3)).is_some());
        assert!(n.child(idx(4)).is_none());
    }

    #[test]
    fn max_child_log_odds_takes_maximum() {
        let mut n = OcTreeNode::new(0.0);
        n.child_or_create(idx(0), -1.0);
        n.child_or_create(idx(5), 2.5);
        n.child_or_create(idx(7), 1.0);
        assert_eq!(n.max_child_log_odds(), Some(2.5));
    }

    #[test]
    fn prunable_requires_all_eight_equal_leaves() {
        let mut n = OcTreeNode::new(0.0);
        for i in 0..7 {
            n.child_or_create(idx(i), 1.5);
        }
        assert!(!n.is_prunable()); // only 7 children
        n.child_or_create(idx(7), 1.5);
        assert!(n.is_prunable());
        n.child_mut(idx(2)).unwrap().set_log_odds(0.0);
        assert!(!n.is_prunable()); // unequal values
    }

    #[test]
    fn prunable_rejects_grandchildren() {
        let mut n = OcTreeNode::new(0.0);
        for i in 0..8 {
            n.child_or_create(idx(i), 1.0);
        }
        n.child_mut(idx(0)).unwrap().child_or_create(idx(0), 1.0);
        assert!(!n.is_prunable());
    }

    #[test]
    fn prune_then_expand_roundtrip() {
        let mut n = OcTreeNode::new(0.0);
        for i in 0..8 {
            n.child_or_create(idx(i), 2.0);
        }
        assert!(n.is_prunable());
        n.prune();
        assert!(!n.has_children());
        assert_eq!(n.log_odds(), 2.0);
        n.expand();
        assert_eq!(n.child_count(), 8);
        assert!(n.children().all(|(_, c)| c.log_odds() == 2.0));
        assert!(n.is_prunable());
    }

    #[test]
    fn count_nodes_and_leaves() {
        let mut n = OcTreeNode::new(0.0);
        n.child_or_create(idx(0), 0.0);
        n.child_or_create(idx(1), 0.0);
        n.child_mut(idx(0)).unwrap().child_or_create(idx(4), 0.0);
        // root + 2 children + 1 grandchild
        assert_eq!(n.count_nodes(), 4);
        // leaves: child(1) and grandchild
        assert_eq!(n.count_leaves(), 2);
    }

    #[test]
    fn memory_usage_grows_with_children() {
        let mut n = OcTreeNode::new(0.0);
        let before = n.memory_usage();
        n.child_or_create(idx(0), 0.0);
        assert!(n.memory_usage() > before);
    }

    #[test]
    fn child_mask_tracks_presence() {
        let mut n = OcTreeNode::new(0.0);
        assert_eq!(n.child_mask(), 0);
        n.child_or_create(idx(0), 1.0);
        n.child_or_create(idx(7), 1.0);
        assert_eq!(n.child_mask(), 0b1000_0001);
        assert_eq!(n.child_count(), 2);

        let mut p = OcTreeNode::new(0.5);
        p.expand();
        assert_eq!(p.child_mask(), 0xff);
        assert!(p.is_prunable());
        p.prune();
        assert_eq!(p.child_mask(), 0);
        assert!(!p.has_children());
    }

    #[test]
    fn children_iterator_yields_indices() {
        let mut n = OcTreeNode::new(0.0);
        n.child_or_create(idx(2), 0.1);
        n.child_or_create(idx(6), 0.2);
        let got: Vec<usize> = n.children().map(|(i, _)| i.as_usize()).collect();
        assert_eq!(got, vec![2, 6]);
    }
}
