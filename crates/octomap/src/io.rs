//! Compact binary serialisation of occupancy octrees.
//!
//! The format is a close cousin of OctoMap's `.ot` stream: a fixed header
//! (magic, version, grid and sensor-model parameters) followed by a
//! depth-first node stream where each node contributes its `f32` log-odds
//! and a `u8` child-presence bitmask.
//!
//! # Example
//!
//! ```
//! # use octocache_octomap::{OccupancyOcTree, OccupancyParams, io};
//! # use octocache_geom::{VoxelGrid, VoxelKey};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = VoxelGrid::new(0.1, 16)?;
//! let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
//! tree.update_node(VoxelKey::origin(16), true);
//! let bytes = io::write_tree(&tree);
//! let restored = io::read_tree(&bytes)?;
//! assert_eq!(restored.search(VoxelKey::origin(16)), tree.search(VoxelKey::origin(16)));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use octocache_geom::{ChildIndex, VoxelGrid};

use crate::checksum::crc32;
use crate::layout::TreeLayout;
use crate::node::OcTreeNode;
use crate::occupancy::OccupancyParams;
use crate::tree::{NodeRef, OccupancyOcTree};

const MAGIC: &[u8; 4] = b"OCT1";

/// Trailing magic identifying the checksummed v2 footer (shared by `.ot`
/// and `.bt` streams).
pub(crate) const FOOTER_MAGIC: &[u8; 4] = b"OCF2";

/// Footer size in bytes: payload CRC (4) + leaf checksum (8) + epoch (8) +
/// trailing magic (4).
pub(crate) const FOOTER_LEN: usize = 4 + 8 + 8 + 4;

/// Integrity metadata carried by a v2 map stream's footer.
///
/// v2 streams are the v1 payload followed by 24 footer bytes:
///
/// ```text
/// | v1 payload ... | payload_crc: u32 | leaf_checksum: u64 | epoch: u64 | "OCF2" |
/// ```
///
/// `payload_crc` is the CRC-32 (IEEE) of every byte before the footer;
/// `leaf_checksum` is [`OccupancyOcTree::leaf_checksum`] of the tree the
/// payload decodes to (for `.bt` streams: of the maximum-likelihood tree the
/// reader reconstructs); `epoch` is the number of scans integrated when the
/// stream was written (0 when unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapFooter {
    /// CRC-32 of the payload bytes preceding the footer.
    pub payload_crc: u32,
    /// Leaf checksum of the decoded tree.
    pub leaf_checksum: u64,
    /// Scan epoch at write time.
    pub epoch: u64,
}

/// Errors produced when decoding a serialised tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadError {
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// The stream ended before the encoded tree was complete.
    Truncated,
    /// The header carried an invalid grid (resolution/depth).
    BadGrid(String),
    /// The stream encodes deeper nesting than the header's tree depth.
    DepthOverflow,
    /// Trailing bytes follow the encoded tree.
    TrailingBytes(usize),
    /// A node carried a NaN or infinite log-odds value.
    NotFinite,
    /// The stream ends with the v2 footer magic but is too short to hold a
    /// footer and a payload.
    BadFooter,
    /// The v2 footer's payload CRC does not match the payload bytes.
    ChecksumMismatch {
        /// CRC recorded in the footer.
        expected: u32,
        /// CRC computed over the payload.
        actual: u32,
    },
    /// The decoded tree's leaf checksum does not match the v2 footer.
    LeafChecksumMismatch {
        /// Leaf checksum recorded in the footer.
        expected: u64,
        /// Leaf checksum of the decoded tree.
        actual: u64,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::BadMagic => write!(f, "stream does not begin with octree magic"),
            ReadError::Truncated => write!(f, "stream ended before tree was complete"),
            ReadError::BadGrid(e) => write!(f, "invalid grid parameters: {e}"),
            ReadError::DepthOverflow => {
                write!(f, "node nesting exceeds the header tree depth")
            }
            ReadError::TrailingBytes(n) => write!(f, "{n} trailing bytes after tree"),
            ReadError::NotFinite => write!(f, "non-finite log-odds value in node stream"),
            ReadError::BadFooter => write!(f, "v2 footer magic on a stream too short for one"),
            ReadError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload CRC mismatch: footer {expected:#010x}, computed {actual:#010x}"
            ),
            ReadError::LeafChecksumMismatch { expected, actual } => write!(
                f,
                "leaf checksum mismatch: footer {expected:#018x}, decoded {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for ReadError {}

/// Appends the v2 footer to a finished payload buffer.
pub(crate) fn append_footer(buf: &mut BytesMut, leaf_checksum: u64, epoch: u64) {
    let crc = crc32(&buf[..]);
    buf.put_u32(crc);
    buf.put_u64(leaf_checksum);
    buf.put_u64(epoch);
    buf.put_slice(FOOTER_MAGIC);
}

/// Splits `bytes` into `(payload, footer)`, verifying the payload CRC when a
/// v2 footer is present. v1 streams (no trailing footer magic) pass through
/// untouched with `None`.
pub(crate) fn split_footer(bytes: &[u8]) -> Result<(&[u8], Option<MapFooter>), ReadError> {
    if bytes.len() < 4 || &bytes[bytes.len() - 4..] != FOOTER_MAGIC {
        return Ok((bytes, None));
    }
    if bytes.len() < FOOTER_LEN {
        return Err(ReadError::BadFooter);
    }
    let (payload, mut footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    let meta = MapFooter {
        payload_crc: footer.get_u32(),
        leaf_checksum: footer.get_u64(),
        epoch: footer.get_u64(),
    };
    let actual = crc32(payload);
    if actual != meta.payload_crc {
        return Err(ReadError::ChecksumMismatch {
            expected: meta.payload_crc,
            actual,
        });
    }
    Ok((payload, Some(meta)))
}

/// Inspects a stream's v2 footer without decoding the tree.
///
/// Returns `Ok(None)` for v1 streams. When a footer is present its payload
/// CRC is verified, so `Ok(Some(..))` implies the payload bytes are intact.
///
/// # Errors
///
/// [`ReadError::BadFooter`] or [`ReadError::ChecksumMismatch`] for damaged
/// v2 streams.
pub fn peek_footer(bytes: &[u8]) -> Result<Option<MapFooter>, ReadError> {
    split_footer(bytes).map(|(_, meta)| meta)
}

/// Serialises a tree to bytes (legacy v1 stream, no footer).
pub fn write_tree(tree: &OccupancyOcTree) -> Bytes {
    write_payload(tree).freeze()
}

/// Serialises a tree to a checksummed v2 stream: the v1 payload followed by
/// a [`MapFooter`] carrying the payload CRC, the tree's
/// [leaf checksum](OccupancyOcTree::leaf_checksum) and `epoch` (the number
/// of scans integrated — pass 0 when not tracked).
///
/// [`read_tree`] accepts both v1 and v2 streams, so v2 is a safe default
/// for new files; the footer is what checkpoint recovery uses to reject
/// torn or bit-rotted files.
pub fn write_tree_v2(tree: &OccupancyOcTree, epoch: u64) -> Bytes {
    let mut buf = write_payload(tree);
    append_footer(&mut buf, tree.leaf_checksum(), epoch);
    buf.freeze()
}

fn write_payload(tree: &OccupancyOcTree) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64 + tree.num_nodes() * 5);
    buf.put_slice(MAGIC);
    buf.put_f64(tree.grid().resolution());
    buf.put_u8(tree.grid().depth());
    let p = tree.params();
    buf.put_f32(p.delta_occupied);
    buf.put_f32(p.delta_free);
    buf.put_f32(p.clamp_min);
    buf.put_f32(p.clamp_max);
    buf.put_f32(p.threshold);
    match tree.root_ref() {
        Some(root) => {
            buf.put_u8(1);
            write_node(root, &mut buf);
        }
        None => buf.put_u8(0),
    }
    buf
}

fn write_node(node: NodeRef<'_>, buf: &mut BytesMut) {
    buf.put_f32(node.log_odds());
    buf.put_u8(node.child_mask());
    for (_, child) in node.children() {
        write_node(child, buf);
    }
}

/// Deserialises a tree from bytes produced by [`write_tree`] or
/// [`write_tree_v2`], storing it in the ambient default layout
/// ([`TreeLayout::default_from_env`]).
///
/// The byte stream is layout-independent: a map written from a pointer tree
/// reads back into an arena tree bit-for-bit equivalently, and vice versa.
/// When a v2 footer is present, both the payload CRC and the decoded leaf
/// checksum are verified.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input; never panics on untrusted
/// bytes.
pub fn read_tree(bytes: &[u8]) -> Result<OccupancyOcTree, ReadError> {
    read_tree_with_layout(bytes, TreeLayout::default_from_env())
}

/// As [`read_tree`], but stores the decoded tree in an explicit layout.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input.
pub fn read_tree_with_layout(
    bytes: &[u8],
    layout: TreeLayout,
) -> Result<OccupancyOcTree, ReadError> {
    read_tree_with_meta(bytes, layout).map(|(tree, _)| tree)
}

/// As [`read_tree_with_layout`], additionally returning the v2 footer when
/// the stream carries one (`None` for legacy v1 streams).
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input, including
/// [`ReadError::ChecksumMismatch`] / [`ReadError::LeafChecksumMismatch`]
/// when a v2 stream fails its integrity checks.
pub fn read_tree_with_meta(
    bytes: &[u8],
    layout: TreeLayout,
) -> Result<(OccupancyOcTree, Option<MapFooter>), ReadError> {
    let (payload, meta) = split_footer(bytes)?;
    let tree = read_payload(payload, layout)?;
    if let Some(meta) = &meta {
        let actual = tree.leaf_checksum();
        if actual != meta.leaf_checksum {
            return Err(ReadError::LeafChecksumMismatch {
                expected: meta.leaf_checksum,
                actual,
            });
        }
    }
    Ok((tree, meta))
}

fn read_payload(bytes: &[u8], layout: TreeLayout) -> Result<OccupancyOcTree, ReadError> {
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(ReadError::BadMagic);
    }
    buf.advance(4);
    if buf.remaining() < 8 + 1 + 5 * 4 + 1 {
        return Err(ReadError::Truncated);
    }
    let resolution = buf.get_f64();
    let depth = buf.get_u8();
    let grid = VoxelGrid::new(resolution, depth).map_err(|e| ReadError::BadGrid(e.to_string()))?;
    let params = OccupancyParams {
        delta_occupied: buf.get_f32(),
        delta_free: buf.get_f32(),
        clamp_min: buf.get_f32(),
        clamp_max: buf.get_f32(),
        threshold: buf.get_f32(),
    };
    if params.validate().is_err() {
        return Err(ReadError::BadGrid("inconsistent occupancy params".into()));
    }
    let has_root = buf.get_u8() == 1;
    let mut tree = OccupancyOcTree::with_layout(grid, params, layout);
    if has_root {
        let root = read_node(&mut buf, depth)?;
        if buf.has_remaining() {
            return Err(ReadError::TrailingBytes(buf.remaining()));
        }
        tree.install_root(Some(Box::new(root)));
    } else if buf.has_remaining() {
        return Err(ReadError::TrailingBytes(buf.remaining()));
    }
    Ok(tree)
}

fn read_node(buf: &mut &[u8], levels_left: u8) -> Result<OcTreeNode, ReadError> {
    if buf.remaining() < 5 {
        return Err(ReadError::Truncated);
    }
    let log_odds = buf.get_f32();
    if !log_odds.is_finite() {
        return Err(ReadError::NotFinite);
    }
    let mask = buf.get_u8();
    let mut node = OcTreeNode::new(log_odds);
    if mask != 0 {
        if levels_left == 0 {
            return Err(ReadError::DepthOverflow);
        }
        for i in 0..8u8 {
            if mask & (1 << i) != 0 {
                let child = read_node(buf, levels_left - 1)?;
                let (slot, _) = node.child_or_create(ChildIndex::new(i), 0.0);
                *slot = child;
            }
        }
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octocache_geom::{Point3, VoxelKey};

    fn sample_tree() -> OccupancyOcTree {
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let cloud: Vec<Point3> = (0..50)
            .map(|i| {
                let a = i as f64 * 0.13;
                Point3::new(5.0 + a.sin(), a.cos() * 3.0, (i % 7) as f64 * 0.2)
            })
            .collect();
        crate::insert::insert_point_cloud(&mut tree, Point3::ZERO, &cloud, 30.0).unwrap();
        tree
    }

    #[test]
    fn roundtrip_preserves_structure_and_values() {
        let tree = sample_tree();
        let bytes = write_tree(&tree);
        let restored = read_tree(&bytes).unwrap();
        assert_eq!(restored.num_nodes(), tree.num_nodes());
        assert_eq!(restored.num_leaves(), tree.num_leaves());
        assert_eq!(restored.grid().resolution(), tree.grid().resolution());
        // Compare every leaf.
        let mut a: Vec<_> = tree.leaves().map(|l| (l.key, l.level)).collect();
        let mut b: Vec<_> = restored.leaves().map(|l| (l.key, l.level)).collect();
        a.sort_by_key(|x| (x.0, x.1));
        b.sort_by_key(|x| (x.0, x.1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_tree_roundtrips() {
        let grid = VoxelGrid::new(0.1, 16).unwrap();
        let tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let bytes = write_tree(&tree);
        let restored = read_tree(&bytes).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_tree(b"NOPE"), Err(ReadError::BadMagic)));
        assert!(matches!(read_tree(b""), Err(ReadError::BadMagic)));
    }

    #[test]
    fn truncated_stream_rejected() {
        let tree = sample_tree();
        let bytes = write_tree(&tree);
        for cut in [5, 10, 20, bytes.len() - 1] {
            let err = read_tree(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ReadError::Truncated | ReadError::BadMagic),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let tree = sample_tree();
        let mut bytes = write_tree(&tree).to_vec();
        bytes.push(0xFF);
        assert!(matches!(
            read_tree(&bytes),
            Err(ReadError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_grid_rejected() {
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let mut bytes = write_tree(&tree).to_vec();
        // Corrupt the depth byte (offset 4 magic + 8 resolution).
        bytes[12] = 200;
        assert!(matches!(read_tree(&bytes), Err(ReadError::BadGrid(_))));
    }

    #[test]
    fn queries_agree_after_roundtrip() {
        let tree = sample_tree();
        let restored = read_tree(&write_tree(&tree)).unwrap();
        for x in (0..256).step_by(17) {
            for y in (0..256).step_by(23) {
                let key = VoxelKey::new(x as u16, y as u16, 128);
                assert_eq!(tree.search(key), restored.search(key));
            }
        }
    }

    #[test]
    fn corrupted_node_stream_never_panics() {
        // Flip every byte of a valid stream one at a time: decoding must
        // return Ok or Err but never panic (and Ok only for benign flips
        // like log-odds bits).
        let tree = sample_tree();
        let bytes = write_tree(&tree).to_vec();
        for i in 0..bytes.len().min(400) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xA5;
            let _ = read_tree(&corrupted);
        }
    }

    #[test]
    fn display_of_errors() {
        for e in [
            ReadError::BadMagic,
            ReadError::Truncated,
            ReadError::BadGrid("x".into()),
            ReadError::DepthOverflow,
            ReadError::TrailingBytes(3),
            ReadError::NotFinite,
            ReadError::BadFooter,
            ReadError::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
            ReadError::LeafChecksumMismatch {
                expected: 1,
                actual: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn v2_roundtrip_and_footer() {
        let tree = sample_tree();
        let bytes = write_tree_v2(&tree, 42);
        let meta = peek_footer(&bytes).unwrap().expect("footer present");
        assert_eq!(meta.epoch, 42);
        assert_eq!(meta.leaf_checksum, tree.leaf_checksum());
        let (restored, meta2) = read_tree_with_meta(&bytes, tree.layout()).unwrap();
        assert_eq!(meta2, Some(meta));
        assert_eq!(restored.leaf_checksum(), tree.leaf_checksum());
    }

    #[test]
    fn v1_stream_has_no_footer_and_still_reads() {
        let tree = sample_tree();
        let bytes = write_tree(&tree);
        assert_eq!(peek_footer(&bytes).unwrap(), None);
        let (restored, meta) = read_tree_with_meta(&bytes, tree.layout()).unwrap();
        assert!(meta.is_none());
        assert_eq!(restored.leaf_checksum(), tree.leaf_checksum());
    }

    #[test]
    fn v2_payload_corruption_is_caught_by_crc() {
        let tree = sample_tree();
        let bytes = write_tree_v2(&tree, 7).to_vec();
        // Flip one payload bit: the CRC must catch it before decoding.
        let mut corrupted = bytes.clone();
        corrupted[40] ^= 0x01;
        assert!(matches!(
            read_tree(&corrupted),
            Err(ReadError::ChecksumMismatch { .. })
        ));
        // Flip a footer byte (not the magic): CRC or leaf-checksum mismatch.
        let mut corrupted = bytes.clone();
        let crc_off = bytes.len() - FOOTER_LEN;
        corrupted[crc_off] ^= 0xFF;
        assert!(read_tree(&corrupted).is_err());
    }

    #[test]
    fn footer_magic_on_tiny_stream_is_bad_footer() {
        let mut bytes = b"OCF2".to_vec();
        assert!(matches!(read_tree(&bytes), Err(ReadError::BadFooter)));
        bytes.splice(0..0, [0u8; 10]);
        assert!(matches!(read_tree(&bytes), Err(ReadError::BadFooter)));
    }

    #[test]
    fn nan_log_odds_rejected() {
        let tree = sample_tree();
        let mut bytes = write_tree(&tree).to_vec();
        // First node's log-odds sits right after the 34-byte header.
        bytes[34..38].copy_from_slice(&f32::NAN.to_bits().to_be_bytes());
        assert!(matches!(read_tree(&bytes), Err(ReadError::NotFinite)));
    }
}
