//! Compact binary serialisation of occupancy octrees.
//!
//! The format is a close cousin of OctoMap's `.ot` stream: a fixed header
//! (magic, version, grid and sensor-model parameters) followed by a
//! depth-first node stream where each node contributes its `f32` log-odds
//! and a `u8` child-presence bitmask.
//!
//! # Example
//!
//! ```
//! # use octocache_octomap::{OccupancyOcTree, OccupancyParams, io};
//! # use octocache_geom::{VoxelGrid, VoxelKey};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = VoxelGrid::new(0.1, 16)?;
//! let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
//! tree.update_node(VoxelKey::origin(16), true);
//! let bytes = io::write_tree(&tree);
//! let restored = io::read_tree(&bytes)?;
//! assert_eq!(restored.search(VoxelKey::origin(16)), tree.search(VoxelKey::origin(16)));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use octocache_geom::{ChildIndex, VoxelGrid};

use crate::layout::TreeLayout;
use crate::node::OcTreeNode;
use crate::occupancy::OccupancyParams;
use crate::tree::{NodeRef, OccupancyOcTree};

const MAGIC: &[u8; 4] = b"OCT1";

/// Errors produced when decoding a serialised tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadError {
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// The stream ended before the encoded tree was complete.
    Truncated,
    /// The header carried an invalid grid (resolution/depth).
    BadGrid(String),
    /// The stream encodes deeper nesting than the header's tree depth.
    DepthOverflow,
    /// Trailing bytes follow the encoded tree.
    TrailingBytes(usize),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::BadMagic => write!(f, "stream does not begin with octree magic"),
            ReadError::Truncated => write!(f, "stream ended before tree was complete"),
            ReadError::BadGrid(e) => write!(f, "invalid grid parameters: {e}"),
            ReadError::DepthOverflow => {
                write!(f, "node nesting exceeds the header tree depth")
            }
            ReadError::TrailingBytes(n) => write!(f, "{n} trailing bytes after tree"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Serialises a tree to bytes.
pub fn write_tree(tree: &OccupancyOcTree) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + tree.num_nodes() * 5);
    buf.put_slice(MAGIC);
    buf.put_f64(tree.grid().resolution());
    buf.put_u8(tree.grid().depth());
    let p = tree.params();
    buf.put_f32(p.delta_occupied);
    buf.put_f32(p.delta_free);
    buf.put_f32(p.clamp_min);
    buf.put_f32(p.clamp_max);
    buf.put_f32(p.threshold);
    match tree.root_ref() {
        Some(root) => {
            buf.put_u8(1);
            write_node(root, &mut buf);
        }
        None => buf.put_u8(0),
    }
    buf.freeze()
}

fn write_node(node: NodeRef<'_>, buf: &mut BytesMut) {
    buf.put_f32(node.log_odds());
    buf.put_u8(node.child_mask());
    for (_, child) in node.children() {
        write_node(child, buf);
    }
}

/// Deserialises a tree from bytes produced by [`write_tree`], storing it in
/// the ambient default layout ([`TreeLayout::default_from_env`]).
///
/// The byte stream is layout-independent: a map written from a pointer tree
/// reads back into an arena tree bit-for-bit equivalently, and vice versa.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input; never panics on untrusted
/// bytes.
pub fn read_tree(bytes: &[u8]) -> Result<OccupancyOcTree, ReadError> {
    read_tree_with_layout(bytes, TreeLayout::default_from_env())
}

/// As [`read_tree`], but stores the decoded tree in an explicit layout.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input.
pub fn read_tree_with_layout(
    bytes: &[u8],
    layout: TreeLayout,
) -> Result<OccupancyOcTree, ReadError> {
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(ReadError::BadMagic);
    }
    buf.advance(4);
    if buf.remaining() < 8 + 1 + 5 * 4 + 1 {
        return Err(ReadError::Truncated);
    }
    let resolution = buf.get_f64();
    let depth = buf.get_u8();
    let grid = VoxelGrid::new(resolution, depth).map_err(|e| ReadError::BadGrid(e.to_string()))?;
    let params = OccupancyParams {
        delta_occupied: buf.get_f32(),
        delta_free: buf.get_f32(),
        clamp_min: buf.get_f32(),
        clamp_max: buf.get_f32(),
        threshold: buf.get_f32(),
    };
    let has_root = buf.get_u8() == 1;
    let mut tree = OccupancyOcTree::with_layout(grid, params, layout);
    if has_root {
        let root = read_node(&mut buf, depth)?;
        if buf.has_remaining() {
            return Err(ReadError::TrailingBytes(buf.remaining()));
        }
        tree.install_root(Some(Box::new(root)));
    } else if buf.has_remaining() {
        return Err(ReadError::TrailingBytes(buf.remaining()));
    }
    Ok(tree)
}

fn read_node(buf: &mut &[u8], levels_left: u8) -> Result<OcTreeNode, ReadError> {
    if buf.remaining() < 5 {
        return Err(ReadError::Truncated);
    }
    let log_odds = buf.get_f32();
    let mask = buf.get_u8();
    let mut node = OcTreeNode::new(log_odds);
    if mask != 0 {
        if levels_left == 0 {
            return Err(ReadError::DepthOverflow);
        }
        for i in 0..8u8 {
            if mask & (1 << i) != 0 {
                let child = read_node(buf, levels_left - 1)?;
                let (slot, _) = node.child_or_create(ChildIndex::new(i), 0.0);
                *slot = child;
            }
        }
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octocache_geom::{Point3, VoxelKey};

    fn sample_tree() -> OccupancyOcTree {
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let mut tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let cloud: Vec<Point3> = (0..50)
            .map(|i| {
                let a = i as f64 * 0.13;
                Point3::new(5.0 + a.sin(), a.cos() * 3.0, (i % 7) as f64 * 0.2)
            })
            .collect();
        crate::insert::insert_point_cloud(&mut tree, Point3::ZERO, &cloud, 30.0).unwrap();
        tree
    }

    #[test]
    fn roundtrip_preserves_structure_and_values() {
        let tree = sample_tree();
        let bytes = write_tree(&tree);
        let restored = read_tree(&bytes).unwrap();
        assert_eq!(restored.num_nodes(), tree.num_nodes());
        assert_eq!(restored.num_leaves(), tree.num_leaves());
        assert_eq!(restored.grid().resolution(), tree.grid().resolution());
        // Compare every leaf.
        let mut a: Vec<_> = tree.leaves().map(|l| (l.key, l.level)).collect();
        let mut b: Vec<_> = restored.leaves().map(|l| (l.key, l.level)).collect();
        a.sort_by_key(|x| (x.0, x.1));
        b.sort_by_key(|x| (x.0, x.1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_tree_roundtrips() {
        let grid = VoxelGrid::new(0.1, 16).unwrap();
        let tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let bytes = write_tree(&tree);
        let restored = read_tree(&bytes).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_tree(b"NOPE"), Err(ReadError::BadMagic)));
        assert!(matches!(read_tree(b""), Err(ReadError::BadMagic)));
    }

    #[test]
    fn truncated_stream_rejected() {
        let tree = sample_tree();
        let bytes = write_tree(&tree);
        for cut in [5, 10, 20, bytes.len() - 1] {
            let err = read_tree(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ReadError::Truncated | ReadError::BadMagic),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let tree = sample_tree();
        let mut bytes = write_tree(&tree).to_vec();
        bytes.push(0xFF);
        assert!(matches!(
            read_tree(&bytes),
            Err(ReadError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_grid_rejected() {
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let tree = OccupancyOcTree::new(grid, OccupancyParams::default());
        let mut bytes = write_tree(&tree).to_vec();
        // Corrupt the depth byte (offset 4 magic + 8 resolution).
        bytes[12] = 200;
        assert!(matches!(read_tree(&bytes), Err(ReadError::BadGrid(_))));
    }

    #[test]
    fn queries_agree_after_roundtrip() {
        let tree = sample_tree();
        let restored = read_tree(&write_tree(&tree)).unwrap();
        for x in (0..256).step_by(17) {
            for y in (0..256).step_by(23) {
                let key = VoxelKey::new(x as u16, y as u16, 128);
                assert_eq!(tree.search(key), restored.search(key));
            }
        }
    }

    #[test]
    fn corrupted_node_stream_never_panics() {
        // Flip every byte of a valid stream one at a time: decoding must
        // return Ok or Err but never panic (and Ok only for benign flips
        // like log-odds bits).
        let tree = sample_tree();
        let bytes = write_tree(&tree).to_vec();
        for i in 0..bytes.len().min(400) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xA5;
            let _ = read_tree(&corrupted);
        }
    }

    #[test]
    fn display_of_errors() {
        for e in [
            ReadError::BadMagic,
            ReadError::Truncated,
            ReadError::BadGrid("x".into()),
            ReadError::DepthOverflow,
            ReadError::TrailingBytes(3),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
