use std::time::{Duration, Instant};

use octocache::{
    LiveMap, MappingSystem, OccupancyView, PhaseTimes, PipelineError, QueryHandle, ScanOutcome,
};
use octocache_datasets::{DepthSensor, Pose};
use serde::{Deserialize, Serialize};

use crate::environment::Environment;
use crate::planner::{Planner, PlannerConfig};
use crate::uav::UavModel;
use crate::velocity;

/// Closed-loop configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionConfig {
    /// Scene / sensor-noise seed.
    pub seed: u64,
    /// Hard cap on control cycles (a stuck mission ends unfinished).
    pub max_cycles: usize,
    /// Sensor ray grid columns.
    pub sensor_cols: u32,
    /// Sensor ray grid rows.
    pub sensor_rows: u32,
    /// Horizontal field of view (radians).
    pub h_fov: f64,
    /// Vertical field of view (radians).
    pub v_fov: f64,
    /// Sensing range override; `None` uses the environment baseline.
    pub sensing_range: Option<f64>,
    /// Distance at which the goal counts as reached (metres).
    pub goal_tolerance: f64,
    /// Fixed control-stage compute time per cycle (seconds); the paper's
    /// control stage is cheap and mapping-independent.
    pub control_time_s: f64,
    /// Edge-platform emulation factor: measured compute latencies are
    /// multiplied by this before entering the velocity bound and the cycle
    /// period. The paper ran on a Jetson TX2, roughly an order of magnitude
    /// slower than a desktop core; `1.0` uses raw host timings.
    pub compute_scale: f64,
    /// When `Some(k)`, an A* global plan is computed every `k` cycles (and
    /// whenever the current plan is exhausted) and its waypoints are
    /// followed; the reactive planner remains the per-cycle fallback —
    /// MAVBench-style missions run a global planner over the map like this.
    pub global_replan_every: Option<usize>,
    /// When true, all planning queries go through the backend's published
    /// [`octocache::MapSnapshot`] (armed via
    /// [`MappingSystem::query_handle`]) instead of the locked live tree —
    /// the deployment shape where the planner runs concurrently with
    /// mapping and must never contend on the octree mutex. Snapshots are
    /// republished at every scan boundary, so planning sees the same map
    /// either way; the per-cycle snapshot publish cost lands in the mapping
    /// share of the cycle latency.
    pub plan_from_snapshot: bool,
}

impl Default for MissionConfig {
    fn default() -> Self {
        MissionConfig {
            seed: 0x5EED,
            max_cycles: 20_000,
            sensor_cols: 48,
            sensor_rows: 32,
            h_fov: 1.5,
            v_fov: 1.0,
            sensing_range: None,
            goal_tolerance: 1.0,
            control_time_s: 0.002,
            compute_scale: 1.0,
            global_replan_every: None,
            plan_from_snapshot: false,
        }
    }
}

impl MissionConfig {
    /// A small configuration for unit tests (coarse sensor, few cycles).
    pub fn tiny() -> Self {
        MissionConfig {
            sensor_cols: 16,
            sensor_rows: 12,
            max_cycles: 3_000,
            ..Default::default()
        }
    }
}

/// Metrics of one closed-loop run (the quantities plotted in Figures
/// 16–19).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissionReport {
    /// Whether the UAV reached the goal within the cycle budget.
    pub reached_goal: bool,
    /// Control cycles executed.
    pub cycles: usize,
    /// Mean end-to-end compute time per cycle (perception + planning +
    /// control), in seconds — Figure 16(a)'s metric.
    pub avg_cycle_compute_s: f64,
    /// Mean mapping-system (perception) time per cycle, seconds.
    pub avg_mapping_s: f64,
    /// Mean planning time per cycle, seconds.
    pub avg_planning_s: f64,
    /// Mean of the per-cycle maximum safe velocities, m/s.
    pub avg_velocity: f64,
    /// Simulated mission completion time, seconds — Figure 16(b)'s metric.
    pub completion_time_s: f64,
    /// Path length actually flown, metres.
    pub distance_travelled: f64,
    /// Total occupancy queries issued by the planner.
    pub planner_queries: usize,
    /// Scans shed by the backend's admission gate (0 unless the backend is
    /// configured with a memory budget or shed deadline): cycles that flew
    /// on the previous map state instead of blocking on an overloaded
    /// mapper.
    pub shed_scans: usize,
    /// Times the UAV clipped an obstacle (0 for a healthy run).
    pub collisions: usize,
    /// Cumulative mapping-backend phase times.
    #[serde(skip)]
    pub phase_times: PhaseTimes,
}

/// One cycle of a traced mission run (see [`Mission::run_traced`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Cycle index (1-based).
    pub cycle: usize,
    /// UAV position at the end of the cycle.
    pub position: [f64; 3],
    /// Velocity bound this cycle, m/s.
    pub velocity: f64,
    /// Measured compute latency this cycle, seconds (unscaled).
    pub compute_s: f64,
    /// Mapping share of the compute latency, seconds.
    pub mapping_s: f64,
    /// Planner queries issued this cycle.
    pub queries: usize,
    /// Whether the direct heading to the goal was free.
    pub direct_path: bool,
}

/// One closed-loop UAV navigation mission, generic over the mapping
/// backend.
#[derive(Debug)]
pub struct Mission {
    env: Environment,
    uav: UavModel,
    config: MissionConfig,
}

impl Mission {
    /// Creates a mission in the given environment with the given airframe.
    pub fn new(env: Environment, uav: UavModel, config: MissionConfig) -> Self {
        Mission { env, uav, config }
    }

    /// The environment.
    pub fn environment(&self) -> Environment {
        self.env
    }

    /// Runs the closed loop to completion (or the cycle cap), consuming the
    /// mapping backend.
    ///
    /// Each cycle: scan → map update (timed) → plan via map queries (timed)
    /// → velocity bound from the measured compute latency → advance the UAV.
    /// The cycle period is the larger of the sensor frame period and the
    /// compute latency, so slow mapping both lowers the velocity bound *and*
    /// reduces the update rate — the paper's coupling.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the mapping backend: a
    /// [`PipelineError::Geom`] when the flight leaves the mapped cube (which
    /// indicates a mis-sized grid for the environment), or a worker fault
    /// from the parallel backend.
    pub fn run<M: MappingSystem>(&self, map: M) -> Result<MissionReport, PipelineError> {
        Ok(self.run_traced(map, false)?.0)
    }

    /// As [`Mission::run`], additionally returning a per-cycle trace when
    /// `record` is true (empty otherwise).
    ///
    /// # Errors
    ///
    /// See [`Mission::run`].
    pub fn run_traced<M: MappingSystem>(
        &self,
        mut map: M,
        record: bool,
    ) -> Result<(MissionReport, Vec<CycleRecord>), PipelineError> {
        let scene = self.env.scene(self.config.seed);
        let sensing_range = self
            .config
            .sensing_range
            .unwrap_or(self.env.baseline_params().sensing_range);
        let sensor = DepthSensor::new(
            self.config.h_fov,
            self.config.v_fov,
            self.config.sensor_cols,
            self.config.sensor_rows,
            sensing_range,
        );
        let planner = Planner::new(PlannerConfig {
            lookahead: sensing_range,
            sample_spacing: map.grid().resolution().max(0.05),
            ..Default::default()
        });
        let global = crate::astar::AStarPlanner::new(crate::astar::AStarConfig {
            cell: map.grid().resolution().max(0.25),
            ..Default::default()
        });
        let mut global_waypoints: Vec<octocache_geom::Point3> = Vec::new();
        // Arm the backend engine's snapshot publisher up front when
        // planning reads from snapshots, so every insert_scan republishes.
        let handle: Option<QueryHandle> =
            self.config.plan_from_snapshot.then(|| map.query_handle());

        let goal = self.env.goal();
        let mut position = self.env.start();
        let frame_period = 1.0 / self.uav.sensor_fps;

        let mut sim_time = 0.0f64;
        let mut distance = 0.0f64;
        let mut cycles = 0usize;
        let mut compute_total = Duration::ZERO;
        let mut mapping_total = Duration::ZERO;
        let mut planning_total = Duration::ZERO;
        let mut velocity_sum = 0.0f64;
        let mut queries = 0usize;
        let mut shed_scans = 0usize;
        let mut collisions = 0usize;
        let mut reached = false;
        let mut trace: Vec<CycleRecord> = Vec::new();

        while cycles < self.config.max_cycles {
            cycles += 1;

            // Perception: scan the world and update the map.
            let to_goal = goal - position;
            let yaw = to_goal.y.atan2(to_goal.x);
            let pose = Pose::new(position, yaw);
            let cloud = sensor.scan(&scene, &pose, self.config.seed ^ cycles as u64);
            let t0 = Instant::now();
            // Scans go through the supervised admission gate: under memory
            // pressure or overload the backend may shed the scan, in which
            // case this cycle plans on the previous map state — the paper's
            // "stale map beats a stalled control loop" trade.
            if let ScanOutcome::Shed(_) = map.submit_scan(position, &cloud, sensing_range)? {
                shed_scans += 1;
            }
            let mapping_time = t0.elapsed();

            // Planning: global A* waypoints when configured, with the
            // reactive planner as the per-cycle validator/fallback. Queries
            // go to the scan-boundary snapshot when configured, else to the
            // live (locked) map — the two answer identically.
            let t1 = Instant::now();
            let mut snap_store;
            let mut live_store;
            let view: &mut dyn OccupancyView = match &handle {
                Some(h) => {
                    snap_store = h.snapshot();
                    &mut snap_store
                }
                None => {
                    live_store = LiveMap(&mut map);
                    &mut live_store
                }
            };
            let plan = {
                let mut target = goal;
                if let Some(k) = self.config.global_replan_every {
                    if cycles % k.max(1) == 1 || global_waypoints.is_empty() {
                        global_waypoints.clear();
                        if let Some(path) = global.plan_on(&mut *view, position, goal) {
                            queries += path.queries;
                            let smoothed = global.smooth_on(&mut *view, &path);
                            queries += smoothed.queries - path.queries;
                            global_waypoints = smoothed.waypoints;
                            global_waypoints.reverse(); // pop() from the front
                        }
                    }
                    // Drop waypoints already reached.
                    while let Some(&wp) = global_waypoints.last() {
                        if position.distance(wp) <= self.config.goal_tolerance {
                            global_waypoints.pop();
                        } else {
                            break;
                        }
                    }
                    if let Some(&wp) = global_waypoints.last() {
                        target = wp;
                    }
                }
                planner.plan_on(&mut *view, position, target)
            };
            let planning_time = t1.elapsed();
            queries += plan.queries;

            let compute =
                mapping_time + planning_time + Duration::from_secs_f64(self.config.control_time_s);
            compute_total += compute;
            mapping_total += mapping_time;
            planning_total += planning_time;

            // Velocity bound from the measured latency (paper §5.1), under
            // the edge-platform emulation factor.
            let effective_compute = compute.as_secs_f64() * self.config.compute_scale;
            let v = velocity::uav_max_velocity(&self.uav, sensing_range, effective_compute);
            velocity_sum += v;

            // Advance: the cycle period is gated by compute when it exceeds
            // the frame period.
            let cycle_period = frame_period.max(effective_compute);
            sim_time += cycle_period;
            let to_wp = plan.waypoint - position;
            let reach = to_wp.norm();
            if reach > 1e-9 {
                let step = (v * cycle_period).min(reach);
                position += to_wp * (step / reach);
                distance += step;
            }
            if scene.is_inside_obstacle(position) {
                collisions += 1;
            }
            if record {
                trace.push(CycleRecord {
                    cycle: cycles,
                    position: position.into(),
                    velocity: v,
                    compute_s: compute.as_secs_f64(),
                    mapping_s: mapping_time.as_secs_f64(),
                    queries: plan.queries,
                    direct_path: plan.direct,
                });
            }
            if position.distance(goal) <= self.config.goal_tolerance {
                reached = true;
                break;
            }
        }

        let n = cycles.max(1) as f64;
        map.finish();
        let report = MissionReport {
            reached_goal: reached,
            cycles,
            avg_cycle_compute_s: compute_total.as_secs_f64() / n,
            avg_mapping_s: mapping_total.as_secs_f64() / n,
            avg_planning_s: planning_total.as_secs_f64() / n,
            avg_velocity: velocity_sum / n,
            completion_time_s: sim_time,
            distance_travelled: distance,
            planner_queries: queries,
            shed_scans,
            collisions,
            phase_times: map.phase_times(),
        };
        Ok((report, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octocache::pipeline::OctoMapSystem;
    use octocache::{CacheConfig, SerialOctoCache};
    use octocache_geom::Point3;
    use octocache_geom::VoxelGrid;
    use octocache_octomap::OccupancyParams;

    fn octomap_backend(env: Environment) -> OctoMapSystem {
        let p = env.baseline_params();
        OctoMapSystem::new(
            VoxelGrid::new(p.resolution, 16).unwrap(),
            OccupancyParams::default(),
        )
    }

    #[test]
    fn openland_mission_completes_with_octomap() {
        let mission = Mission::new(
            Environment::Openland,
            UavModel::asctec_pelican(),
            MissionConfig::tiny(),
        );
        let report = mission.run(octomap_backend(Environment::Openland)).unwrap();
        assert!(report.reached_goal, "did not reach goal: {report:?}");
        assert_eq!(report.collisions, 0, "collided: {report:?}");
        assert!(report.avg_velocity > 0.5);
        assert!(report.distance_travelled >= 99.0 - 1.0);
        assert!(report.completion_time_s.is_finite());
        assert!(report.planner_queries > 0);
    }

    #[test]
    fn room_mission_completes_with_octocache() {
        let grid = VoxelGrid::new(Environment::Room.baseline_params().resolution, 16).unwrap();
        let map = SerialOctoCache::new(
            grid,
            OccupancyParams::default(),
            CacheConfig::builder()
                .num_buckets(1 << 12)
                .tau(4)
                .build()
                .unwrap(),
        );
        let mission = Mission::new(
            Environment::Room,
            UavModel::asctec_pelican(),
            MissionConfig::tiny(),
        );
        let report = mission.run(map).unwrap();
        assert!(report.reached_goal, "{report:?}");
        assert_eq!(report.collisions, 0);
    }

    #[test]
    fn supervised_mission_completes_without_shedding() {
        // A supervised backend (memory budget + restart budget + deadline)
        // flying a calm mission must behave exactly like an unsupervised
        // one: goal reached, nothing shed, no collisions.
        let grid = VoxelGrid::new(Environment::Room.baseline_params().resolution, 16).unwrap();
        let mut builder = CacheConfig::builder();
        builder
            .num_buckets(1 << 12)
            .tau(4)
            .mem_budget(1 << 30)
            .max_restarts(2)
            .shed_deadline(std::time::Duration::from_secs(5));
        let map = SerialOctoCache::new(grid, OccupancyParams::default(), builder.build().unwrap());
        let mission = Mission::new(
            Environment::Room,
            UavModel::asctec_pelican(),
            MissionConfig::tiny(),
        );
        let report = mission.run(map).unwrap();
        assert!(report.reached_goal, "{report:?}");
        assert_eq!(report.shed_scans, 0, "{report:?}");
        assert_eq!(report.collisions, 0);
    }

    #[test]
    fn spark_flies_slower_than_pelican() {
        let cfg = MissionConfig::tiny();
        let env = Environment::Openland;
        let pelican = Mission::new(env, UavModel::asctec_pelican(), cfg)
            .run(octomap_backend(env))
            .unwrap();
        let spark = Mission::new(env, UavModel::dji_spark(), cfg)
            .run(octomap_backend(env))
            .unwrap();
        assert!(pelican.avg_velocity > spark.avg_velocity);
        assert!(pelican.completion_time_s < spark.completion_time_s);
    }

    #[test]
    fn global_planner_mission_completes() {
        let config = MissionConfig {
            global_replan_every: Some(20),
            ..MissionConfig::tiny()
        };
        let mission = Mission::new(Environment::Factory, UavModel::asctec_pelican(), config);
        let report = mission.run(octomap_backend(Environment::Factory)).unwrap();
        assert!(report.reached_goal, "{report:?}");
        assert_eq!(report.collisions, 0);
        // A* queries show up in the totals.
        assert!(report.planner_queries > 0);
    }

    #[test]
    fn snapshot_planned_mission_completes() {
        // Planning from published snapshots must be behaviourally sound:
        // the mission reaches the goal collision-free, exactly as when
        // planning against the locked live map (the snapshot equals the
        // live map at every scan boundary — see the core query-consistency
        // battery).
        let config = MissionConfig {
            plan_from_snapshot: true,
            global_replan_every: Some(25),
            ..MissionConfig::tiny()
        };
        let mission = Mission::new(Environment::Openland, UavModel::asctec_pelican(), config);
        let report = mission.run(octomap_backend(Environment::Openland)).unwrap();
        assert!(report.reached_goal, "{report:?}");
        assert_eq!(report.collisions, 0, "{report:?}");
        assert!(report.planner_queries > 0);
    }

    #[test]
    fn shared_recorder_captures_per_scan_telemetry_through_a_mission() {
        use octocache::SharedRecorder;

        // The mission consumes the backend by value; a SharedRecorder clone
        // attached beforehand is how callers read the trace back out.
        let grid = VoxelGrid::new(Environment::Openland.baseline_params().resolution, 16).unwrap();
        let mut map = SerialOctoCache::new(
            grid,
            OccupancyParams::default(),
            CacheConfig::builder()
                .num_buckets(1 << 12)
                .tau(4)
                .build()
                .unwrap(),
        );
        let recorder = SharedRecorder::new();
        octocache::MappingSystem::set_recorder(&mut map, Box::new(recorder.clone()));

        let mission = Mission::new(
            Environment::Openland,
            UavModel::asctec_pelican(),
            MissionConfig::tiny(),
        );
        let report = mission.run(map).unwrap();

        let records = recorder.records();
        // One ScanRecord per mapping cycle, in order.
        assert_eq!(records.len(), report.cycles);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.backend, "octocache-serial");
            assert!(rec.observations > 0);
        }
        // Duplicated voxel observations produce cache hits over the flight.
        assert!(records.iter().map(|r| r.cache_hits).sum::<u64>() > 0);
    }

    #[test]
    fn traced_run_records_every_cycle() {
        let mission = Mission::new(
            Environment::Openland,
            UavModel::asctec_pelican(),
            MissionConfig::tiny(),
        );
        let (report, trace) = mission
            .run_traced(octomap_backend(Environment::Openland), true)
            .unwrap();
        assert_eq!(trace.len(), report.cycles);
        // Cycles are 1-based and consecutive.
        for (i, rec) in trace.iter().enumerate() {
            assert_eq!(rec.cycle, i + 1);
            assert!(rec.velocity > 0.0);
            assert!(rec.compute_s >= rec.mapping_s);
        }
        // The UAV makes overall progress toward the goal.
        let goal = Environment::Openland.goal();
        let first = Point3::from(trace.first().unwrap().position);
        let last = Point3::from(trace.last().unwrap().position);
        assert!(last.distance(goal) < first.distance(goal));
        // Untraced runs return an empty trace.
        let (_, empty) = mission
            .run_traced(octomap_backend(Environment::Openland), false)
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn report_averages_are_consistent() {
        let mission = Mission::new(
            Environment::Openland,
            UavModel::asctec_pelican(),
            MissionConfig::tiny(),
        );
        let report = mission.run(octomap_backend(Environment::Openland)).unwrap();
        assert!(report.avg_cycle_compute_s >= report.avg_mapping_s);
        assert!(report.avg_cycle_compute_s >= report.avg_planning_s);
        assert!(report.cycles > 0);
    }
}
