use octocache::{LiveMap, MappingSystem, OccupancyView};
use octocache_geom::Point3;

/// Configuration of the collision-checking waypoint planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// How far ahead a candidate segment is validated (metres); typically
    /// the sensing range.
    pub lookahead: f64,
    /// Spacing of occupancy queries along a candidate segment (metres);
    /// typically the mapping resolution.
    pub sample_spacing: f64,
    /// Number of detour headings tried on *each* side of the direct one.
    pub detour_steps: usize,
    /// Angular spacing between detour headings (radians).
    pub detour_angle: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            lookahead: 5.0,
            sample_spacing: 0.25,
            detour_steps: 6,
            detour_angle: 0.3,
        }
    }
}

/// The planner's decision for one cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanOutcome {
    /// The waypoint to fly toward (equal to the current position when
    /// every candidate heading is blocked).
    pub waypoint: Point3,
    /// Occupancy queries issued while validating candidates.
    pub queries: usize,
    /// Whether the direct heading to the goal was free.
    pub direct: bool,
}

/// A simple reactive planner: validate the straight segment toward the goal
/// with occupancy queries; when blocked, fan out alternate headings left and
/// right until a free segment is found (the paper's planning stage —
/// "checking voxels along potential trajectories for obstacles", §2.1).
///
/// Unknown space is treated as free (the optimistic convention MAVBench
/// uses at mission start, when everything is unknown).
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// Creates a planner.
    pub fn new(config: PlannerConfig) -> Self {
        Planner { config }
    }

    /// Plans one step from `position` toward `goal`, querying `map`
    /// directly (the locked read path). Equivalent to
    /// [`Planner::plan_on`] over [`LiveMap`].
    pub fn plan<M: MappingSystem + ?Sized>(
        &self,
        map: &mut M,
        position: Point3,
        goal: Point3,
    ) -> PlanOutcome {
        self.plan_on(&mut LiveMap(map), position, goal)
    }

    /// Plans one step against any [`OccupancyView`] — a live backend via
    /// [`LiveMap`], or a published
    /// [`MapSnapshot`](octocache::MapSnapshot)/[`QueryHandle`](octocache::QueryHandle)
    /// so planning never contends with the mapping thread's octree locks.
    pub fn plan_on<V: OccupancyView + ?Sized>(
        &self,
        map: &mut V,
        position: Point3,
        goal: Point3,
    ) -> PlanOutcome {
        let mut queries = 0usize;
        let to_goal = goal - position;
        let distance = to_goal.norm();
        if distance < 1e-9 {
            return PlanOutcome {
                waypoint: goal,
                queries,
                direct: true,
            };
        }
        let reach = distance.min(self.config.lookahead);
        let base_yaw = to_goal.y.atan2(to_goal.x);

        // Candidate headings: direct first, then alternating left/right.
        let mut candidates = Vec::with_capacity(1 + 2 * self.config.detour_steps);
        candidates.push(0.0);
        for i in 1..=self.config.detour_steps {
            let a = i as f64 * self.config.detour_angle;
            candidates.push(a);
            candidates.push(-a);
        }

        for (idx, offset) in candidates.iter().enumerate() {
            let yaw = base_yaw + offset;
            // Detours keep the goal's altitude plane.
            let dir = Point3::new(yaw.cos(), yaw.sin(), to_goal.z / distance);
            let end = position + dir * reach;
            if self.segment_free(map, position, end, &mut queries) {
                return PlanOutcome {
                    waypoint: end,
                    queries,
                    direct: idx == 0,
                };
            }
        }
        PlanOutcome {
            waypoint: position,
            queries,
            direct: false,
        }
    }

    /// Validates a segment with sampled occupancy queries; occupied blocks,
    /// unknown passes.
    fn segment_free<V: OccupancyView + ?Sized>(
        &self,
        map: &mut V,
        from: Point3,
        to: Point3,
        queries: &mut usize,
    ) -> bool {
        let d = to - from;
        let len = d.norm();
        let steps = (len / self.config.sample_spacing).ceil().max(1.0) as usize;
        for i in 1..=steps {
            let p = from + d * (i as f64 / steps as f64);
            *queries += 1;
            match map.is_occupied_at(p) {
                Ok(Some(true)) => return false,
                Ok(_) => {}
                Err(_) => return false, // outside the map: treat as blocked
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octocache::pipeline::OctoMapSystem;
    use octocache_geom::VoxelGrid;
    use octocache_octomap::OccupancyParams;

    fn empty_map() -> OctoMapSystem {
        OctoMapSystem::new(VoxelGrid::new(0.25, 8).unwrap(), OccupancyParams::default())
    }

    /// Builds a map with a wall at x = 4 spanning y in [-3, 3].
    fn walled_map() -> OctoMapSystem {
        let mut map = empty_map();
        let cloud: Vec<Point3> = (-30..=30)
            .flat_map(|y| (0..=8).map(move |z| Point3::new(4.0, y as f64 * 0.1, z as f64 * 0.25)))
            .collect();
        map.insert_scan(Point3::new(0.0, 0.0, 1.0), &cloud, 20.0)
            .unwrap();
        map
    }

    #[test]
    fn unknown_space_is_traversable() {
        let mut map = empty_map();
        let planner = Planner::default();
        let out = planner.plan(
            &mut map,
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(10.0, 0.0, 1.0),
        );
        assert!(out.direct);
        assert!(out.queries > 0);
        // Waypoint lies on the direct line, lookahead-limited.
        assert!((out.waypoint.y).abs() < 1e-9);
        assert!((out.waypoint.x - 5.0).abs() < 1e-9);
    }

    #[test]
    fn wall_forces_detour() {
        let mut map = walled_map();
        let planner = Planner::default();
        let pos = Point3::new(0.0, 0.0, 1.0);
        let goal = Point3::new(10.0, 0.0, 1.0);
        let out = planner.plan(&mut map, pos, goal);
        assert!(!out.direct, "wall at x=4 must block the direct heading");
        // The detour waypoint must not cross the known wall.
        assert!(out.waypoint != pos, "planner found no way around");
        assert!(
            out.waypoint.y.abs() > 1.0,
            "detour should veer sideways, got {}",
            out.waypoint
        );
    }

    #[test]
    fn fully_enclosed_start_stalls() {
        let mut map = empty_map();
        // Occupy a ring of voxels around the start at radius ~1 m.
        let mut cloud = Vec::new();
        for i in 0..128 {
            let a = i as f64 / 128.0 * std::f64::consts::TAU;
            for r in [1.0, 1.2, 1.4] {
                for z in [0.6, 1.0, 1.4] {
                    cloud.push(Point3::new(a.cos() * r, a.sin() * r, z));
                }
            }
        }
        map.insert_scan(Point3::new(0.0, 0.0, 1.0), &cloud, 10.0)
            .unwrap();
        let planner = Planner::new(PlannerConfig {
            lookahead: 4.0,
            ..Default::default()
        });
        let pos = Point3::new(0.0, 0.0, 1.0);
        let out = planner.plan(&mut map, pos, Point3::new(10.0, 0.0, 1.0));
        assert_eq!(out.waypoint, pos, "enclosed start must stall");
    }

    #[test]
    fn goal_within_reach_is_targeted_exactly() {
        let mut map = empty_map();
        let planner = Planner::default();
        let goal = Point3::new(2.0, 0.5, 1.0);
        let out = planner.plan(&mut map, Point3::new(0.0, 0.0, 1.0), goal);
        assert!((out.waypoint - goal).norm() < 1e-9);
    }

    #[test]
    fn query_count_scales_with_lookahead() {
        let mut map = empty_map();
        let short = Planner::new(PlannerConfig {
            lookahead: 2.0,
            ..Default::default()
        });
        let long = Planner::new(PlannerConfig {
            lookahead: 8.0,
            ..Default::default()
        });
        let pos = Point3::new(0.0, 0.0, 1.0);
        let goal = Point3::new(20.0, 0.0, 1.0);
        let a = short.plan(&mut map, pos, goal).queries;
        let b = long.plan(&mut map, pos, goal).queries;
        assert!(b > a);
    }
}
