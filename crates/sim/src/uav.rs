use serde::{Deserialize, Serialize};

/// A UAV airframe model: the quantities the maximum-safe-velocity bound
/// needs (paper §5.1 / Krishnan et al.).
///
/// The paper lists "rotor pull power" as 3600/588 for the two airframes;
/// read as gram-force these give thrust-to-weight ratios of ≈ 1.9 (Pelican)
/// and ≈ 1.7 (Spark), which match the published airframes, so that is the
/// interpretation used here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UavModel {
    /// Airframe name.
    pub name: &'static str,
    /// Take-off mass in kilograms.
    pub mass_kg: f64,
    /// Maximum collective rotor thrust in newtons.
    pub max_thrust_n: f64,
    /// Sensor frame rate in Hz (both paper UAVs carry 50 Hz sensors).
    pub sensor_fps: f64,
}

const G: f64 = 9.81;

impl UavModel {
    /// AscTec Pelican: 1872 g, 3600 gf rotor pull, 50 Hz sensor.
    pub fn asctec_pelican() -> Self {
        UavModel {
            name: "asctec-pelican",
            mass_kg: 1.872,
            max_thrust_n: 3.600 * G, // 3600 gf
            sensor_fps: 50.0,
        }
    }

    /// DJI Spark: 350 g, 588 gf rotor pull, 50 Hz sensor.
    pub fn dji_spark() -> Self {
        UavModel {
            name: "dji-spark",
            mass_kg: 0.350,
            max_thrust_n: 0.588 * G, // 588 gf
            sensor_fps: 50.0,
        }
    }

    /// Both paper airframes.
    pub fn all() -> [UavModel; 2] {
        [UavModel::asctec_pelican(), UavModel::dji_spark()]
    }

    /// Thrust-to-weight ratio.
    pub fn thrust_to_weight(&self) -> f64 {
        self.max_thrust_n / (self.mass_kg * G)
    }

    /// Maximum braking deceleration (m/s²): the thrust margin beyond
    /// hovering, `(T − m·g)/m`, floored at a small positive value so the
    /// model stays defined for underpowered configurations.
    pub fn max_deceleration(&self) -> f64 {
        ((self.max_thrust_n - self.mass_kg * G) / self.mass_kg).max(0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pelican_is_more_powerful_than_spark() {
        let p = UavModel::asctec_pelican();
        let s = UavModel::dji_spark();
        assert!(p.thrust_to_weight() > s.thrust_to_weight());
        assert!(p.max_deceleration() > s.max_deceleration());
    }

    #[test]
    fn thrust_to_weight_in_plausible_band() {
        for uav in UavModel::all() {
            let tw = uav.thrust_to_weight();
            assert!((1.2..2.5).contains(&tw), "{}: {tw}", uav.name);
        }
    }

    #[test]
    fn sensor_fps_matches_paper() {
        for uav in UavModel::all() {
            assert_eq!(uav.sensor_fps, 50.0);
        }
    }
}
