use octocache_datasets::Scene;
use octocache_geom::{Aabb, Point3};
use serde::{Deserialize, Serialize};

/// Baseline sensing/mapping parameters for one environment (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineParams {
    /// Sensing range in metres.
    pub sensing_range: f64,
    /// Mapping resolution in metres.
    pub resolution: f64,
}

/// The four MAVBench simulation environments of the paper's Figure 15.
///
/// Task difficulty ranks *Room > Factory > Farm > Open land* (§5.1); goal
/// distances are the paper's (100 m, 50 m, 12 m, 70 m). The `-RT` baselines
/// use finer resolutions; the paper's values (0.04–0.01 m) are scaled up 5×
/// here so the laptop-scale benches finish — the relative ordering across
/// environments is preserved and the scale factor is reported by the
/// benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Structured outdoor environment, goal 100 m away.
    Openland,
    /// Unstructured outdoor environment, goal 50 m away.
    Farm,
    /// Indoor environment, goal 12 m away.
    Room,
    /// Mixed outdoor/indoor environment, goal 70 m away.
    Factory,
}

impl Environment {
    /// All environments in the paper's presentation order.
    pub const ALL: [Environment; 4] = [
        Environment::Openland,
        Environment::Farm,
        Environment::Room,
        Environment::Factory,
    ];

    /// Stable short name.
    pub fn name(&self) -> &'static str {
        match self {
            Environment::Openland => "openland",
            Environment::Farm => "farm",
            Environment::Room => "room",
            Environment::Factory => "factory",
        }
    }

    /// The paper's goal distance for this environment (metres).
    pub fn goal_distance(&self) -> f64 {
        match self {
            Environment::Openland => 100.0,
            Environment::Farm => 50.0,
            Environment::Room => 12.0,
            Environment::Factory => 70.0,
        }
    }

    /// Baseline <sensing range, mapping resolution> for the OctoMap vs
    /// OctoCache comparison (§5.1).
    pub fn baseline_params(&self) -> BaselineParams {
        match self {
            Environment::Openland => BaselineParams {
                sensing_range: 8.0,
                resolution: 1.0,
            },
            Environment::Farm => BaselineParams {
                sensing_range: 4.5,
                resolution: 0.3,
            },
            Environment::Room => BaselineParams {
                sensing_range: 3.0,
                resolution: 0.15,
            },
            Environment::Factory => BaselineParams {
                sensing_range: 6.0,
                resolution: 0.5,
            },
        }
    }

    /// Baseline parameters for the `-RT` comparison. The paper's RT
    /// resolutions (0.04 / 0.02 / 0.01 / 0.03 m) are scaled up 5× to stay
    /// laptop-sized (0.2 / 0.1 / 0.05 / 0.15 m).
    pub fn baseline_params_rt(&self) -> BaselineParams {
        match self {
            Environment::Openland => BaselineParams {
                sensing_range: 8.0,
                resolution: 0.2,
            },
            Environment::Farm => BaselineParams {
                sensing_range: 4.5,
                resolution: 0.1,
            },
            Environment::Room => BaselineParams {
                sensing_range: 3.0,
                resolution: 0.05,
            },
            Environment::Factory => BaselineParams {
                sensing_range: 6.0,
                resolution: 0.15,
            },
        }
    }

    /// The UAV's start position.
    pub fn start(&self) -> Point3 {
        Point3::new(0.0, 0.0, self.flight_altitude())
    }

    /// The mission goal position.
    pub fn goal(&self) -> Point3 {
        Point3::new(self.goal_distance(), 0.0, self.flight_altitude())
    }

    /// Cruise altitude (indoor environments fly lower).
    pub fn flight_altitude(&self) -> f64 {
        match self {
            Environment::Room => 1.2,
            Environment::Factory => 1.8,
            _ => 2.5,
        }
    }

    /// Builds the obstacle scene, deterministically from `seed`.
    pub fn scene(&self, seed: u64) -> Scene {
        let margin = 8.0;
        let d = self.goal_distance();
        match self {
            Environment::Openland => {
                // Structured outdoor: a sparse line of pylons beside the path.
                let bounds = Aabb::new(
                    Point3::new(-margin, -20.0, 0.0),
                    Point3::new(d + margin, 20.0, 12.0),
                );
                let mut scene = Scene::new(bounds);
                scene.add_floor(0.0, 0.5);
                scene.scatter_boxes(10, 0.5, 2.0, &[self.corridor_clear()], seed);
                scene
            }
            Environment::Farm => {
                // Unstructured outdoor: dense crops/machinery clutter, low
                // ceiling so the sensor always has surfaces in view.
                let bounds = Aabb::new(
                    Point3::new(-margin, -15.0, 0.0),
                    Point3::new(d + margin, 15.0, 5.0),
                );
                let mut scene = Scene::new(bounds);
                scene.add_floor(0.0, 0.5);
                scene.scatter_boxes(260, 0.5, 3.0, &[self.corridor_clear()], seed ^ 0xFA_12);
                scene
            }
            Environment::Room => {
                // Indoor: walls all around plus furniture.
                let bounds =
                    Aabb::new(Point3::new(-2.0, -4.0, 0.0), Point3::new(d + 2.0, 4.0, 2.8));
                let mut scene = Scene::new(bounds);
                scene.add_walls(0.3);
                scene.add_floor(0.0, 0.3);
                scene.scatter_boxes(10, 0.3, 1.2, &[self.corridor_clear()], seed ^ 0x0B0E);
                scene
            }
            Environment::Factory => {
                // Mixed: an open yard leading into a machine hall.
                let bounds = Aabb::new(
                    Point3::new(-margin, -12.0, 0.0),
                    Point3::new(d + margin, 12.0, 7.0),
                );
                let mut scene = Scene::new(bounds);
                scene.add_floor(0.0, 0.5);
                // Hall walls over the second half of the course.
                scene.add_box(Aabb::new(
                    Point3::new(d / 2.0, -12.0, 0.0),
                    Point3::new(d / 2.0 + 0.4, -2.0, 7.0),
                ));
                scene.add_box(Aabb::new(
                    Point3::new(d / 2.0, 2.0, 0.0),
                    Point3::new(d / 2.0 + 0.4, 12.0, 7.0),
                ));
                scene.scatter_boxes(25, 0.6, 3.0, &[self.corridor_clear()], seed ^ 0xFAC7);
                scene
            }
        }
    }

    /// A tube around the nominal flight path kept free of obstacles so every
    /// mission is completable (the paper's scenarios are all solvable).
    fn corridor_clear(&self) -> Aabb {
        let z = self.flight_altitude();
        Aabb::new(
            Point3::new(-2.0, -1.6, z - 1.0),
            Point3::new(self.goal_distance() + 2.0, 1.6, z + 1.0),
        )
    }
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_distances_match_paper() {
        assert_eq!(Environment::Openland.goal_distance(), 100.0);
        assert_eq!(Environment::Farm.goal_distance(), 50.0);
        assert_eq!(Environment::Room.goal_distance(), 12.0);
        assert_eq!(Environment::Factory.goal_distance(), 70.0);
    }

    #[test]
    fn baseline_params_match_paper() {
        let p = Environment::Openland.baseline_params();
        assert_eq!((p.sensing_range, p.resolution), (8.0, 1.0));
        let p = Environment::Room.baseline_params();
        assert_eq!((p.sensing_range, p.resolution), (3.0, 0.15));
    }

    #[test]
    fn rt_resolutions_are_finer() {
        for env in Environment::ALL {
            assert!(
                env.baseline_params_rt().resolution < env.baseline_params().resolution,
                "{env}"
            );
        }
    }

    #[test]
    fn scenes_keep_flight_corridor_clear() {
        for env in Environment::ALL {
            let scene = env.scene(7);
            let start = env.start();
            let goal = env.goal();
            // The direct line may still be checked by the planner, but the
            // corridor tube must contain no obstacle *centres*; verify the
            // start and goal are free.
            assert!(!scene.is_inside_obstacle(start), "{env} start blocked");
            assert!(!scene.is_inside_obstacle(goal), "{env} goal blocked");
            assert!(
                !scene.segment_blocked(start, goal),
                "{env} direct path blocked by construction"
            );
        }
    }

    #[test]
    fn scenes_have_obstacles_to_see() {
        for env in Environment::ALL {
            let scene = env.scene(7);
            assert!(
                scene.obstacles().len() >= 5,
                "{env} too empty: {}",
                scene.obstacles().len()
            );
        }
    }

    #[test]
    fn scene_deterministic_per_seed() {
        let a = Environment::Farm.scene(1);
        let b = Environment::Farm.scene(1);
        assert_eq!(a.obstacles(), b.obstacles());
        let c = Environment::Farm.scene(2);
        assert_ne!(a.obstacles(), c.obstacles());
    }
}
