//! Grid-lattice A* path planning over an occupancy map.
//!
//! MAVBench's planning stage runs sampling/graph-based motion planners that
//! issue large numbers of occupancy queries (the workload the paper's
//! planning stage models). This module provides a classic 8-connected A*
//! over a horizontal lattice with collision checks against any
//! [`MappingSystem`], plus line-of-sight path smoothing. Unknown space is
//! traversable (the optimistic convention, like the reactive
//! [`Planner`](crate::Planner)).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use octocache::{LiveMap, MappingSystem, OccupancyView};
use octocache_geom::Point3;

/// Configuration of the A* lattice planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AStarConfig {
    /// Lattice cell edge (metres); typically ≥ the mapping resolution.
    pub cell: f64,
    /// Abort after this many node expansions (guards unreachable goals).
    pub max_expansions: usize,
    /// Half-width of the robot body for collision checks (metres): a cell
    /// is blocked when any sampled point of the body disc is occupied.
    pub body_radius: f64,
}

impl Default for AStarConfig {
    fn default() -> Self {
        AStarConfig {
            cell: 0.5,
            max_expansions: 200_000,
            body_radius: 0.3,
        }
    }
}

/// A planned path with its search statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedPath {
    /// Waypoints from start to goal inclusive.
    pub waypoints: Vec<Point3>,
    /// A* node expansions performed.
    pub expansions: usize,
    /// Occupancy queries issued.
    pub queries: usize,
}

impl PlannedPath {
    /// Total metric length of the path.
    pub fn length(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }
}

/// Integer lattice coordinate (relative to the start cell).
type Cell = (i32, i32);

#[derive(Debug, PartialEq)]
struct QueueEntry {
    f_score: f64,
    cell: Cell,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f_score.
        other
            .f_score
            .partial_cmp(&self.f_score)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The A* lattice planner. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct AStarPlanner {
    config: AStarConfig,
}

impl AStarPlanner {
    /// Creates a planner.
    pub fn new(config: AStarConfig) -> Self {
        AStarPlanner { config }
    }

    /// Plans a path from `start` to `goal` at `start.z` altitude, querying
    /// the backend directly. Equivalent to [`AStarPlanner::plan_on`] over
    /// [`LiveMap`].
    ///
    /// Returns `None` when no path exists within the expansion budget.
    pub fn plan<M: MappingSystem + ?Sized>(
        &self,
        map: &mut M,
        start: Point3,
        goal: Point3,
    ) -> Option<PlannedPath> {
        self.plan_on(&mut LiveMap(map), start, goal)
    }

    /// Plans against any [`OccupancyView`] — in particular a published
    /// [`MapSnapshot`](octocache::MapSnapshot), so the (query-heavy) search
    /// runs without touching the mapping backend's octree locks.
    ///
    /// Returns `None` when no path exists within the expansion budget.
    pub fn plan_on<V: OccupancyView + ?Sized>(
        &self,
        map: &mut V,
        start: Point3,
        goal: Point3,
    ) -> Option<PlannedPath> {
        let cell = self.config.cell;
        let altitude = start.z;
        let to_cell = |p: Point3| -> Cell {
            (
                ((p.x - start.x) / cell).round() as i32,
                ((p.y - start.y) / cell).round() as i32,
            )
        };
        let to_point = |c: Cell| -> Point3 {
            Point3::new(
                start.x + c.0 as f64 * cell,
                start.y + c.1 as f64 * cell,
                altitude,
            )
        };
        let goal_cell = to_cell(goal);
        let heuristic = |c: Cell| -> f64 {
            let dx = (c.0 - goal_cell.0) as f64;
            let dy = (c.1 - goal_cell.1) as f64;
            (dx * dx + dy * dy).sqrt() * cell
        };

        let mut queries = 0usize;
        let mut blocked_cache: HashMap<Cell, bool> = HashMap::new();
        let mut is_blocked = |map: &mut V, c: Cell| -> bool {
            if let Some(&b) = blocked_cache.get(&c) {
                return b;
            }
            let center = to_point(c);
            let r = self.config.body_radius;
            let samples = [
                center,
                center + Point3::new(r, 0.0, 0.0),
                center + Point3::new(-r, 0.0, 0.0),
                center + Point3::new(0.0, r, 0.0),
                center + Point3::new(0.0, -r, 0.0),
            ];
            let mut blocked = false;
            for p in samples {
                queries += 1;
                match map.is_occupied_at(p) {
                    Ok(Some(true)) => {
                        blocked = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(_) => {
                        blocked = true; // outside the map: treat as blocked
                        break;
                    }
                }
            }
            blocked_cache.insert(c, blocked);
            blocked
        };

        let start_cell = (0, 0);
        if is_blocked(map, start_cell) || is_blocked(map, goal_cell) {
            return None;
        }

        let mut open = BinaryHeap::new();
        let mut g_score: HashMap<Cell, f64> = HashMap::new();
        let mut came_from: HashMap<Cell, Cell> = HashMap::new();
        g_score.insert(start_cell, 0.0);
        open.push(QueueEntry {
            f_score: heuristic(start_cell),
            cell: start_cell,
        });

        const DIAG: f64 = std::f64::consts::SQRT_2;
        let neighbours: [(i32, i32, f64); 8] = [
            (1, 0, 1.0),
            (-1, 0, 1.0),
            (0, 1, 1.0),
            (0, -1, 1.0),
            (1, 1, DIAG),
            (1, -1, DIAG),
            (-1, 1, DIAG),
            (-1, -1, DIAG),
        ];

        let mut expansions = 0usize;
        while let Some(QueueEntry { cell: current, .. }) = open.pop() {
            if current == goal_cell {
                // Reconstruct.
                let mut path = vec![goal];
                let mut c = current;
                while let Some(&prev) = came_from.get(&c) {
                    path.push(to_point(prev));
                    c = prev;
                }
                path.reverse();
                path[0] = start;
                return Some(PlannedPath {
                    waypoints: path,
                    expansions,
                    queries,
                });
            }
            expansions += 1;
            if expansions > self.config.max_expansions {
                return None;
            }
            let current_g = g_score[&current];
            for &(dx, dy, step) in &neighbours {
                let next = (current.0 + dx, current.1 + dy);
                if is_blocked(map, next) {
                    continue;
                }
                let tentative = current_g + step * cell;
                if tentative < *g_score.get(&next).unwrap_or(&f64::INFINITY) {
                    g_score.insert(next, tentative);
                    came_from.insert(next, current);
                    open.push(QueueEntry {
                        f_score: tentative + heuristic(next),
                        cell: next,
                    });
                }
            }
        }
        None
    }

    /// Shortcut smoothing: greedily replaces waypoint chains with straight
    /// segments that pass the same collision check. Equivalent to
    /// [`AStarPlanner::smooth_on`] over [`LiveMap`].
    pub fn smooth<M: MappingSystem + ?Sized>(
        &self,
        map: &mut M,
        path: &PlannedPath,
    ) -> PlannedPath {
        self.smooth_on(&mut LiveMap(map), path)
    }

    /// As [`AStarPlanner::smooth`], against any [`OccupancyView`].
    pub fn smooth_on<V: OccupancyView + ?Sized>(
        &self,
        map: &mut V,
        path: &PlannedPath,
    ) -> PlannedPath {
        let wp = &path.waypoints;
        if wp.len() <= 2 {
            return path.clone();
        }
        let mut queries = 0usize;
        let mut out = vec![wp[0]];
        let mut i = 0usize;
        while i + 1 < wp.len() {
            // Find the farthest j reachable in a straight free segment.
            let mut best = i + 1;
            for j in (i + 2..wp.len()).rev() {
                if self.segment_free(map, wp[i], wp[j], &mut queries) {
                    best = j;
                    break;
                }
            }
            out.push(wp[best]);
            i = best;
        }
        PlannedPath {
            waypoints: out,
            expansions: path.expansions,
            queries: path.queries + queries,
        }
    }

    fn segment_free<V: OccupancyView + ?Sized>(
        &self,
        map: &mut V,
        a: Point3,
        b: Point3,
        queries: &mut usize,
    ) -> bool {
        let d = b - a;
        let len = d.norm();
        let steps = (len / (self.config.cell * 0.5)).ceil().max(1.0) as usize;
        for s in 1..=steps {
            let p = a + d * (s as f64 / steps as f64);
            *queries += 1;
            match map.is_occupied_at(p) {
                Ok(Some(true)) | Err(_) => return false,
                Ok(_) => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octocache::pipeline::OctoMapSystem;
    use octocache_geom::VoxelGrid;
    use octocache_octomap::OccupancyParams;

    fn empty_map() -> OctoMapSystem {
        OctoMapSystem::new(VoxelGrid::new(0.25, 8).unwrap(), OccupancyParams::default())
    }

    /// A map with a wall at x = 5 spanning y in [-4, 4], z in [0, 2.5].
    fn walled_map() -> OctoMapSystem {
        let mut map = empty_map();
        let cloud: Vec<Point3> = (-16..=16)
            .flat_map(|y| (0..=10).map(move |z| Point3::new(5.0, y as f64 * 0.25, z as f64 * 0.25)))
            .collect();
        for origin in [Point3::new(1.0, 0.0, 1.0), Point3::new(2.0, 1.0, 1.0)] {
            map.insert_scan(origin, &cloud, 20.0).unwrap();
        }
        map
    }

    #[test]
    fn straight_path_in_empty_space() {
        let mut map = empty_map();
        let planner = AStarPlanner::default();
        let start = Point3::new(0.0, 0.0, 1.0);
        let goal = Point3::new(6.0, 0.0, 1.0);
        let path = planner.plan(&mut map, start, goal).expect("path exists");
        assert_eq!(*path.waypoints.first().unwrap(), start);
        assert_eq!(*path.waypoints.last().unwrap(), goal);
        // Optimal lattice path length equals the straight distance.
        assert!((path.length() - 6.0).abs() < 0.5, "{}", path.length());
        assert!(path.queries > 0);
    }

    #[test]
    fn path_detours_around_wall() {
        let mut map = walled_map();
        let planner = AStarPlanner::default();
        let start = Point3::new(0.0, 0.0, 1.0);
        let goal = Point3::new(9.0, 0.0, 1.0);
        let path = planner.plan(&mut map, start, goal).expect("path exists");
        // Must be longer than straight-line (goes around y = ±4).
        assert!(
            path.length() > 10.0,
            "suspiciously short: {}",
            path.length()
        );
        // Every waypoint stays out of occupied space.
        for wp in &path.waypoints {
            assert_ne!(
                map.is_occupied_at(*wp).unwrap(),
                Some(true),
                "waypoint {wp} in a wall"
            );
        }
        // And the detour exceeds the wall extent in y at some point.
        assert!(path.waypoints.iter().any(|p| p.y.abs() > 3.8));
    }

    #[test]
    fn unreachable_goal_returns_none() {
        let mut map = walled_map();
        // Box the start in on all sides by marking a ring occupied.
        let mut ring = Vec::new();
        for i in 0..256 {
            let a = i as f64 / 256.0 * std::f64::consts::TAU;
            for r in [1.2, 1.4, 1.6] {
                for z in [0.5, 1.0, 1.5] {
                    ring.push(Point3::new(a.cos() * r, a.sin() * r, z));
                }
            }
        }
        map.insert_scan(Point3::new(0.0, 0.0, 1.0), &ring, 10.0)
            .unwrap();
        let planner = AStarPlanner::new(AStarConfig {
            max_expansions: 5_000,
            ..Default::default()
        });
        let path = planner.plan(
            &mut map,
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(9.0, 0.0, 1.0),
        );
        assert!(path.is_none());
    }

    #[test]
    fn blocked_start_or_goal_fails_fast() {
        let mut map = walled_map();
        let planner = AStarPlanner::default();
        // Goal inside the wall.
        let path = planner.plan(
            &mut map,
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(5.0, 0.0, 1.0),
        );
        assert!(path.is_none());
    }

    #[test]
    fn smoothing_shortens_and_stays_free() {
        let mut map = walled_map();
        let planner = AStarPlanner::default();
        let start = Point3::new(0.0, 0.0, 1.0);
        let goal = Point3::new(9.0, 0.0, 1.0);
        let path = planner.plan(&mut map, start, goal).unwrap();
        let smoothed = planner.smooth(&mut map, &path);
        assert!(smoothed.waypoints.len() <= path.waypoints.len());
        assert!(smoothed.length() <= path.length() + 1e-9);
        assert_eq!(*smoothed.waypoints.first().unwrap(), start);
        assert_eq!(*smoothed.waypoints.last().unwrap(), goal);
        for wp in &smoothed.waypoints {
            assert_ne!(map.is_occupied_at(*wp).unwrap(), Some(true));
        }
    }

    #[test]
    fn works_against_octocache_backend() {
        use octocache::{CacheConfig, SerialOctoCache};
        let grid = VoxelGrid::new(0.25, 8).unwrap();
        let cfg = CacheConfig::builder()
            .num_buckets(1 << 10)
            .tau(4)
            .build()
            .unwrap();
        let mut map = SerialOctoCache::new(grid, OccupancyParams::default(), cfg);
        let cloud: Vec<Point3> = (-16..=16)
            .flat_map(|y| (0..=10).map(move |z| Point3::new(5.0, y as f64 * 0.25, z as f64 * 0.25)))
            .collect();
        map.insert_scan(Point3::new(1.0, 0.0, 1.0), &cloud, 20.0)
            .unwrap();
        let planner = AStarPlanner::default();
        let path = planner
            .plan(
                &mut map,
                Point3::new(0.0, 0.0, 1.0),
                Point3::new(9.0, 0.0, 1.0),
            )
            .expect("path exists around the wall");
        assert!(path.length() > 9.0);
    }
}
