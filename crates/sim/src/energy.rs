//! UAV energy accounting.
//!
//! The paper motivates mission completion time as the end-to-end metric
//! because "it also directly correlates with energy usage: 95 % of the UAV
//! energy is consumed by the rotor during the entire flight" (§5.1, citing
//! Krishnan et al.). This module makes that correlation explicit: a simple
//! rotor power model integrated over a mission.

use serde::{Deserialize, Serialize};

use crate::mission::MissionReport;
use crate::uav::UavModel;

/// Hover power constant, W per kg^1.5 (momentum theory with a typical
/// quad-rotor disc loading and figure of merit; gives ≈ 256 W for the
/// 1.87 kg Pelican and ≈ 21 W for the 0.35 kg Spark).
const HOVER_POWER_PER_KG15: f64 = 100.0;
/// Parasitic (airframe drag) power coefficient, W per (m/s)³ per kg.
const DRAG_COEFF: f64 = 0.05;
/// Share of total energy that is rotor energy (paper: 95 %).
const ROTOR_SHARE: f64 = 0.95;

/// Electrical power draw (watts) at steady forward speed `v` (m/s).
///
/// Momentum-theory shape: hover-induced power (∝ m^1.5) that *decreases*
/// with translational lift, plus a parasitic drag term growing with v³.
pub fn rotor_power(uav: &UavModel, v: f64) -> f64 {
    let hover_power = HOVER_POWER_PER_KG15 * uav.mass_kg.powf(1.5);
    let translational_relief = 1.0 / (1.0 + 0.05 * v * v).sqrt();
    let parasitic = DRAG_COEFF * uav.mass_kg * v * v * v;
    hover_power * translational_relief + parasitic
}

/// Energy summary of a mission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Rotor energy over the flight, joules.
    pub rotor_energy_j: f64,
    /// Total energy estimate (rotor / 0.95), joules.
    pub total_energy_j: f64,
    /// Mean electrical power during the mission, watts.
    pub mean_power_w: f64,
}

/// Integrates the rotor power model over a mission's duration at its mean
/// velocity.
pub fn mission_energy(uav: &UavModel, report: &MissionReport) -> EnergyReport {
    let power = rotor_power(uav, report.avg_velocity);
    let rotor_energy_j = power * report.completion_time_s;
    EnergyReport {
        rotor_energy_j,
        total_energy_j: rotor_energy_j / ROTOR_SHARE,
        mean_power_w: power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Environment;
    use crate::mission::{Mission, MissionConfig};
    use octocache::pipeline::OctoMapSystem;
    use octocache_geom::VoxelGrid;
    use octocache_octomap::OccupancyParams;

    #[test]
    fn hover_power_positive_and_mass_ordered() {
        let pelican = UavModel::asctec_pelican();
        let spark = UavModel::dji_spark();
        assert!(rotor_power(&pelican, 0.0) > rotor_power(&spark, 0.0));
        assert!(rotor_power(&spark, 0.0) > 0.0);
    }

    #[test]
    fn power_curve_shape() {
        let uav = UavModel::asctec_pelican();
        let hover = rotor_power(&uav, 0.0);
        let cruise = rotor_power(&uav, 6.0);
        let sprint = rotor_power(&uav, 20.0);
        // Moderate forward flight is cheaper than hover (translational
        // lift); sprinting costs more than hover (drag cubes).
        assert!(cruise < hover, "cruise {cruise} vs hover {hover}");
        assert!(sprint > hover, "sprint {sprint} vs hover {hover}");
    }

    #[test]
    fn shorter_missions_cost_less_energy() {
        let env = Environment::Openland;
        let uav = UavModel::asctec_pelican();
        let grid = VoxelGrid::new(env.baseline_params().resolution, 16).unwrap();
        let report = Mission::new(env, uav, MissionConfig::tiny())
            .run(OctoMapSystem::new(grid, OccupancyParams::default()))
            .unwrap();
        let energy = mission_energy(&uav, &report);
        assert!(energy.rotor_energy_j > 0.0);
        assert!(energy.total_energy_j > energy.rotor_energy_j);

        // A hypothetical faster mission (same report, 20 % shorter) costs
        // proportionally less.
        let mut faster = report;
        faster.completion_time_s *= 0.8;
        let e2 = mission_energy(&uav, &faster);
        assert!(e2.rotor_energy_j < energy.rotor_energy_j);
        assert!((e2.rotor_energy_j / energy.rotor_energy_j - 0.8).abs() < 1e-9);
    }
}
