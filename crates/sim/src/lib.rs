//! A MAVBench-style closed-loop UAV navigation simulator.
//!
//! The paper's end-to-end evaluation (§5.1/§6.1) runs OctoMap and OctoCache
//! inside a full autonomous-navigation loop — perception (mapping), planning
//! (occupancy queries), control — on a Jetson TX2, with the physical world
//! simulated in Unreal. This crate is the in-process substitution: the same
//! dependency chain (cycle compute time → maximum safe flight velocity →
//! mission completion time) driven by synthetic environments and a kinematic
//! UAV.
//!
//! * [`Environment`] — the four MAVBench scenarios (*Open land*, *Farm*,
//!   *Room*, *Factory*) with the paper's goal distances and baseline
//!   <sensing range, mapping resolution> settings.
//! * [`UavModel`] — AscTec Pelican and DJI Spark, with the weight and rotor
//!   pull figures from §5.1.
//! * [`velocity`] — the Krishnan-et-al-style maximum safe velocity bound:
//!   the UAV may fly only as fast as it can stop within its sensing range,
//!   where reaction time includes the measured compute latency.
//! * [`Planner`] — collision-checked waypoint selection via map queries.
//! * [`Mission`] — the closed loop, generic over any
//!   [`MappingSystem`](octocache::MappingSystem) backend, producing the
//!   end-to-end runtime / velocity / completion-time metrics of Figures
//!   16–19.
//!
//! # Example
//!
//! ```no_run
//! # use octocache_sim::{Environment, Mission, MissionConfig, UavModel};
//! # use octocache::{CacheConfig, SerialOctoCache};
//! # use octocache_octomap::OccupancyParams;
//! # use octocache_geom::VoxelGrid;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let env = Environment::Room;
//! let params = env.baseline_params();
//! let grid = VoxelGrid::new(params.resolution, 16)?;
//! let map = SerialOctoCache::new(grid, OccupancyParams::default(), CacheConfig::default());
//! let report = Mission::new(env, UavModel::asctec_pelican(), MissionConfig::default())
//!     .run(map)?;
//! println!("completed in {:.1} s (sim)", report.completion_time_s);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod astar;
pub mod energy;
mod environment;
mod mission;
mod planner;
mod uav;
pub mod velocity;

pub use environment::{BaselineParams, Environment};
pub use mission::{CycleRecord, Mission, MissionConfig, MissionReport};
pub use planner::{PlanOutcome, Planner, PlannerConfig};
pub use uav::UavModel;
