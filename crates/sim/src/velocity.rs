//! The maximum safe flight velocity bound (paper §5.1, metric 2).
//!
//! Krishnan et al.'s roofline model bounds a UAV's velocity by its ability
//! to stop within the sensed free space: during the reaction time (one
//! sensor period plus the compute latency of perception + planning) the UAV
//! travels at full speed, then brakes at its maximum deceleration. The
//! bound solves
//!
//! ```text
//! v · t_react + v² / (2 a_brake) = R_sense
//! ```
//!
//! for `v`. A slower mapping system inflates `t_react` and therefore
//! directly lowers the safe velocity — the mechanism by which OctoCache's
//! runtime savings become mission-time savings in Figures 16–19.

use crate::uav::UavModel;

/// Solves the stopping-distance equation for the maximum safe velocity.
///
/// * `sensing_range` — metres of guaranteed sensed free space ahead.
/// * `reaction_time_s` — seconds of full-speed travel before braking
///   begins (sensor period + compute latency).
/// * `deceleration` — braking deceleration in m/s².
///
/// Returns 0 for degenerate inputs (non-positive range or deceleration).
pub fn max_safe_velocity(sensing_range: f64, reaction_time_s: f64, deceleration: f64) -> f64 {
    if sensing_range <= 0.0 || deceleration <= 0.0 {
        return 0.0;
    }
    let t = reaction_time_s.max(0.0);
    let a = deceleration;
    // v = a·(−t + sqrt(t² + 2R/a)) — the positive root of the quadratic.
    a * (-t + (t * t + 2.0 * sensing_range / a).sqrt())
}

/// The velocity bound for a UAV given a measured per-cycle compute latency.
///
/// Reaction time is one sensor frame period plus the compute latency —
/// the end-to-end cycle time of the perception/planning pipeline.
pub fn uav_max_velocity(uav: &UavModel, sensing_range: f64, compute_latency_s: f64) -> f64 {
    let t_react = 1.0 / uav.sensor_fps + compute_latency_s.max(0.0);
    max_safe_velocity(sensing_range, t_react, uav.max_deceleration())
}

/// Mission completion time for a path of `distance` metres at velocity `v`
/// (paper §5.1, metric 3). Returns `f64::INFINITY` for a grounded UAV.
pub fn completion_time(distance: f64, v: f64) -> f64 {
    if v <= 0.0 {
        f64::INFINITY
    } else {
        distance / v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_reaction_time_gives_pure_braking_bound() {
        // v = sqrt(2 a R)
        let v = max_safe_velocity(8.0, 0.0, 4.0);
        assert!((v - (2.0f64 * 4.0 * 8.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn velocity_decreases_with_compute_latency() {
        let uav = UavModel::asctec_pelican();
        let fast = uav_max_velocity(&uav, 8.0, 0.010);
        let slow = uav_max_velocity(&uav, 8.0, 0.200);
        assert!(fast > slow, "{fast} !> {slow}");
    }

    #[test]
    fn velocity_increases_with_sensing_range() {
        let uav = UavModel::asctec_pelican();
        assert!(uav_max_velocity(&uav, 8.0, 0.05) > uav_max_velocity(&uav, 3.0, 0.05));
    }

    #[test]
    fn stronger_uav_flies_faster() {
        let pelican = UavModel::asctec_pelican();
        let spark = UavModel::dji_spark();
        assert!(uav_max_velocity(&pelican, 6.0, 0.05) > uav_max_velocity(&spark, 6.0, 0.05));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(max_safe_velocity(0.0, 0.1, 4.0), 0.0);
        assert_eq!(max_safe_velocity(-1.0, 0.1, 4.0), 0.0);
        assert_eq!(max_safe_velocity(5.0, 0.1, 0.0), 0.0);
        assert_eq!(completion_time(100.0, 0.0), f64::INFINITY);
        assert_eq!(completion_time(100.0, 4.0), 25.0);
    }

    proptest! {
        /// The bound actually satisfies the stopping-distance equation.
        #[test]
        fn prop_solves_stopping_equation(
            range in 0.5f64..50.0,
            t in 0.0f64..1.0,
            a in 0.5f64..20.0,
        ) {
            let v = max_safe_velocity(range, t, a);
            let stopping = v * t + v * v / (2.0 * a);
            prop_assert!((stopping - range).abs() < 1e-6 * range.max(1.0));
        }

        /// Monotonicity: more latency never raises the bound.
        #[test]
        fn prop_latency_monotone(
            range in 0.5f64..50.0,
            t1 in 0.0f64..1.0,
            dt in 0.0f64..1.0,
            a in 0.5f64..20.0,
        ) {
            prop_assert!(
                max_safe_velocity(range, t1 + dt, a) <= max_safe_velocity(range, t1, a) + 1e-12
            );
        }
    }
}
