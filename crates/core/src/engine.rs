//! The unified scan-lifecycle engine shared by every mapping backend.
//!
//! Historically each backend (OctoMap baseline, serial OctoCache, octant-
//! sharded OctoMap, N-worker parallel OctoCache) carried its own copy of
//! the scan lifecycle: telemetry sequencing, snapshot republish, per-scan
//! [`ScanRecord`] assembly, durable-latency stamping and the final flush.
//! This module owns that lifecycle once. A backend now only implements
//! [`ScanExecutor`] — *how* one scan's voxel work is executed — and
//! [`Engine`] wraps it with everything around the scan:
//!
//! ```text
//!  insert_scan(origin, cloud, max_range)
//!     │
//!     ├─ 1. scan_seq = telemetry.scans()            (engine)
//!     ├─ 2. execute_scan(...) → ScanMetrics          (executor: ray trace,
//!     │                                               cache, evict, octree)
//!     ├─ 3. republish read snapshot                  (engine, via the
//!     │                                               executor's snapshot_tree)
//!     ├─ 4. ScanRecord::assemble(metrics, snapshot,  (engine)
//!     │                          durable) → record
//!     ├─ 5. telemetry.record(record)                 (engine)
//!     └─ 6. surface any deferred fault               (engine)
//! ```
//!
//! The engine also implements [`MappingSystem`] once, generically — each
//! backend type is a [`Engine`] instantiation (`SerialOctoCache =
//! Engine<SerialExecutor>`, …), so the trait surface, the publish
//! ordering and the record schema can never drift between backends again.
//!
//! Durability ([`crate::durable::DurableMap`]) plugs in as an engine layer:
//! the wrapper stamps each scan's journal/checkpoint latencies through
//! [`MappingSystem::stamp_durable`] *before* delegating `insert_scan`, and
//! the engine folds them into the assembled record.

use std::sync::Arc;
use std::time::Instant;

use octocache_geom::{GeomError, Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, rt, OccupancyOcTree};
use octocache_telemetry::{
    DurableMetrics, EventKind, EventLog, PhaseHistograms, PhaseTimes, Recorder, ScanMetrics,
    ScanRecord, SnapshotMetrics, Telemetry,
};

use crate::cache::{CacheStats, EvictedCell, VoxelCache};
use crate::fault::{FaultCounters, Integrity, IntegrityTransition, PipelineError};
use crate::pipeline::RayTracer;
use crate::query::{BatchStats, MapSnapshot, PublishStats, QueryHandle, SnapshotPublisher};
use crate::supervisor::{
    AdmissionGate, MemoryGovernor, PressureLevel, ScanOutcome, ShedReason, SupervisorParams,
};

/// Outcome of inserting one scan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScanReport {
    /// Per-phase wall-clock times for this scan.
    pub times: PhaseTimes,
    /// Voxel observations produced by ray tracing (after any dedup).
    pub observations: usize,
    /// Observations that hit the cache (0 for cache-less backends).
    pub cache_hits: u64,
    /// Voxels evicted toward the octree this scan (for cache backends) or
    /// applied directly (for plain backends).
    pub octree_updates: usize,
}

/// A 3D occupancy mapping backend.
///
/// The query methods take `&mut self` because cache-based backends update
/// hit/miss statistics on lookups; results are identical to what vanilla
/// OctoMap would return (the paper's consistency guarantee, verified by the
/// cross-backend tests in `tests/consistency.rs`).
pub trait MappingSystem {
    /// A short, stable backend name (e.g. `"octomap"`, `"octocache-serial"`).
    fn name(&self) -> String;

    /// The world↔key mapping.
    fn grid(&self) -> &VoxelGrid;

    /// Ray-traces and integrates one sensor scan.
    ///
    /// Scan application is transactional at scan granularity: on `Ok` the
    /// scan is applied voxel-for-voxel identically to the serial backend; on
    /// `Err` the failure is typed and [`MappingSystem::integrity`] reports
    /// whether the map may have diverged.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError::Geom`] for invalid origins; parallel
    /// backends additionally surface worker panics, spawn failures, stalls
    /// and partially applied batches.
    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, PipelineError>;

    /// Submits one scan through the admission gate: the supervised
    /// alternative to [`MappingSystem::insert_scan`] for callers that
    /// would rather lose a scan than blow a latency deadline or a memory
    /// budget. Returns [`ScanOutcome::Shed`] when the backend's admission
    /// gate or memory governor rejected the scan (the map is unchanged by
    /// it); otherwise applies the scan exactly like `insert_scan`.
    ///
    /// The default implementation admits unconditionally, for backends
    /// without supervisor wiring.
    ///
    /// # Errors
    ///
    /// Exactly the `insert_scan` errors; shedding is an `Ok` outcome, not
    /// an error.
    fn submit_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanOutcome, PipelineError> {
        self.insert_scan(origin, cloud, max_range)
            .map(ScanOutcome::Applied)
    }

    /// Decides admission for the next scan without applying anything:
    /// `Some(reason)` when the next scan should be shed. Called by
    /// layered backends ([`crate::durable::DurableMap`]) that must know
    /// the verdict *before* their own side effects (journaling). Each
    /// `Some` verdict counts as one shed in the backend's telemetry.
    ///
    /// The default admits unconditionally.
    fn admission_check(&mut self) -> Option<ShedReason> {
        None
    }

    /// Enforces the memory budget for the next scan: runs the governor
    /// (including any relief work) and returns
    /// [`PipelineError::OverBudget`] when the budget's reject rung is
    /// reached. [`MappingSystem::insert_scan`] calls this internally;
    /// layered backends call it *before* their own side effects so a
    /// scan the engine will reject is never journaled.
    ///
    /// The default is a no-op, for backends without a governor.
    ///
    /// # Errors
    ///
    /// [`PipelineError::OverBudget`] at the reject rung.
    fn budget_check(&mut self) -> Result<(), PipelineError> {
        Ok(())
    }

    /// Accumulated occupancy log-odds at a voxel; `None` = unknown space.
    fn occupancy(&mut self, key: VoxelKey) -> Option<f32>;

    /// Occupancy decision at a voxel.
    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool>;

    /// Occupancy decision at a world point.
    ///
    /// # Errors
    ///
    /// Propagates [`GeomError`] for out-of-map points.
    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError> {
        let key = self.grid().key_of(p)?;
        Ok(self.is_occupied(key))
    }

    /// Flushes all pending state into the backing octree and returns the
    /// residual phase times. After `finish`, the backing octree alone
    /// answers every query.
    fn finish(&mut self) -> PhaseTimes;

    /// Cumulative phase times over the backend's lifetime (including
    /// thread-2 work for parallel backends).
    fn phase_times(&self) -> PhaseTimes;

    /// Attaches a telemetry [`Recorder`] that receives one
    /// [`ScanRecord`] per `insert_scan`.
    /// Recording must never change mapping behaviour. The default
    /// implementation drops the recorder, for implementors without
    /// telemetry wiring.
    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        drop(recorder);
    }

    /// Per-phase latency histograms over every scan inserted so far, when
    /// the backend tracks them.
    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        None
    }

    /// Voxel-cache counters; `None` for cache-less backends.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Octree instrumentation counters (summed across shards or read
    /// through the pipeline mutex), when the backend can reach them.
    fn tree_stats(&self) -> Option<StatsSnapshot> {
        None
    }

    /// Takes the sub-scan event stream collected so far, when the backend
    /// was built with `CacheConfig::events(true)`. Pending per-thread
    /// buffers are drained first, so after [`MappingSystem::finish`] the
    /// returned log is complete. `None` when event recording is off (the
    /// default) or the backend has no event wiring.
    fn take_events(&mut self) -> Option<EventLog> {
        None
    }

    /// Whether the backend has degraded after a fault, and if so how far.
    ///
    /// Backends without failure modes (everything single-threaded) are
    /// always [`Integrity::Intact`].
    fn integrity(&self) -> Integrity {
        Integrity::Intact
    }

    /// Cumulative fault/degraded-mode counters over the backend's lifetime.
    /// All-zero for backends without failure modes.
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Every [`Integrity`] transition the backend has taken, oldest first
    /// — including heals, which the sticky [`MappingSystem::integrity`]
    /// verdict alone cannot show. Empty for backends without failure
    /// modes.
    fn integrity_transitions(&self) -> Vec<IntegrityTransition> {
        Vec::new()
    }

    /// A cloneable handle for lock-free concurrent reads
    /// ([`crate::query`]). The first call arms the backend's snapshot
    /// publisher (publishing the current map as epoch 0); every subsequent
    /// `insert_scan` then republishes at its scan boundary, so readers are
    /// never more than one scan stale and never take the octree mutex.
    /// Backends without a publisher pay nothing until this is called.
    fn query_handle(&mut self) -> QueryHandle;

    /// The current published [`MapSnapshot`] (arming the publisher on
    /// first use, like [`MappingSystem::query_handle`]). Between
    /// `insert_scan` calls the snapshot answers every query identically to
    /// the backend's own locked query path.
    fn snapshot(&mut self) -> Arc<MapSnapshot> {
        self.query_handle().snapshot()
    }

    /// Stamps the durable-layer latencies for the *next* `insert_scan`:
    /// its journal-append time, any checkpoint written before it, and the
    /// epoch of the last checkpoint. Called by
    /// [`crate::durable::DurableMap`] immediately before it delegates the
    /// scan; the engine folds the values into that scan's record. The
    /// default implementation discards them, for implementors without
    /// telemetry wiring.
    fn stamp_durable(
        &mut self,
        journal_append_ns: u64,
        checkpoint_write_ns: u64,
        checkpoint_epoch: u64,
    ) {
        let _ = (journal_append_ns, checkpoint_write_ns, checkpoint_epoch);
    }

    /// Consumes the backend, flushing all pending state, and returns the
    /// completed octree (for serialisation, diffing, offline queries).
    fn take_tree(self: Box<Self>) -> OccupancyOcTree;
}

impl<M: MappingSystem + ?Sized> MappingSystem for Box<M> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn grid(&self) -> &VoxelGrid {
        (**self).grid()
    }
    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, PipelineError> {
        (**self).insert_scan(origin, cloud, max_range)
    }
    fn submit_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanOutcome, PipelineError> {
        (**self).submit_scan(origin, cloud, max_range)
    }
    fn admission_check(&mut self) -> Option<ShedReason> {
        (**self).admission_check()
    }
    fn budget_check(&mut self) -> Result<(), PipelineError> {
        (**self).budget_check()
    }
    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        (**self).occupancy(key)
    }
    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        (**self).is_occupied(key)
    }
    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError> {
        (**self).is_occupied_at(p)
    }
    fn finish(&mut self) -> PhaseTimes {
        (**self).finish()
    }
    fn phase_times(&self) -> PhaseTimes {
        (**self).phase_times()
    }
    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        (**self).set_recorder(recorder)
    }
    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        (**self).phase_histograms()
    }
    fn cache_stats(&self) -> Option<CacheStats> {
        (**self).cache_stats()
    }
    fn tree_stats(&self) -> Option<StatsSnapshot> {
        (**self).tree_stats()
    }
    fn take_events(&mut self) -> Option<EventLog> {
        (**self).take_events()
    }
    fn integrity(&self) -> Integrity {
        (**self).integrity()
    }
    fn fault_counters(&self) -> FaultCounters {
        (**self).fault_counters()
    }
    fn integrity_transitions(&self) -> Vec<IntegrityTransition> {
        (**self).integrity_transitions()
    }
    fn query_handle(&mut self) -> QueryHandle {
        (**self).query_handle()
    }
    fn snapshot(&mut self) -> Arc<MapSnapshot> {
        (**self).snapshot()
    }
    fn stamp_durable(
        &mut self,
        journal_append_ns: u64,
        checkpoint_write_ns: u64,
        checkpoint_epoch: u64,
    ) {
        (**self).stamp_durable(journal_append_ns, checkpoint_write_ns, checkpoint_epoch)
    }
    fn take_tree(self: Box<Self>) -> OccupancyOcTree {
        (*self).take_tree()
    }
}

/// What one executed scan produced, beyond the metrics: the
/// [`ScanReport`] counters the caller sees, and any fault to surface
/// *after* the scan has been recorded.
#[derive(Debug, Default)]
pub struct ScanOutput {
    /// Observations absorbed by the cache (0 for cache-less executors).
    pub cache_hits: u64,
    /// Voxels evicted toward (or applied directly to) the octree.
    pub octree_updates: usize,
    /// A fault that degraded this scan but did not abort it (the parallel
    /// executor's worker faults): the engine records the scan normally,
    /// republishes, and *then* returns this as the `insert_scan` error —
    /// exactly once, with the map state described by
    /// [`ScanExecutor::integrity`]. Errors that abort the scan (invalid
    /// geometry) are returned as `Err` from
    /// [`ScanExecutor::execute_scan`] instead and skip recording entirely.
    pub deferred: Option<PipelineError>,
}

/// Phase times reported by [`ScanExecutor::flush`]: what the caller of
/// [`MappingSystem::finish`] gets back, and what the telemetry totals
/// absorb (the parallel executor folds otherwise-unattributed worker time
/// into the totals only).
#[derive(Debug, Default, Clone, Copy)]
pub struct FlushTimes {
    /// Residual phase times returned to the `finish` caller.
    pub returned: PhaseTimes,
    /// Phase times folded into the cumulative telemetry totals (equal to
    /// `returned` unless the executor has off-thread time to attribute).
    pub recorded: PhaseTimes,
}

/// One backend's scan-execution strategy.
///
/// Implementations own the mapping state (cache, octree/shards, worker
/// pipeline) and the per-scan voxel work; the [`Engine`] owns everything
/// around it (telemetry sequencing, snapshot republish, record assembly,
/// durable stamping, the final flush ordering). Executors never construct
/// a [`ScanRecord`] and never talk to a [`Recorder`].
pub trait ScanExecutor {
    /// The short, stable backend name (e.g. `"octocache-serial"`); also
    /// the telemetry backend label.
    fn backend_name(&self) -> String;

    /// The world↔key mapping.
    fn grid(&self) -> &VoxelGrid;

    /// Executes one scan: ray tracing and voxel integration, filling
    /// `metrics` with everything measured (phase times, cache and octree
    /// deltas, queue/worker samples, fault deltas).
    ///
    /// `scan_seq` is the 0-based telemetry sequence of this scan, for
    /// stamping sub-scan event streams.
    ///
    /// # Errors
    ///
    /// An `Err` means the scan was aborted (e.g. invalid geometry): the
    /// engine records nothing and republishes nothing, matching a scan
    /// that never happened. Faults that leave the scan applied (degraded
    /// parallel execution) belong in [`ScanOutput::deferred`] instead.
    fn execute_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
        scan_seq: u64,
        metrics: &mut ScanMetrics,
    ) -> Result<ScanOutput, PipelineError>;

    /// Builds a self-contained read tree of the current map state:
    /// octree (merged across shards) with any pending cache contents
    /// overlaid, answering exactly what the live query path answers at
    /// this scan boundary. Called by the engine at publish points.
    fn snapshot_tree(&self) -> OccupancyOcTree;

    /// Accumulated occupancy log-odds at a voxel (`None` = unknown),
    /// through the executor's consistency path (cache first, octree on a
    /// miss).
    fn occupancy(&mut self, key: VoxelKey) -> Option<f32>;

    /// Occupancy decision at a voxel.
    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool>;

    /// Flushes all pending mapping state into the backing octree (cache
    /// drain, final worker batches) and reports the residual phase times.
    /// The engine folds [`FlushTimes::recorded`] into the telemetry
    /// totals and flushes the recorder afterwards.
    fn flush(&mut self) -> FlushTimes;

    /// Executor time spent but not yet attributed to any scan or flush
    /// (the parallel workers' in-flight batch time). Added to the
    /// telemetry totals by [`MappingSystem::phase_times`].
    fn residual_times(&self) -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Voxel-cache counters; `None` for cache-less executors.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Octree instrumentation counters, when reachable.
    fn tree_stats(&self) -> Option<StatsSnapshot> {
        None
    }

    /// Takes the sub-scan event stream, when event recording is wired.
    fn take_events(&mut self) -> Option<EventLog> {
        None
    }

    /// The map-consistency verdict after any faults.
    fn integrity(&self) -> Integrity {
        Integrity::Intact
    }

    /// Cumulative fault/degraded-mode counters.
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Every integrity transition taken so far, when the executor tracks
    /// them.
    fn integrity_transitions(&self) -> Vec<IntegrityTransition> {
        Vec::new()
    }

    /// The supervisor knobs the executor's configuration carries (memory
    /// budget, admission deadline). Read once at engine construction;
    /// the default — everything off — keeps unconfigured runs zero-cost.
    fn supervisor_params(&self) -> SupervisorParams {
        SupervisorParams::default()
    }

    /// Bytes resident in the executor's mapping state (octree storage
    /// summed across shards, plus the cache). Only called when a memory
    /// budget is configured, once per scan; executors without governor
    /// support report 0 (never over any budget).
    fn resident_bytes(&self) -> u64 {
        0
    }

    /// Performs relief work for the given pressure rung: an extra cache
    /// τ-eviction pass at [`PressureLevel::Elevated`], a cache drain and
    /// octree prune at [`PressureLevel::Critical`] and above. Called by
    /// the engine's governor only on upward rung transitions, at scan
    /// boundaries. The default does nothing.
    fn relieve_memory(&mut self, level: PressureLevel) {
        let _ = level;
    }

    /// Consumes the executor and returns the completed backing octree.
    /// The engine has already run [`ScanExecutor::flush`] by the time
    /// this is called, so no mapping state is pending.
    fn take_tree(self) -> OccupancyOcTree
    where
        Self: Sized;
}

/// The scan-lifecycle engine: one executor plus the shared lifecycle
/// state (telemetry, snapshot publisher, pending durable stamps).
///
/// Every mapping backend is an instantiation of this type; see the
/// module docs for the lifecycle it owns.
#[derive(Debug)]
pub struct Engine<E: ScanExecutor> {
    /// The execution strategy. Crate-visible so backend modules can offer
    /// inherent accessors (and their tests can reach internals).
    pub(crate) exec: E,
    telemetry: Telemetry,
    /// Armed lazily by the first [`MappingSystem::query_handle`] call;
    /// `None` keeps the no-reader fast path free of per-scan deep copies.
    publisher: Option<SnapshotPublisher>,
    /// Durable latencies stamped for the scan about to be inserted
    /// ([`MappingSystem::stamp_durable`]); all zeros without a
    /// durability layer.
    pending_durable: DurableMetrics,
    /// The memory governor, armed when the executor's config carries a
    /// budget ([`SupervisorParams::mem_budget`]).
    governor: Option<MemoryGovernor>,
    /// The admission gate, armed when the config carries a deadline
    /// ([`SupervisorParams::shed_deadline`]).
    gate: Option<AdmissionGate>,
    /// Scans shed since the last applied scan; folded into the next
    /// applied scan's record.
    pending_sheds: u64,
}

impl<E: ScanExecutor> Engine<E> {
    /// Wraps an executor with fresh lifecycle state.
    pub(crate) fn from_executor(exec: E) -> Self {
        let telemetry = Telemetry::new(exec.backend_name());
        let params = exec.supervisor_params();
        Engine {
            exec,
            telemetry,
            publisher: None,
            pending_durable: DurableMetrics::default(),
            governor: params.mem_budget.map(MemoryGovernor::new),
            gate: params.shed_deadline.map(AdmissionGate::new),
            pending_sheds: 0,
        }
    }

    /// Runs the memory governor against the executor's resident bytes,
    /// triggering relief on upward rung transitions and re-measuring
    /// after relief. Returns `Some((resident, budget))` when the reject
    /// rung holds even after relief — the caller rejects or sheds the
    /// next scan. `None` without a configured budget (one branch).
    fn governor_pass(&mut self) -> Option<(u64, u64)> {
        let Engine { exec, governor, .. } = self;
        let gov = governor.as_mut()?;
        let mut resident = exec.resident_bytes();
        let (mut level, went_up) = gov.observe(resident);
        if went_up && level >= PressureLevel::Elevated {
            exec.relieve_memory(level);
            resident = exec.resident_bytes();
            level = gov.observe(resident).0;
        }
        if level == PressureLevel::OverBudget {
            Some((resident, gov.budget()))
        } else {
            None
        }
    }

    /// Runs one scan-shaped unit of work through the full lifecycle:
    /// sequence → execute → republish → assemble → record → surface any
    /// deferred fault. Shared by [`MappingSystem::insert_scan`] and the
    /// serial backend's pre-traced `insert_batch` path.
    pub(crate) fn run_scan(
        &mut self,
        run: impl FnOnce(&mut E, u64, &mut ScanMetrics) -> Result<ScanOutput, PipelineError>,
    ) -> Result<ScanReport, PipelineError> {
        let scan_seq = self.telemetry.scans();
        let mut metrics = ScanMetrics::default();
        // An executor error aborts the scan before any lifecycle side
        // effects: nothing recorded, nothing republished.
        let started = Instant::now();
        let out = run(&mut self.exec, scan_seq, &mut metrics)?;
        if let Some(gate) = &mut self.gate {
            gate.observe_scan(started.elapsed());
        }
        // The supervisor's per-scan stamps: sheds accumulated since the
        // last applied scan, and the governor's rung after this one.
        metrics.sheds = std::mem::take(&mut self.pending_sheds);
        if let Some(gov) = &self.governor {
            metrics.pressure_level = gov.level().as_str().to_string();
        }

        let (publish, batch_stats) = self.republish(scan_seq + 1);
        let snapshot = SnapshotMetrics {
            snapshot_publish_ns: publish.map_or(0, |p| p.latency.as_nanos() as u64),
            snapshot_age_ns: publish.map_or(0, |p| p.replaced_age.as_nanos() as u64),
            batch_queries: batch_stats.queries,
            batch_nodes_visited: batch_stats.nodes_visited,
            batch_nodes_reused: batch_stats.nodes_reused,
        };
        let times = metrics.times;
        let observations = metrics.observations as usize;
        self.telemetry.record(ScanRecord::assemble(
            metrics,
            snapshot,
            self.pending_durable,
        ));

        // Surface the first deferred fault exactly once — after the scan
        // was recorded, so degraded scans still reach the trace.
        if let Some(err) = out.deferred {
            return Err(err);
        }
        Ok(ScanReport {
            times,
            observations,
            cache_hits: out.cache_hits,
            octree_updates: out.octree_updates,
        })
    }

    /// Republishes the read snapshot when a publisher is armed, returning
    /// its stats plus the batch-query counters drained since last scan.
    fn republish(&mut self, scans: u64) -> (Option<PublishStats>, BatchStats) {
        let Engine {
            exec, publisher, ..
        } = self;
        match publisher.as_mut() {
            Some(p) => {
                let stats = p.publish_with(scans, || exec.snapshot_tree());
                (Some(stats), p.take_batch_stats())
            }
            None => (None, BatchStats::default()),
        }
    }
}

impl<E: ScanExecutor> MappingSystem for Engine<E> {
    fn name(&self) -> String {
        self.exec.backend_name()
    }

    fn grid(&self) -> &VoxelGrid {
        self.exec.grid()
    }

    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, PipelineError> {
        self.budget_check()?;
        self.run_scan(|exec, scan_seq, metrics| {
            exec.execute_scan(origin, cloud, max_range, scan_seq, metrics)
        })
    }

    fn submit_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanOutcome, PipelineError> {
        if let Some(reason) = self.admission_check() {
            return Ok(ScanOutcome::Shed(reason));
        }
        // Admission already ran the governor; execute without re-checking.
        self.run_scan(|exec, scan_seq, metrics| {
            exec.execute_scan(origin, cloud, max_range, scan_seq, metrics)
        })
        .map(ScanOutcome::Applied)
    }

    fn admission_check(&mut self) -> Option<ShedReason> {
        // Deadline gate first (cheapest), then the memory governor.
        let reason = match self.gate.as_mut().and_then(AdmissionGate::admit) {
            Some(reason) => Some(reason),
            None => {
                self.governor_pass()
                    .map(|(resident_bytes, budget_bytes)| ShedReason::OverBudget {
                        resident_bytes,
                        budget_bytes,
                    })
            }
        };
        if reason.is_some() {
            self.pending_sheds += 1;
        }
        reason
    }

    fn budget_check(&mut self) -> Result<(), PipelineError> {
        match self.governor_pass() {
            Some((resident_bytes, budget_bytes)) => Err(PipelineError::OverBudget {
                resident_bytes,
                budget_bytes,
            }),
            None => Ok(()),
        }
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        self.exec.occupancy(key)
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        self.exec.is_occupied(key)
    }

    fn finish(&mut self) -> PhaseTimes {
        let flushed = self.exec.flush();
        self.telemetry.add_times(flushed.recorded);
        self.telemetry.flush();
        flushed.returned
    }

    fn phase_times(&self) -> PhaseTimes {
        self.telemetry.totals() + self.exec.residual_times()
    }

    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.telemetry.set_recorder(recorder);
    }

    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        Some(self.telemetry.histograms())
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.exec.cache_stats()
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        self.exec.tree_stats()
    }

    fn take_events(&mut self) -> Option<EventLog> {
        self.exec.take_events()
    }

    fn integrity(&self) -> Integrity {
        self.exec.integrity()
    }

    fn fault_counters(&self) -> FaultCounters {
        self.exec.fault_counters()
    }

    fn integrity_transitions(&self) -> Vec<IntegrityTransition> {
        self.exec.integrity_transitions()
    }

    fn query_handle(&mut self) -> QueryHandle {
        if self.publisher.is_none() {
            let scans = self.telemetry.scans();
            self.publisher = Some(SnapshotPublisher::new(self.exec.snapshot_tree(), scans));
        }
        self.publisher
            .as_ref()
            .expect("publisher armed above")
            .handle()
    }

    fn stamp_durable(
        &mut self,
        journal_append_ns: u64,
        checkpoint_write_ns: u64,
        checkpoint_epoch: u64,
    ) {
        self.pending_durable = DurableMetrics {
            journal_append_ns,
            checkpoint_write_ns,
            checkpoint_epoch,
        };
    }

    fn take_tree(self: Box<Self>) -> OccupancyOcTree {
        let mut this = *self;
        this.finish();
        this.exec.take_tree()
    }
}

/// A ray-traced scan batch: the executor's reusable buffer, or a
/// dedup-folded copy of it for the `-rt` front-ends.
#[derive(Debug)]
pub(crate) enum TracedBatch<'a> {
    /// The raw traced batch, borrowed from the executor's buffer.
    Raw(&'a insert::VoxelBatch),
    /// A dedup-folded copy (one observation per distinct voxel).
    Deduped(insert::VoxelBatch),
}

impl std::ops::Deref for TracedBatch<'_> {
    type Target = insert::VoxelBatch;
    fn deref(&self) -> &insert::VoxelBatch {
        match self {
            TracedBatch::Raw(b) => b,
            TracedBatch::Deduped(b) => b,
        }
    }
}

/// The shared ray-tracing front-end: traces one scan into `batch` and
/// applies the executor's dedup policy. Inline executors start
/// `execute_scan` here; the parallel executor open-codes the same steps
/// because its trace overlaps the workers' previous batch.
pub(crate) fn trace_scan<'a>(
    ray_tracer: RayTracer,
    grid: &VoxelGrid,
    origin: Point3,
    cloud: &[Point3],
    max_range: f64,
    batch: &'a mut insert::VoxelBatch,
) -> Result<TracedBatch<'a>, GeomError> {
    insert::compute_update(grid, origin, cloud, max_range, batch)?;
    Ok(match ray_tracer {
        RayTracer::Standard => TracedBatch::Raw(batch),
        RayTracer::Dedup => TracedBatch::Deduped(rt::dedup_batch(batch)),
    })
}

/// Stamps the octree-side instrumentation delta onto `metrics`.
pub(crate) fn stamp_tree_delta(metrics: &mut ScanMetrics, delta: &StatsSnapshot) {
    metrics.octree_node_visits = delta.node_visits;
    metrics.octree_leaf_updates = delta.leaf_updates;
    metrics.octree_nodes_created = delta.nodes_created;
}

/// Stamps the cache-counter delta onto `metrics`.
pub(crate) fn stamp_cache_delta(metrics: &mut ScanMetrics, delta: &CacheStats) {
    metrics.cache_hits = delta.hits;
    metrics.cache_misses = delta.misses;
    metrics.cache_insertions = delta.insertions;
    metrics.cache_evictions = delta.evictions;
}

/// Stamps the tree-shape fields (resident bytes, storage layout).
pub(crate) fn stamp_tree_shape(metrics: &mut ScanMetrics, memory_bytes: u64, layout: &str) {
    metrics.memory_bytes = memory_bytes;
    metrics.tree_layout = layout.to_string();
}

/// Overlays the cache's accumulated cells onto a read tree. Cells hold
/// absolute log-odds — the same values eviction would write — so the
/// overlaid tree answers exactly what the live cache→tree fall-through
/// path answers at this scan boundary.
pub(crate) fn overlay_cache(tree: &mut OccupancyOcTree, cache: &VoxelCache) {
    for cell in cache.iter() {
        tree.set_node_log_odds(cell.key, cell.log_odds);
    }
}

/// Reassembles disjoint octant shards into one self-contained read tree
/// (the shards partition the key space, so the structural merge is
/// conflict-free by construction).
///
/// # Panics
///
/// Panics when `shards` is empty or the shards are not top-level
/// disjoint.
pub(crate) fn merge_shards<'a>(
    shards: impl IntoIterator<Item = &'a OccupancyOcTree>,
) -> OccupancyOcTree {
    let mut iter = shards.into_iter();
    let first = iter.next().expect("at least one shard");
    let mut merged = OccupancyOcTree::with_layout(*first.grid(), *first.params(), first.layout());
    for shard in std::iter::once(first).chain(iter) {
        merged
            .merge_disjoint_top_level(shard)
            .expect("shards partition key space disjointly");
    }
    merged
}

/// Applies evicted cells to the tree, wrapped in a lane-0 batch span
/// (and a buffer drain) when the cache has event recording attached.
pub(crate) fn apply_evictions(
    cache: &mut VoxelCache,
    tree: &mut OccupancyOcTree,
    cells: &[EvictedCell],
) {
    let count = cells.len() as u64;
    if let Some(buf) = cache.events_mut() {
        buf.emit_plain(EventKind::BatchBegin, count);
    }
    for cell in cells {
        tree.set_node_log_odds(cell.key, cell.log_odds);
    }
    if let Some(buf) = cache.events_mut() {
        buf.emit_plain(EventKind::BatchEnd, count);
        buf.drain();
    }
}
