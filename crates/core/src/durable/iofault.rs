//! Deterministic I/O fault injection for the durability layer.
//!
//! Extends the PR 3 in-memory [`FaultPlan`](crate::fault::FaultPlan) idea to
//! the filesystem: every persistence *operation* (one journal append, one
//! atomic file publication) consumes one slot of a global operation counter,
//! and an [`IoFaultPlan`] can schedule, at a chosen operation index:
//!
//! * a **kill** at a chosen [`KillPoint`] — the process "dies" (the
//!   operation aborts with [`DurableError::InjectedCrash`] after leaving
//!   exactly the on-disk state a real kill at that instant would leave:
//!   nothing, a short write, a complete-but-unrenamed temp file, or a
//!   renamed file with no follow-up);
//! * a **bit flip** — one bit of the payload is inverted before it reaches
//!   the disk, modelling silent corruption (the run continues; recovery
//!   must detect the damage via CRC/leaf checksums).
//!
//! Plans are plain data and always compiled (the branch they cost sits on
//! cold file-I/O paths, not the mapping hot path); the `fault-injection`
//! cargo feature gates only the CLI/env plumbing, mirroring `FaultPlan`.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;

use super::DurableError;

/// Where inside one persistence operation an injected kill fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Before any byte reaches the file: the operation leaves no trace.
    BeforeWrite,
    /// Mid-write: only a prefix of the bytes is persisted (a torn page /
    /// short write).
    MidWrite,
    /// After the data is written and synced but — for atomic operations —
    /// before the rename, so the temp file exists and the operation never
    /// took effect. For journal appends this is a kill right after the
    /// record became durable.
    AfterWrite,
    /// After the atomic rename took effect, before any follow-up step
    /// (e.g. a checkpoint file lands but the manifest still points at the
    /// previous generation).
    AfterRename,
}

impl KillPoint {
    /// All kill points, for test matrices.
    pub const ALL: [KillPoint; 4] = [
        KillPoint::BeforeWrite,
        KillPoint::MidWrite,
        KillPoint::AfterWrite,
        KillPoint::AfterRename,
    ];

    fn name(&self) -> &'static str {
        match self {
            KillPoint::BeforeWrite => "before",
            KillPoint::MidWrite => "mid",
            KillPoint::AfterWrite => "after",
            KillPoint::AfterRename => "rename",
        }
    }
}

impl fmt::Display for KillPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic schedule of at most one kill and one bit flip, addressed
/// by persistence-operation index (0-based, in execution order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoFaultPlan {
    /// Kill the process at this operation/point.
    pub kill: Option<(u64, KillPoint)>,
    /// Invert bit `bit % (len * 8)` of this operation's payload.
    pub flip: Option<(u64, u64)>,
}

impl IoFaultPlan {
    /// Derives a pseudo-random single-fault plan from a seed, using
    /// xorshift64* like [`FaultPlan::from_seed`](crate::fault::FaultPlan::from_seed).
    /// Even seeds schedule a kill, odd seeds a bit flip, so seed sweeps
    /// cover both fault classes.
    pub fn from_seed(seed: u64) -> IoFaultPlan {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let op = next() % 24;
        if seed.is_multiple_of(2) {
            let point = KillPoint::ALL[(next() % 4) as usize];
            IoFaultPlan {
                kill: Some((op, point)),
                flip: None,
            }
        } else {
            IoFaultPlan {
                kill: None,
                flip: Some((op, next() % 4096)),
            }
        }
    }

    /// Parses a spec string: comma-separated directives
    /// `kill:<point>@<op>` (point ∈ `before|mid|after|rename`) and
    /// `flip:<bit>@<op>`. Returns `None` for malformed specs.
    ///
    /// ```
    /// # use octocache::durable::{IoFaultPlan, KillPoint};
    /// let p = IoFaultPlan::from_spec("kill:mid@3,flip:17@5").unwrap();
    /// assert_eq!(p.kill, Some((3, KillPoint::MidWrite)));
    /// assert_eq!(p.flip, Some((5, 17)));
    /// ```
    pub fn from_spec(spec: &str) -> Option<IoFaultPlan> {
        let mut plan = IoFaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, rest) = part.split_once(':')?;
            let (what, op) = rest.split_once('@')?;
            let op: u64 = op.parse().ok()?;
            match kind {
                "kill" => {
                    let point = match what {
                        "before" => KillPoint::BeforeWrite,
                        "mid" => KillPoint::MidWrite,
                        "after" => KillPoint::AfterWrite,
                        "rename" => KillPoint::AfterRename,
                        _ => return None,
                    };
                    plan.kill = Some((op, point));
                }
                "flip" => {
                    let bit: u64 = what.parse().ok()?;
                    plan.flip = Some((op, bit));
                }
                _ => return None,
            }
        }
        if plan.kill.is_none() && plan.flip.is_none() {
            None
        } else {
            Some(plan)
        }
    }

    /// Reads a plan from the environment: `OCTO_IO_FAULT` (a
    /// [`from_spec`](IoFaultPlan::from_spec) string) wins over
    /// `OCTO_IO_FAULT_SEED` (a [`from_seed`](IoFaultPlan::from_seed)
    /// integer). Compiled only with the `fault-injection` feature (or in
    /// tests), like [`FaultPlan::from_env`](crate::fault::FaultPlan).
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn from_env() -> Option<IoFaultPlan> {
        if let Ok(spec) = std::env::var("OCTO_IO_FAULT") {
            return IoFaultPlan::from_spec(&spec);
        }
        std::env::var("OCTO_IO_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(IoFaultPlan::from_seed)
    }
}

/// The durability layer's only gateway to the filesystem: counts persistence
/// operations, applies the [`IoFaultPlan`], and enforces the
/// write → fsync → rename discipline.
#[derive(Debug, Default)]
pub(crate) struct Vfs {
    plan: Option<IoFaultPlan>,
    op: u64,
}

impl Vfs {
    pub fn new(plan: Option<IoFaultPlan>) -> Vfs {
        Vfs { plan, op: 0 }
    }

    fn begin_op(&mut self) -> u64 {
        let op = self.op;
        self.op += 1;
        op
    }

    fn killed_at(&self, op: u64, point: KillPoint) -> Option<DurableError> {
        match self.plan {
            Some(IoFaultPlan {
                kill: Some((kop, kpoint)),
                ..
            }) if kop == op && kpoint == point => Some(DurableError::InjectedCrash { op, point }),
            _ => None,
        }
    }

    fn maybe_flip(&self, op: u64, bytes: &mut [u8]) {
        if let Some(IoFaultPlan {
            flip: Some((fop, bit)),
            ..
        }) = self.plan
        {
            if fop == op && !bytes.is_empty() {
                let bit = bit % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
    }

    /// Appends `bytes` to an open (journal) file, optionally fdatasync-ing.
    /// One persistence operation; kills model a process death before,
    /// during (prefix only) or after the record lands.
    pub fn append(
        &mut self,
        file: &mut File,
        path: &Path,
        bytes: &[u8],
        fsync: bool,
    ) -> Result<(), DurableError> {
        let op = self.begin_op();
        if let Some(crash) = self.killed_at(op, KillPoint::BeforeWrite) {
            return Err(crash);
        }
        let mut data = bytes.to_vec();
        self.maybe_flip(op, &mut data);
        if let Some(crash) = self.killed_at(op, KillPoint::MidWrite) {
            let cut = data.len() / 2;
            file.write_all(&data[..cut]).map_err(|e| io_err(path, &e))?;
            let _ = file.sync_data();
            return Err(crash);
        }
        file.write_all(&data).map_err(|e| io_err(path, &e))?;
        if let Some(crash) = self.killed_at(op, KillPoint::AfterWrite) {
            let _ = file.sync_data();
            return Err(crash);
        }
        if fsync {
            file.sync_data().map_err(|e| io_err(path, &e))?;
        }
        if let Some(crash) = self.killed_at(op, KillPoint::AfterRename) {
            // No rename step on appends: `rename` degenerates to a kill
            // right after the fully durable record.
            return Err(crash);
        }
        Ok(())
    }

    /// Publishes `bytes` as `dir/name` atomically: write `name.tmp`, fsync
    /// it, rename over `name`, fsync the directory. One persistence
    /// operation.
    pub fn write_atomic(
        &mut self,
        dir: &Path,
        name: &str,
        bytes: &[u8],
    ) -> Result<(), DurableError> {
        let op = self.begin_op();
        let tmp = dir.join(format!("{name}.tmp"));
        let target = dir.join(name);
        if let Some(crash) = self.killed_at(op, KillPoint::BeforeWrite) {
            return Err(crash);
        }
        let mut data = bytes.to_vec();
        self.maybe_flip(op, &mut data);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err(&tmp, &e))?;
            if let Some(crash) = self.killed_at(op, KillPoint::MidWrite) {
                let cut = data.len() / 2;
                f.write_all(&data[..cut]).map_err(|e| io_err(&tmp, &e))?;
                let _ = f.sync_all();
                return Err(crash);
            }
            f.write_all(&data).map_err(|e| io_err(&tmp, &e))?;
            f.sync_all().map_err(|e| io_err(&tmp, &e))?;
        }
        if let Some(crash) = self.killed_at(op, KillPoint::AfterWrite) {
            return Err(crash);
        }
        fs::rename(&tmp, &target).map_err(|e| io_err(&target, &e))?;
        // Make the rename itself durable before reporting success.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        if let Some(crash) = self.killed_at(op, KillPoint::AfterRename) {
            return Err(crash);
        }
        Ok(())
    }
}

pub(crate) fn io_err(path: &Path, e: &std::io::Error) -> DurableError {
    DurableError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trip_and_rejects_garbage() {
        assert_eq!(
            IoFaultPlan::from_spec("kill:before@0").unwrap().kill,
            Some((0, KillPoint::BeforeWrite))
        );
        assert_eq!(
            IoFaultPlan::from_spec("kill:rename@7").unwrap().kill,
            Some((7, KillPoint::AfterRename))
        );
        assert_eq!(
            IoFaultPlan::from_spec("flip:9@2").unwrap().flip,
            Some((2, 9))
        );
        for bad in ["", "kill", "kill:x@1", "kill:mid@x", "boom:1@2", "flip:a@1"] {
            assert_eq!(IoFaultPlan::from_spec(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn seeds_are_deterministic_and_cover_both_classes() {
        for seed in 0..32 {
            assert_eq!(IoFaultPlan::from_seed(seed), IoFaultPlan::from_seed(seed));
        }
        assert!(IoFaultPlan::from_seed(2).kill.is_some());
        assert!(IoFaultPlan::from_seed(3).flip.is_some());
    }

    #[test]
    fn kill_points_display() {
        for p in KillPoint::ALL {
            assert!(!p.to_string().is_empty());
        }
    }
}
