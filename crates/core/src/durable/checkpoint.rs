//! The checkpoint store: generations of v2 `.ot` snapshots plus a manifest.
//!
//! Checkpoints live under `<dir>/checkpoints/ckpt-<epoch>.ot`, each a v2
//! stream ([`octocache_octomap::io::write_tree_v2`]) whose footer carries
//! the payload CRC, the leaf checksum and the scan epoch. A small `MANIFEST`
//! file names the newest checkpoint; both are published with the
//! write-temp → fsync → rename discipline, so no reader ever observes a
//! half-written generation under POSIX rename atomicity.
//!
//! Loading walks the manifest target first, then every generation by
//! descending epoch, skipping (and reporting) each candidate that fails its
//! CRC or leaf checksum — bit rot in one generation costs only the scans
//! after the previous generation, which the journal replays anyway.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut};
use octocache_octomap::checksum::crc32;
use octocache_octomap::{io as tree_io, OccupancyOcTree, TreeLayout};

use super::iofault::{io_err, Vfs};
use super::DurableError;

const MANIFEST_MAGIC: &[u8; 8] = b"OCTMNFS1";
const MANIFEST_FILE: &str = "MANIFEST";
/// Upper bound on the manifest's stored file-name length; anything larger
/// is corruption (names are `ckpt-<epoch>.ot`, ~24 bytes).
const MAX_NAME: usize = 256;
pub(crate) const CHECKPOINT_SUBDIR: &str = "checkpoints";

/// A checkpoint that loaded and passed both integrity checks.
#[derive(Debug)]
pub(crate) struct LoadedCheckpoint {
    pub tree: OccupancyOcTree,
    pub epoch: u64,
}

#[derive(Debug)]
pub(crate) struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    pub fn new(root: &Path, keep: usize) -> CheckpointStore {
        CheckpointStore {
            dir: root.join(CHECKPOINT_SUBDIR),
            keep: keep.max(1),
        }
    }

    pub fn ensure_dir(&self) -> Result<(), DurableError> {
        fs::create_dir_all(&self.dir).map_err(|e| io_err(&self.dir, &e))
    }

    fn file_name(epoch: u64) -> String {
        format!("ckpt-{epoch:016}.ot")
    }

    fn parse_epoch(name: &str) -> Option<u64> {
        name.strip_prefix("ckpt-")?
            .strip_suffix(".ot")?
            .parse()
            .ok()
    }

    /// Writes one checkpoint generation and repoints the manifest at it
    /// (two persistence operations), then prunes old generations down to
    /// `keep`.
    pub fn write(
        &self,
        vfs: &mut Vfs,
        tree: &OccupancyOcTree,
        epoch: u64,
    ) -> Result<(), DurableError> {
        let name = Self::file_name(epoch);
        let bytes = tree_io::write_tree_v2(tree, epoch);
        vfs.write_atomic(&self.dir, &name, &bytes)?;
        let mut manifest = Vec::with_capacity(8 + 8 + 4 + name.len() + 4);
        manifest.put_slice(MANIFEST_MAGIC);
        manifest.put_u64(epoch);
        manifest.put_u32(name.len() as u32);
        manifest.put_slice(name.as_bytes());
        let crc = crc32(&manifest);
        manifest.put_u32(crc);
        vfs.write_atomic(&self.dir, MANIFEST_FILE, &manifest)?;
        self.prune();
        Ok(())
    }

    /// Best-effort removal of generations beyond `keep` (newest first).
    /// Deletion failures are ignored: stale generations are harmless, only
    /// missing new ones would be.
    fn prune(&self) {
        let mut epochs = self.list_epochs();
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        for &epoch in epochs.iter().skip(self.keep) {
            let _ = fs::remove_file(self.dir.join(Self::file_name(epoch)));
        }
        // Leftover temp files from crashed publications are dead weight.
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().ends_with(".tmp") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }

    fn list_epochs(&self) -> Vec<u64> {
        let mut epochs = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(epoch) = Self::parse_epoch(&entry.file_name().to_string_lossy()) {
                    epochs.push(epoch);
                }
            }
        }
        epochs
    }

    /// The manifest's target epoch, when the manifest is intact.
    fn manifest_epoch(&self) -> Option<u64> {
        let path = self.dir.join(MANIFEST_FILE);
        let mut bytes = Vec::new();
        fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .ok()?;
        if bytes.len() < 8 + 8 + 4 + 4 || &bytes[..8] != MANIFEST_MAGIC {
            return None;
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let mut crc_bytes = crc_bytes;
        if crc32(body) != crc_bytes.get_u32() {
            return None;
        }
        let mut buf = &body[8..];
        let epoch = buf.get_u64();
        let name_len = buf.get_u32() as usize;
        if name_len > MAX_NAME || buf.remaining() != name_len {
            return None;
        }
        Some(epoch)
    }

    /// Loads the newest checkpoint that passes both its payload CRC and
    /// leaf checksum, trying the manifest target first and then every
    /// generation in descending epoch order. Candidates that fail are
    /// reported in the second return value, never fatal; `None` means no
    /// usable checkpoint exists (recovery then replays the whole journal).
    pub fn load_latest(&self, layout: TreeLayout) -> (Option<LoadedCheckpoint>, Vec<String>) {
        let mut skipped = Vec::new();
        let mut candidates: Vec<u64> = Vec::new();
        if let Some(e) = self.manifest_epoch() {
            candidates.push(e);
        }
        let mut epochs = self.list_epochs();
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        for e in epochs {
            if !candidates.contains(&e) {
                candidates.push(e);
            }
        }
        for epoch in candidates {
            let name = Self::file_name(epoch);
            let path = self.dir.join(&name);
            let mut bytes = Vec::new();
            let read = fs::File::open(&path).and_then(|mut f| f.read_to_end(&mut bytes));
            if let Err(e) = read {
                skipped.push(format!("{name}: {e}"));
                continue;
            }
            match tree_io::read_tree_with_meta(&bytes, layout) {
                Ok((tree, Some(meta))) => {
                    if meta.epoch != epoch {
                        skipped.push(format!(
                            "{name}: footer epoch {} disagrees with file name",
                            meta.epoch
                        ));
                        continue;
                    }
                    return (Some(LoadedCheckpoint { tree, epoch }), skipped);
                }
                Ok((_, None)) => {
                    skipped.push(format!("{name}: missing v2 footer"));
                }
                Err(e) => {
                    skipped.push(format!("{name}: {e}"));
                }
            }
        }
        (None, skipped)
    }
}
