//! Durability: scan journal, checkpoints and crash recovery.
//!
//! PR 3 made the in-memory pipeline fault-tolerant and the snapshot engine
//! gave readers immutable epoch-published maps; this module makes the map
//! itself survive process death. The design is the classic
//! checkpoint-plus-write-ahead-log pair:
//!
//! * **Journal** (`journal`, internal): before a scan touches the map,
//!   its full input (origin, cloud at `f64` precision, max range) is
//!   appended to `<dir>/journal` as a CRC32-framed record. Torn or
//!   bit-rotted tails are detected by the framing and treated as a clean
//!   end-of-log.
//! * **Checkpoints** (`checkpoint`, internal): every
//!   [`checkpoint_every`](crate::CacheConfig::checkpoint_every) scans (and
//!   on [`DurableMap::seal`]), the current [`MapSnapshot`] — taken
//!   lock-free from the publisher armed on every backend — is serialised
//!   as a checksummed v2 `.ot` stream into
//!   `<dir>/checkpoints/ckpt-<epoch>.ot`, published atomically
//!   (write-temp → fsync → rename) and recorded in a `MANIFEST`.
//! * **Recovery** ([`recover`]): load the newest checkpoint whose payload
//!   CRC *and* leaf checksum verify (falling back generation by
//!   generation), then replay journal records after its epoch through the
//!   exact baseline insert path. The recovered map bit-matches (leaf
//!   checksum) a never-crashed run over the durably recorded scans, on
//!   every backend and both storage layouts — proven by the crash-torture
//!   suite under deterministic [`IoFaultPlan`] kills, short writes and bit
//!   flips.
//!
//! The write-ahead ordering ("journaled before applied") means a scan is
//! either durably recorded or reported as a typed
//! [`PipelineError::Durable`] —
//! never silently applied-but-lost.
//!
//! # Example
//!
//! ```
//! # use octocache::durable::{self, DurableMap};
//! # use octocache::pipeline::{MappingSystem, OctoMapSystem, RayTracer};
//! # use octocache::CacheConfig;
//! # use octocache_geom::{Point3, VoxelGrid};
//! # use octocache_octomap::OccupancyParams;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("octo-durable-doc-{}", std::process::id()));
//! let grid = VoxelGrid::new(0.25, 8)?;
//! let params = OccupancyParams::default();
//! let config = CacheConfig::builder().checkpoint_every(2).build()?;
//! let inner = OctoMapSystem::new(grid, params);
//! let mut map = DurableMap::create(&dir, inner, params, RayTracer::Standard, &config)?;
//! map.insert_scan(Point3::ZERO, &[Point3::new(2.0, 0.3, 0.1)], 10.0)?;
//! map.seal()?;
//! // A fresh process recovers the identical map.
//! let (tree, report) = durable::recover(&dir)?;
//! assert_eq!(report.final_epoch, 1);
//! assert_eq!(tree.leaf_checksum(), report.leaf_checksum);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

mod checkpoint;
mod iofault;
mod journal;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use octocache_geom::{GeomError, Point3, VoxelGrid, VoxelKey};
use octocache_octomap::stats::StatsSnapshot;
use octocache_octomap::{insert, rt, OccupancyOcTree, OccupancyParams, TreeLayout};
use octocache_telemetry::{EventLog, PhaseHistograms, PhaseTimes, Recorder};

use crate::cache::CacheStats;
use crate::config::CacheConfig;
use crate::fault::{FaultCounters, Integrity, IntegrityTransition, PipelineError};
use crate::pipeline::{MappingSystem, OctoMapSystem, RayTracer, ScanReport};
use crate::query::{MapSnapshot, QueryHandle};
use crate::supervisor::{ScanOutcome, ShedReason};

use checkpoint::CheckpointStore;
use journal::{Journal, JournalHeader, JournalRecord, TailStatus, JOURNAL_FILE};

pub use iofault::{IoFaultPlan, KillPoint};

/// Errors from the durability layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        reason: String,
    },
    /// A deterministic [`IoFaultPlan`] kill fired: the process is presumed
    /// dead at this point; tests stop the run here and exercise recovery.
    InjectedCrash {
        /// The persistence-operation index that crashed.
        op: u64,
        /// Where inside the operation the kill fired.
        point: KillPoint,
    },
    /// A durable file exists but its contents are damaged beyond what the
    /// tail-truncation rules absorb (e.g. a torn journal header).
    Corrupt {
        /// The damaged file.
        path: String,
        /// What was wrong.
        reason: String,
    },
    /// The durable directory has no journal — nothing was ever persisted
    /// (or creation crashed before the header was published).
    Missing {
        /// The expected journal path.
        path: String,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { path, reason } => write!(f, "I/O error on {path}: {reason}"),
            DurableError::InjectedCrash { op, point } => {
                write!(f, "injected crash at persistence op {op} ({point})")
            }
            DurableError::Corrupt { path, reason } => {
                write!(f, "corrupt durable file {path}: {reason}")
            }
            DurableError::Missing { path } => {
                write!(f, "no journal at {path}: nothing durable to recover")
            }
        }
    }
}

impl std::error::Error for DurableError {}

/// Cumulative durability counters for one [`DurableMap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Journal records appended.
    pub journal_records: u64,
    /// Journal bytes appended (frames, excluding the header).
    pub journal_bytes: u64,
    /// Total nanoseconds spent appending (and fsync-ing) the journal.
    pub journal_append_ns: u64,
    /// Checkpoint generations written.
    pub checkpoints_written: u64,
    /// Total nanoseconds spent serialising + publishing checkpoints.
    pub checkpoint_write_ns: u64,
    /// Epoch of the newest checkpoint (0 when none yet).
    pub last_checkpoint_epoch: u64,
}

/// What [`recover`] found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint recovery started from; `None` when no
    /// usable checkpoint existed and the whole journal was replayed.
    pub checkpoint_epoch: Option<u64>,
    /// Checkpoint generations that failed integrity checks and were
    /// skipped (`file: reason` strings, newest first).
    pub checkpoints_skipped: Vec<String>,
    /// Journal records replayed on top of the checkpoint.
    pub records_replayed: u64,
    /// Journal records skipped during replay because their geometry was
    /// invalid (they were never applied in the original run either).
    pub records_skipped: u64,
    /// Journal records flagged as shed by admission control: recorded so
    /// the log stays a faithful input history, never applied — in the
    /// original run or on replay.
    pub records_shed: u64,
    /// Damaged journal-tail bytes dropped as a clean end-of-log.
    pub tail_dropped_bytes: u64,
    /// The scan epoch of the recovered map (checkpoint epoch or last
    /// replayed record, whichever is newer).
    pub final_epoch: u64,
    /// [`OccupancyOcTree::leaf_checksum`] of the recovered map.
    pub leaf_checksum: u64,
    /// The ray-tracing front-end the journal was recorded with (replay
    /// uses the same one).
    pub ray_tracer: RayTracer,
}

impl RecoveryReport {
    /// True when recovery found nothing abnormal: no skipped checkpoint
    /// generations and no damaged journal tail. A clean-shutdown directory
    /// always recovers clean, with zero records to replay past the final
    /// checkpoint.
    pub fn is_clean(&self) -> bool {
        self.checkpoints_skipped.is_empty() && self.tail_dropped_bytes == 0
    }

    /// Multi-line human-readable summary (used by `octocache recover`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.checkpoint_epoch {
            Some(e) => out.push_str(&format!("checkpoint:        epoch {e}\n")),
            None => out.push_str("checkpoint:        none (full journal replay)\n"),
        }
        for s in &self.checkpoints_skipped {
            out.push_str(&format!("skipped:           {s}\n"));
        }
        out.push_str(&format!("records replayed:  {}\n", self.records_replayed));
        if self.records_skipped > 0 {
            out.push_str(&format!("records skipped:   {}\n", self.records_skipped));
        }
        if self.records_shed > 0 {
            out.push_str(&format!("records shed:      {}\n", self.records_shed));
        }
        if self.tail_dropped_bytes > 0 {
            out.push_str(&format!(
                "journal tail:      {} damaged bytes dropped\n",
                self.tail_dropped_bytes
            ));
        }
        out.push_str(&format!("final epoch:       {}\n", self.final_epoch));
        out.push_str(&format!(
            "leaf checksum:     {:#018x}\n",
            self.leaf_checksum
        ));
        out.push_str(&format!(
            "status:            {}\n",
            if self.is_clean() {
                "clean"
            } else {
                "recovered"
            }
        ));
        out
    }
}

/// Reconstructs the map persisted in `dir`, storing it in the ambient
/// default layout ([`TreeLayout::default_from_env`]).
///
/// # Errors
///
/// [`DurableError::Missing`] when `dir` holds no journal,
/// [`DurableError::Corrupt`] when the journal header is damaged, or
/// [`DurableError::Io`] for filesystem failures. Damaged checkpoint
/// generations and journal tails are *not* errors — they are skipped or
/// truncated and reported in the [`RecoveryReport`].
pub fn recover(dir: impl AsRef<Path>) -> Result<(OccupancyOcTree, RecoveryReport), DurableError> {
    recover_with_layout(dir, TreeLayout::default_from_env())
}

/// As [`recover`], with an explicit storage layout for the recovered tree.
///
/// # Errors
///
/// See [`recover`].
pub fn recover_with_layout(
    dir: impl AsRef<Path>,
    layout: TreeLayout,
) -> Result<(OccupancyOcTree, RecoveryReport), DurableError> {
    let (tree, report, _, _) = recover_internal(dir.as_ref(), layout)?;
    Ok((tree, report))
}

fn recover_internal(
    dir: &Path,
    layout: TreeLayout,
) -> Result<(OccupancyOcTree, RecoveryReport, JournalHeader, u64), DurableError> {
    let journal_path = dir.join(JOURNAL_FILE);
    if !journal_path.exists() {
        return Err(DurableError::Missing {
            path: journal_path.display().to_string(),
        });
    }
    let contents = journal::read_journal(&journal_path)?;
    let header = contents.header;
    let grid =
        VoxelGrid::new(header.resolution, header.depth).map_err(|e| DurableError::Corrupt {
            path: journal_path.display().to_string(),
            reason: format!("invalid grid in journal header: {e}"),
        })?;
    let store = CheckpointStore::new(dir, 1);
    let (loaded, checkpoints_skipped) = store.load_latest(layout);
    let (mut tree, checkpoint_epoch) = match loaded {
        Some(c) => (c.tree, Some(c.epoch)),
        None => (
            OccupancyOcTree::with_layout(grid, header.params, layout),
            None,
        ),
    };
    let replay_from = checkpoint_epoch.unwrap_or(0);
    let mut batch = insert::VoxelBatch::new();
    let mut records_replayed = 0u64;
    let mut records_skipped = 0u64;
    let mut records_shed = 0u64;
    let mut final_epoch = replay_from;
    for record in &contents.records {
        final_epoch = final_epoch.max(record.epoch);
        if record.epoch <= replay_from {
            continue;
        }
        if record.shed {
            // Shed in the original run, so never applied: the record
            // advances the epoch but contributes nothing to the map.
            records_shed += 1;
            continue;
        }
        match insert::compute_update(
            tree.grid(),
            record.origin,
            &record.points,
            record.max_range,
            &mut batch,
        ) {
            Ok(()) => {
                match header.ray_tracer {
                    RayTracer::Standard => insert::apply_batch(&mut tree, &batch),
                    RayTracer::Dedup => {
                        let deduped = rt::dedup_batch(&batch);
                        insert::apply_batch(&mut tree, &deduped);
                    }
                }
                records_replayed += 1;
            }
            // The original run rejected this scan too (Geom errors are
            // transactional): skipping keeps replay bit-identical.
            Err(_) => records_skipped += 1,
        }
    }
    let tail_dropped_bytes = match contents.tail {
        TailStatus::Clean => 0,
        TailStatus::Truncated { dropped_bytes, .. } => dropped_bytes,
    };
    let report = RecoveryReport {
        checkpoint_epoch,
        checkpoints_skipped,
        records_replayed,
        records_skipped,
        records_shed,
        tail_dropped_bytes,
        final_epoch,
        leaf_checksum: tree.leaf_checksum(),
        ray_tracer: header.ray_tracer,
    };
    Ok((tree, report, header, contents.valid_bytes))
}

/// A [`MappingSystem`] wrapper that makes any backend durable: scans are
/// journaled before they are applied, checkpoints are written periodically
/// from the backend's lock-free [`MapSnapshot`], and
/// [`recover`]/[`DurableMap::resume`] reconstruct the map after a crash.
///
/// Works over all four backends (and their `-rt` variants): the journal
/// records *inputs*, and since every backend produces bit-identical maps
/// for a given ray tracer (the differential guarantee), replaying inputs
/// through the baseline path reproduces any backend's map exactly.
pub struct DurableMap {
    inner: Box<dyn MappingSystem>,
    journal: Journal,
    store: CheckpointStore,
    vfs: iofault::Vfs,
    checkpoint_every: u64,
    /// Journal records written so far (1-based scan epochs).
    epoch: u64,
    last_checkpoint: u64,
    stats: DurableStats,
    seal_error: Option<DurableError>,
}

impl fmt::Debug for DurableMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableMap")
            .field("inner", &self.inner.name())
            .field("epoch", &self.epoch)
            .field("last_checkpoint", &self.last_checkpoint)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl DurableMap {
    /// Wraps `inner` with durability rooted at `dir` (created if absent):
    /// an empty journal is published and checkpoints will go to
    /// `dir/checkpoints/`. `params` must be the sensor model `inner` was
    /// built with and `ray_tracer` its front-end — both go into the journal
    /// header so recovery replays identically.
    ///
    /// Under the `fault-injection` feature an [`IoFaultPlan`] is read from
    /// `OCTO_IO_FAULT`/`OCTO_IO_FAULT_SEED`; use
    /// [`DurableMap::create_with_io_faults`] for programmatic plans.
    ///
    /// # Errors
    ///
    /// [`DurableError`] when the directory or journal cannot be created.
    pub fn create<M: MappingSystem + 'static>(
        dir: impl AsRef<Path>,
        inner: M,
        params: OccupancyParams,
        ray_tracer: RayTracer,
        config: &CacheConfig,
    ) -> Result<DurableMap, DurableError> {
        #[cfg(any(test, feature = "fault-injection"))]
        let plan = IoFaultPlan::from_env();
        #[cfg(not(any(test, feature = "fault-injection")))]
        let plan = None;
        Self::create_with_io_faults(dir, inner, params, ray_tracer, config, plan)
    }

    /// As [`DurableMap::create`], with an explicit deterministic I/O fault
    /// plan (`None` = no injected faults).
    ///
    /// # Errors
    ///
    /// [`DurableError`] when the directory or journal cannot be created
    /// (including an [`DurableError::InjectedCrash`] scheduled on the
    /// journal-creation operation).
    pub fn create_with_io_faults<M: MappingSystem + 'static>(
        dir: impl AsRef<Path>,
        inner: M,
        params: OccupancyParams,
        ray_tracer: RayTracer,
        config: &CacheConfig,
        plan: Option<IoFaultPlan>,
    ) -> Result<DurableMap, DurableError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| iofault::io_err(dir, &e))?;
        let store = CheckpointStore::new(dir, config.checkpoint_generations());
        store.ensure_dir()?;
        let grid = inner.grid();
        let header = JournalHeader::new(grid.resolution(), grid.depth(), params, ray_tracer);
        let mut vfs = iofault::Vfs::new(plan);
        let journal = Journal::create(dir, &header, config.journal_fsync(), &mut vfs)?;
        Ok(DurableMap {
            inner: Box::new(inner),
            journal,
            store,
            vfs,
            checkpoint_every: config.checkpoint_every(),
            epoch: 0,
            last_checkpoint: 0,
            stats: DurableStats::default(),
            seal_error: None,
        })
    }

    /// Recovers the map persisted in `dir` and resumes durable mapping on
    /// it: the damaged journal tail (if any) is truncated away, appends
    /// continue at the recovered epoch, and the mapping backend is the
    /// OctoMap baseline seeded with the recovered tree (in
    /// `config.resolved_tree_layout()`), using the ray tracer recorded in
    /// the journal header.
    ///
    /// # Errors
    ///
    /// See [`recover`], plus [`DurableError::Io`] when the journal cannot
    /// be reopened for appending.
    pub fn resume(
        dir: impl AsRef<Path>,
        config: &CacheConfig,
    ) -> Result<(DurableMap, RecoveryReport), DurableError> {
        let dir = dir.as_ref();
        let layout = config.resolved_tree_layout();
        let (tree, report, header, valid_bytes) = recover_internal(dir, layout)?;
        let journal = Journal::open_truncated(
            dir.join(JOURNAL_FILE),
            valid_bytes,
            config.journal_fsync(),
            header.version,
        )?;
        let inner = OctoMapSystem::from_tree(tree, header.ray_tracer);
        #[cfg(any(test, feature = "fault-injection"))]
        let plan = IoFaultPlan::from_env();
        #[cfg(not(any(test, feature = "fault-injection")))]
        let plan = None;
        let map = DurableMap {
            inner: Box::new(inner),
            journal,
            store: CheckpointStore::new(dir, config.checkpoint_generations()),
            vfs: iofault::Vfs::new(plan),
            checkpoint_every: config.checkpoint_every(),
            epoch: report.final_epoch,
            last_checkpoint: report.checkpoint_epoch.unwrap_or(0),
            stats: DurableStats {
                last_checkpoint_epoch: report.checkpoint_epoch.unwrap_or(0),
                ..DurableStats::default()
            },
            seal_error: None,
        };
        Ok((map, report))
    }

    /// Cumulative durability counters.
    pub fn stats(&self) -> DurableStats {
        self.stats
    }

    /// The scan epoch: journal records written over this map's lifetime
    /// (including, after [`DurableMap::resume`], the recovered prefix).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The error of the best-effort seal performed by the last
    /// [`MappingSystem::finish`] call, if it failed. Callers that need the
    /// final checkpoint to be guaranteed should call [`DurableMap::seal`]
    /// directly and handle the `Result`.
    pub fn seal_error(&self) -> Option<&DurableError> {
        self.seal_error.as_ref()
    }

    /// Forces the journal to disk and writes a final checkpoint at the
    /// current epoch, making subsequent recovery a pure checkpoint load
    /// (zero records to replay). Idempotent.
    ///
    /// # Errors
    ///
    /// [`DurableError`] when the sync or the checkpoint publication fails.
    pub fn seal(&mut self) -> Result<(), DurableError> {
        self.journal.sync()?;
        self.write_checkpoint()?;
        Ok(())
    }

    fn write_checkpoint(&mut self) -> Result<(), DurableError> {
        if self.stats.checkpoints_written > 0 && self.last_checkpoint == self.epoch {
            return Ok(());
        }
        let t0 = Instant::now();
        let snapshot = self.inner.snapshot();
        self.store
            .write(&mut self.vfs, snapshot.tree(), self.epoch)?;
        self.last_checkpoint = self.epoch;
        self.stats.checkpoints_written += 1;
        self.stats.last_checkpoint_epoch = self.epoch;
        self.stats.checkpoint_write_ns += t0.elapsed().as_nanos() as u64;
        Ok(())
    }
}

impl MappingSystem for DurableMap {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn grid(&self) -> &VoxelGrid {
        self.inner.grid()
    }

    fn insert_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanReport, PipelineError> {
        // Enforce the memory budget *before* journaling: a scan the inner
        // engine will reject as OverBudget must never enter the log as an
        // applied record, or replay would apply what the live run refused.
        self.inner.budget_check()?;
        // Periodic checkpoint first, covering the scans applied so far: the
        // snapshot is at a scan boundary, and a crash during the checkpoint
        // loses nothing (the previous generation + journal still recover
        // everything).
        let mut checkpoint_ns = 0u64;
        if self.checkpoint_every > 0
            && self.epoch.saturating_sub(self.last_checkpoint) >= self.checkpoint_every
        {
            let before = self.stats.checkpoint_write_ns;
            self.write_checkpoint().map_err(PipelineError::Durable)?;
            checkpoint_ns = self.stats.checkpoint_write_ns - before;
        }
        // Journal the scan before applying it (write-ahead ordering).
        let record = JournalRecord {
            epoch: self.epoch + 1,
            origin,
            max_range,
            points: cloud.to_vec(),
            shed: false,
        };
        let t0 = Instant::now();
        let bytes = self
            .journal
            .append(&mut self.vfs, &record)
            .map_err(PipelineError::Durable)?;
        let journal_ns = t0.elapsed().as_nanos() as u64;
        self.epoch += 1;
        self.stats.journal_records += 1;
        self.stats.journal_bytes += bytes;
        self.stats.journal_append_ns += journal_ns;
        // Stamp this scan's durable latencies onto the inner engine; the
        // engine folds them into the record it assembles for this scan.
        self.inner
            .stamp_durable(journal_ns, checkpoint_ns, self.last_checkpoint);
        self.inner.insert_scan(origin, cloud, max_range)
    }

    fn submit_scan(
        &mut self,
        origin: Point3,
        cloud: &[Point3],
        max_range: f64,
    ) -> Result<ScanOutcome, PipelineError> {
        // Ask the inner backend for the verdict *before* any side effect,
        // so the journal records the scan with the decision that was made.
        if let Some(reason) = self.inner.admission_check() {
            // A shed scan is journaled too (flagged, never applied): the
            // log stays a faithful history of everything offered to the
            // map, and replay reproduces exactly the applied subset. A
            // resumed version-1 journal has no flags byte; there the shed
            // scan stays out of the log entirely.
            if self.journal.supports_shed() {
                let record = JournalRecord {
                    epoch: self.epoch + 1,
                    origin,
                    max_range,
                    points: cloud.to_vec(),
                    shed: true,
                };
                let t0 = Instant::now();
                let bytes = self
                    .journal
                    .append(&mut self.vfs, &record)
                    .map_err(PipelineError::Durable)?;
                self.epoch += 1;
                self.stats.journal_records += 1;
                self.stats.journal_bytes += bytes;
                self.stats.journal_append_ns += t0.elapsed().as_nanos() as u64;
            }
            return Ok(ScanOutcome::Shed(reason));
        }
        // Admission already ran the governor; the redundant budget_check
        // inside insert_scan re-observes the same resident size and passes.
        self.insert_scan(origin, cloud, max_range)
            .map(ScanOutcome::Applied)
    }

    fn admission_check(&mut self) -> Option<ShedReason> {
        self.inner.admission_check()
    }

    fn budget_check(&mut self) -> Result<(), PipelineError> {
        self.inner.budget_check()
    }

    fn occupancy(&mut self, key: VoxelKey) -> Option<f32> {
        self.inner.occupancy(key)
    }

    fn is_occupied(&mut self, key: VoxelKey) -> Option<bool> {
        self.inner.is_occupied(key)
    }

    fn is_occupied_at(&mut self, p: Point3) -> Result<Option<bool>, GeomError> {
        self.inner.is_occupied_at(p)
    }

    fn finish(&mut self) -> PhaseTimes {
        let times = self.inner.finish();
        // `finish` cannot surface a Result; the seal outcome is kept for
        // callers that check (`seal_error`), and `seal()` remains available
        // for explicit error handling.
        self.seal_error = self.seal().err();
        times
    }

    fn phase_times(&self) -> PhaseTimes {
        self.inner.phase_times()
    }

    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.inner.set_recorder(recorder);
    }

    fn phase_histograms(&self) -> Option<&PhaseHistograms> {
        self.inner.phase_histograms()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache_stats()
    }

    fn tree_stats(&self) -> Option<StatsSnapshot> {
        self.inner.tree_stats()
    }

    fn take_events(&mut self) -> Option<EventLog> {
        self.inner.take_events()
    }

    fn integrity(&self) -> Integrity {
        self.inner.integrity()
    }

    fn integrity_transitions(&self) -> Vec<IntegrityTransition> {
        self.inner.integrity_transitions()
    }

    fn fault_counters(&self) -> FaultCounters {
        self.inner.fault_counters()
    }

    fn query_handle(&mut self) -> QueryHandle {
        self.inner.query_handle()
    }

    fn snapshot(&mut self) -> Arc<MapSnapshot> {
        self.inner.snapshot()
    }

    fn take_tree(self: Box<Self>) -> OccupancyOcTree {
        self.inner.take_tree()
    }
}

/// The journal file's path inside a durable directory (for tooling/tests).
pub fn journal_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(JOURNAL_FILE)
}

/// The checkpoint directory's path inside a durable directory.
pub fn checkpoint_dir(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(checkpoint::CHECKPOINT_SUBDIR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("octo-durable-{tag}-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn grid() -> VoxelGrid {
        VoxelGrid::new(0.25, 8).unwrap()
    }

    fn cloud(i: u64) -> Vec<Point3> {
        (0..24)
            .map(|j| {
                let a = (i * 24 + j) as f64 * 0.37;
                Point3::new(3.0 * a.cos(), 3.0 * a.sin(), 0.2 * (j as f64) - 2.0)
            })
            .collect()
    }

    fn run_scans(map: &mut dyn MappingSystem, from: u64, to: u64) {
        for i in from..to {
            map.insert_scan(Point3::new(0.1, 0.1, 0.1), &cloud(i), 12.0)
                .unwrap();
        }
    }

    #[test]
    fn seal_recover_round_trip_matches_live_map() {
        let dir = temp_dir("roundtrip");
        let params = OccupancyParams::default();
        let config = CacheConfig::builder().checkpoint_every(3).build().unwrap();
        let inner = OctoMapSystem::new(grid(), params);
        let mut map =
            DurableMap::create(&dir, inner, params, RayTracer::Standard, &config).unwrap();
        run_scans(&mut map, 0, 8);
        map.seal().unwrap();
        let live = Box::new(map).take_tree();

        let (tree, report) = recover(&dir).unwrap();
        assert!(report.is_clean(), "clean shutdown must recover clean");
        assert_eq!(report.final_epoch, 8);
        assert_eq!(report.records_replayed, 0, "seal leaves nothing to replay");
        assert_eq!(tree.leaf_checksum(), live.leaf_checksum());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsealed_journal_replays_to_identical_map() {
        let dir = temp_dir("replay");
        let params = OccupancyParams::default();
        let config = CacheConfig::builder().checkpoint_every(3).build().unwrap();
        let inner = OctoMapSystem::new(grid(), params);
        let mut map =
            DurableMap::create(&dir, inner, params, RayTracer::Standard, &config).unwrap();
        run_scans(&mut map, 0, 7);
        // No seal: recovery starts from the epoch-6 periodic checkpoint and
        // replays the journaled scan 7.
        let live = Box::new(map).take_tree();

        let (tree, report) = recover(&dir).unwrap();
        assert_eq!(report.checkpoint_epoch, Some(6));
        assert_eq!(report.records_replayed, 1);
        assert_eq!(report.final_epoch, 7);
        assert_eq!(tree.leaf_checksum(), live.leaf_checksum());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_continues_epochs_and_converges() {
        let dir_a = temp_dir("resume-a");
        let dir_b = temp_dir("resume-b");
        let params = OccupancyParams::default();
        let config = CacheConfig::builder().checkpoint_every(4).build().unwrap();

        // Reference: 10 scans in one uninterrupted run.
        let mut reference = DurableMap::create(
            &dir_b,
            OctoMapSystem::new(grid(), params),
            params,
            RayTracer::Standard,
            &config,
        )
        .unwrap();
        run_scans(&mut reference, 0, 10);
        let reference_tree = Box::new(reference).take_tree();

        // Interrupted run: 6 scans, drop without sealing, resume, 4 more.
        let mut first = DurableMap::create(
            &dir_a,
            OctoMapSystem::new(grid(), params),
            params,
            RayTracer::Standard,
            &config,
        )
        .unwrap();
        run_scans(&mut first, 0, 6);
        drop(first);
        let (mut resumed, report) = DurableMap::resume(&dir_a, &config).unwrap();
        assert_eq!(report.final_epoch, 6);
        assert_eq!(resumed.epoch(), 6);
        run_scans(&mut resumed, 6, 10);
        resumed.seal().unwrap();
        let resumed_tree = Box::new(resumed).take_tree();

        assert_eq!(resumed_tree.leaf_checksum(), reference_tree.leaf_checksum());

        // And the sealed directory recovers to the same map again.
        let (tree, report) = recover(&dir_a).unwrap();
        assert_eq!(report.final_epoch, 10);
        assert_eq!(tree.leaf_checksum(), reference_tree.leaf_checksum());
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn recover_missing_directory_is_typed() {
        let dir = temp_dir("missing");
        match recover(&dir) {
            Err(DurableError::Missing { .. }) => {}
            other => panic!("expected Missing, got {other:?}"),
        }
    }

    #[test]
    fn injected_crash_surfaces_as_durable_pipeline_error() {
        let dir = temp_dir("crashkill");
        let params = OccupancyParams::default();
        let config = CacheConfig::builder().checkpoint_every(0).build().unwrap();
        let plan = IoFaultPlan {
            // Op 0 is journal creation; op 2 is the second scan's append.
            kill: Some((2, KillPoint::BeforeWrite)),
            flip: None,
        };
        let mut map = DurableMap::create_with_io_faults(
            &dir,
            OctoMapSystem::new(grid(), params),
            params,
            RayTracer::Standard,
            &config,
            Some(plan),
        )
        .unwrap();
        map.insert_scan(Point3::ZERO, &cloud(0), 12.0).unwrap();
        let err = map.insert_scan(Point3::ZERO, &cloud(1), 12.0).unwrap_err();
        match err {
            PipelineError::Durable(DurableError::InjectedCrash { op: 2, point }) => {
                assert_eq!(point, KillPoint::BeforeWrite);
            }
            other => panic!("expected injected crash, got {other:?}"),
        }
        // The write-ahead contract: the failed scan was never applied, so
        // recovery sees exactly one epoch.
        let (_, report) = recover(&dir).unwrap();
        assert_eq!(report.final_epoch, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_and_scan_records_carry_durable_latencies() {
        let dir = temp_dir("stats");
        let params = OccupancyParams::default();
        let config = CacheConfig::builder().checkpoint_every(2).build().unwrap();
        let mut map = DurableMap::create(
            &dir,
            OctoMapSystem::new(grid(), params),
            params,
            RayTracer::Standard,
            &config,
        )
        .unwrap();
        let recorder = octocache_telemetry::SharedRecorder::new();
        map.set_recorder(Box::new(recorder.clone()));
        run_scans(&mut map, 0, 5);
        map.seal().unwrap();

        let stats = map.stats();
        assert_eq!(stats.journal_records, 5);
        assert!(stats.journal_bytes > 0);
        // Periodic checkpoints at epochs 2 and 4, plus the seal at 5.
        assert_eq!(stats.checkpoints_written, 3);
        assert_eq!(stats.last_checkpoint_epoch, 5);

        let records = recorder.records();
        assert_eq!(records.len(), 5);
        assert!(records.iter().all(|r| r.journal_append_ns > 0));
        // Scan 3 (0-based seq 2) ran right after the epoch-2 checkpoint.
        assert!(records[2].checkpoint_write_ns > 0);
        assert_eq!(records[2].checkpoint_epoch, 2);
        assert_eq!(records[0].checkpoint_epoch, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn render_and_displays() {
        let report = RecoveryReport {
            checkpoint_epoch: Some(4),
            checkpoints_skipped: vec!["ckpt-x.ot: bad".to_string()],
            records_replayed: 2,
            records_skipped: 1,
            records_shed: 1,
            tail_dropped_bytes: 17,
            final_epoch: 6,
            leaf_checksum: 0xabcd,
            ray_tracer: RayTracer::Standard,
        };
        let text = report.render();
        assert!(text.contains("epoch 4"));
        assert!(text.contains("recovered"));
        assert!(!report.is_clean());

        let errs = [
            DurableError::Io {
                path: "p".into(),
                reason: "denied".into(),
            },
            DurableError::InjectedCrash {
                op: 3,
                point: KillPoint::MidWrite,
            },
            DurableError::Corrupt {
                path: "j".into(),
                reason: "bad magic".into(),
            },
            DurableError::Missing { path: "j".into() },
        ];
        for e in errs {
            assert!(!format!("{e}").is_empty());
        }
    }
}
