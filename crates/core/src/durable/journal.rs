//! The append-only scan journal (write-ahead log).
//!
//! Layout on disk (all integers big-endian, like the map formats):
//!
//! ```text
//! header:  "OCTJRNL1" | version u8 | resolution f64 | depth u8
//!          | δ_occ f32 | δ_free f32 | clamp_min f32 | clamp_max f32
//!          | threshold f32 | ray_tracer u8 | crc32(header so far) u32
//! record:  payload_len u32 | crc32(payload) u32 | payload
//! payload: epoch u64 | flags u8 (v2+) | origin x,y,z f64 | max_range f64
//!          | npoints u32 | npoints × (x,y,z f64)
//! ```
//!
//! Version 2 added a flags byte after the epoch; bit 0 marks a **shed**
//! scan — one the supervisor's admission gate rejected. Shed records keep
//! the journal a faithful input log (every scan offered to the map is
//! recorded, with its verdict) and advance the epoch, but recovery never
//! applies them. Version-1 journals (no flags byte) read as all-applied.
//!
//! Points are stored at full `f64` precision (unlike the `f32` scan-log
//! dataset format) because recovery replays them through the exact insert
//! path and must reproduce bit-identical log-odds.
//!
//! The reader treats *any* damage from some byte offset onward — a torn
//! frame, a CRC mismatch, a non-monotonic epoch, an oversized length — as a
//! clean end-of-log: records before the damage are returned, the rest is
//! reported (and truncated away on resume), never an error. Only a missing
//! or corrupt *header* fails the journal as a whole, and the header is
//! published atomically so a crash can only omit it entirely.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, BytesMut};
use octocache_geom::Point3;
use octocache_octomap::checksum::crc32;
use octocache_octomap::OccupancyParams;

use super::iofault::{io_err, Vfs};
use super::DurableError;
use crate::pipeline::RayTracer;

const MAGIC: &[u8; 8] = b"OCTJRNL1";
/// Current write version. Version 2 = per-record flags byte (shed bit);
/// version-1 journals are still readable.
const VERSION: u8 = 2;
/// Record flag bit: the scan was shed by admission control, never applied.
const FLAG_SHED: u8 = 1 << 0;
/// Header size: magic 8 + version 1 + resolution 8 + depth 1 + params 20
/// + ray tracer 1 + crc 4.
pub(crate) const HEADER_LEN: usize = 8 + 1 + 8 + 1 + 20 + 1 + 4;
/// Cap on one record's payload (≈ 5.5 M points). Anything larger in a
/// length frame is corruption, not data — preallocation stays bounded.
const MAX_PAYLOAD: u32 = 1 << 27;
/// The journal's file name inside a durable directory.
pub(crate) const JOURNAL_FILE: &str = "journal";

/// The immutable per-run metadata recorded when a journal is created.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct JournalHeader {
    pub resolution: f64,
    pub depth: u8,
    pub params: OccupancyParams,
    pub ray_tracer: RayTracer,
    /// Format version the journal was written with (1 or 2); freshly
    /// created journals always use [`VERSION`].
    pub version: u8,
}

impl JournalHeader {
    /// A header for a freshly created journal, in the current format.
    pub fn new(
        resolution: f64,
        depth: u8,
        params: OccupancyParams,
        ray_tracer: RayTracer,
    ) -> JournalHeader {
        JournalHeader {
            resolution,
            depth,
            params,
            ray_tracer,
            version: VERSION,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(HEADER_LEN);
        buf.put_slice(MAGIC);
        buf.put_u8(self.version);
        buf.put_f64(self.resolution);
        buf.put_u8(self.depth);
        buf.put_f32(self.params.delta_occupied);
        buf.put_f32(self.params.delta_free);
        buf.put_f32(self.params.clamp_min);
        buf.put_f32(self.params.clamp_max);
        buf.put_f32(self.params.threshold);
        buf.put_u8(match self.ray_tracer {
            RayTracer::Standard => 0,
            RayTracer::Dedup => 1,
        });
        let crc = crc32(&buf[..]);
        buf.put_u32(crc);
        buf.to_vec()
    }

    fn decode(path: &Path, bytes: &[u8]) -> Result<JournalHeader, DurableError> {
        let corrupt = |reason: &str| DurableError::Corrupt {
            path: path.display().to_string(),
            reason: reason.to_string(),
        };
        if bytes.len() < HEADER_LEN {
            return Err(corrupt("journal shorter than its header"));
        }
        let mut buf = &bytes[..HEADER_LEN];
        if &buf[..8] != MAGIC {
            return Err(corrupt("bad journal magic"));
        }
        if crc32(&bytes[..HEADER_LEN - 4])
            != u32::from_be_bytes([
                bytes[HEADER_LEN - 4],
                bytes[HEADER_LEN - 3],
                bytes[HEADER_LEN - 2],
                bytes[HEADER_LEN - 1],
            ])
        {
            return Err(corrupt("journal header CRC mismatch"));
        }
        buf.advance(8);
        let version = buf.get_u8();
        if !(1..=VERSION).contains(&version) {
            return Err(corrupt("unsupported journal version"));
        }
        let resolution = buf.get_f64();
        let depth = buf.get_u8();
        let params = OccupancyParams {
            delta_occupied: buf.get_f32(),
            delta_free: buf.get_f32(),
            clamp_min: buf.get_f32(),
            clamp_max: buf.get_f32(),
            threshold: buf.get_f32(),
        };
        let ray_tracer = match buf.get_u8() {
            0 => RayTracer::Standard,
            1 => RayTracer::Dedup,
            _ => return Err(corrupt("unknown ray-tracer id")),
        };
        if params.validate().is_err() {
            return Err(corrupt("inconsistent occupancy params"));
        }
        Ok(JournalHeader {
            resolution,
            depth,
            params,
            ray_tracer,
            version,
        })
    }
}

/// One journaled scan.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JournalRecord {
    pub epoch: u64,
    pub origin: Point3,
    pub max_range: f64,
    pub points: Vec<Point3>,
    /// True when admission control shed this scan: recorded (the journal
    /// is a faithful input log) but never applied, on replay either.
    pub shed: bool,
}

impl JournalRecord {
    fn encode_frame(&self, version: u8) -> Vec<u8> {
        let payload_len = 8 + 1 + 24 + 8 + 4 + self.points.len() * 24;
        let mut payload = BytesMut::with_capacity(payload_len);
        payload.put_u64(self.epoch);
        if version >= 2 {
            payload.put_u8(if self.shed { FLAG_SHED } else { 0 });
        }
        payload.put_f64(self.origin.x);
        payload.put_f64(self.origin.y);
        payload.put_f64(self.origin.z);
        payload.put_f64(self.max_range);
        payload.put_u32(self.points.len() as u32);
        for p in &self.points {
            payload.put_f64(p.x);
            payload.put_f64(p.y);
            payload.put_f64(p.z);
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.put_u32(payload.len() as u32);
        frame.put_u32(crc32(&payload[..]));
        frame.put_slice(&payload[..]);
        frame
    }

    fn decode_payload(mut buf: &[u8], version: u8) -> Option<JournalRecord> {
        let flags_len = if version >= 2 { 1 } else { 0 };
        if buf.len() < 8 + flags_len + 24 + 8 + 4 {
            return None;
        }
        let epoch = buf.get_u64();
        let shed = if version >= 2 {
            let flags = buf.get_u8();
            if flags & !FLAG_SHED != 0 {
                // Unknown flag bits: a future format (or bit rot), not
                // this reader's data.
                return None;
            }
            flags & FLAG_SHED != 0
        } else {
            false
        };
        let origin = Point3::new(buf.get_f64(), buf.get_f64(), buf.get_f64());
        let max_range = buf.get_f64();
        let npoints = buf.get_u32() as usize;
        if buf.remaining() != npoints * 24 {
            return None;
        }
        let mut points = Vec::with_capacity(npoints);
        for _ in 0..npoints {
            points.push(Point3::new(buf.get_f64(), buf.get_f64(), buf.get_f64()));
        }
        Some(JournalRecord {
            epoch,
            origin,
            max_range,
            points,
            shed,
        })
    }
}

/// Whether the journal's tail was intact or damaged (and cleanly cut).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TailStatus {
    Clean,
    Truncated {
        /// Bytes of the valid prefix (header + whole records).
        valid_bytes: u64,
        /// Damaged bytes dropped after the prefix.
        dropped_bytes: u64,
    },
}

/// Everything a journal scan yields.
#[derive(Debug)]
pub(crate) struct JournalContents {
    pub header: JournalHeader,
    pub records: Vec<JournalRecord>,
    pub tail: TailStatus,
    /// Byte length of the valid prefix — where appends resume after a
    /// crash.
    pub valid_bytes: u64,
}

/// Reads a journal, stopping cleanly at the first damaged frame.
pub(crate) fn read_journal(path: &Path) -> Result<JournalContents, DurableError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, &e))?;
    let header = JournalHeader::decode(path, &bytes)?;
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    let mut last_epoch = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return Ok(JournalContents {
                header,
                records,
                tail: TailStatus::Clean,
                valid_bytes: pos as u64,
            });
        }
        let frame_ok = (|| {
            if rest.len() < 8 {
                return None;
            }
            let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
            let crc = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]);
            if len == 0 || len > MAX_PAYLOAD || rest.len() < 8 + len as usize {
                return None;
            }
            let payload = &rest[8..8 + len as usize];
            if crc32(payload) != crc {
                return None;
            }
            let record = JournalRecord::decode_payload(payload, header.version)?;
            if record.epoch <= last_epoch {
                return None;
            }
            Some((record, 8 + len as usize))
        })();
        match frame_ok {
            Some((record, consumed)) => {
                last_epoch = record.epoch;
                records.push(record);
                pos += consumed;
            }
            None => {
                return Ok(JournalContents {
                    header,
                    records,
                    tail: TailStatus::Truncated {
                        valid_bytes: pos as u64,
                        dropped_bytes: (bytes.len() - pos) as u64,
                    },
                    valid_bytes: pos as u64,
                });
            }
        }
    }
}

/// The append handle used by `DurableMap`.
#[derive(Debug)]
pub(crate) struct Journal {
    file: File,
    path: PathBuf,
    fsync: bool,
    /// Format version appends must use — the header's version, so records
    /// appended after a resume stay parseable under the existing header.
    version: u8,
}

impl Journal {
    /// Creates a fresh journal: the header is published atomically (so a
    /// crash during creation leaves either no journal or a complete
    /// header), then the file is reopened for appends.
    pub fn create(
        dir: &Path,
        header: &JournalHeader,
        fsync: bool,
        vfs: &mut Vfs,
    ) -> Result<Journal, DurableError> {
        vfs.write_atomic(dir, JOURNAL_FILE, &header.encode())?;
        Self::open_at_end(dir.join(JOURNAL_FILE), None, fsync, VERSION)
    }

    /// Reopens an existing journal for appends, first truncating any
    /// damaged tail to `valid_bytes`. `version` is the header's format
    /// version; appends keep encoding in it.
    pub fn open_truncated(
        path: PathBuf,
        valid_bytes: u64,
        fsync: bool,
        version: u8,
    ) -> Result<Journal, DurableError> {
        Self::open_at_end(path, Some(valid_bytes), fsync, version)
    }

    fn open_at_end(
        path: PathBuf,
        truncate_to: Option<u64>,
        fsync: bool,
        version: u8,
    ) -> Result<Journal, DurableError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        if let Some(len) = truncate_to {
            file.set_len(len).map_err(|e| io_err(&path, &e))?;
            file.sync_data().map_err(|e| io_err(&path, &e))?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(&path, &e))?;
        Ok(Journal {
            file,
            path,
            fsync,
            version,
        })
    }

    /// Whether this journal's format can record shed scans (version ≥ 2).
    /// Version-1 journals (resumed from a pre-flags run) record applied
    /// scans only — a shed scan is simply absent from the log.
    pub fn supports_shed(&self) -> bool {
        self.version >= 2
    }

    /// Appends one scan record (one persistence operation on `vfs`).
    /// Returns the frame size in bytes.
    pub fn append(&mut self, vfs: &mut Vfs, record: &JournalRecord) -> Result<u64, DurableError> {
        let frame = record.encode_frame(self.version);
        vfs.append(&mut self.file, &self.path, &frame, self.fsync)?;
        Ok(frame.len() as u64)
    }

    /// Forces everything to disk (used on seal even when per-append fsync
    /// is off).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.file.sync_data().map_err(|e| io_err(&self.path, &e))
    }
}
