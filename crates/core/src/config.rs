use std::fmt;
use std::time::Duration;

use octocache_octomap::TreeLayout;
use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;

/// How incoming voxels are mapped to cache buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IndexPolicy {
    /// `hash(v) mod w` — the strawman design of paper §4.2.
    Hash,
    /// `morton(v) mod w` — the Morton-code policy of paper §4.3 (default).
    /// Sequential bucket eviction then emits voxels in an order aligned with
    /// their Morton codes, which maximises octree insertion locality.
    #[default]
    Morton,
}

impl fmt::Display for IndexPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexPolicy::Hash => write!(f, "hash"),
            IndexPolicy::Morton => write!(f, "morton"),
        }
    }
}

/// The order in which evicted voxels are emitted toward the octree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EvictionOrder {
    /// Scan buckets sequentially and pop the oldest cells of each
    /// over-full bucket — the paper's design (§4.2.2). With
    /// [`IndexPolicy::Morton`] this yields a Morton-aligned stream.
    #[default]
    BucketSequential,
    /// Additionally sort the evicted batch by full Morton code. Used by the
    /// ablation `abl_eviction_order` to bound how much locality the
    /// bucket-sequential approximation gives up.
    FullMortonSort,
    /// Emit in global insertion (FIFO) order, ignoring bucket structure —
    /// a deliberately locality-free baseline for the same ablation.
    InsertionFifo,
}

impl fmt::Display for EvictionOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvictionOrder::BucketSequential => write!(f, "bucket-sequential"),
            EvictionOrder::FullMortonSort => write!(f, "full-morton-sort"),
            EvictionOrder::InsertionFifo => write!(f, "insertion-fifo"),
        }
    }
}

/// The producer-side wait/backoff shape used by every bounded wait in the
/// parallel pipeline (ring-full back-pressure, end-of-scan worker waits).
///
/// PR 3 hard-coded these; they are now configurable on [`CacheConfig`] so
/// latency-sensitive deployments can trade busy-spinning against clock
/// reads. A wait first spins `spin_iters` times without touching the
/// clock, then alternates `yields_per_check` thread yields with one
/// deadline check (the deadline itself stays
/// [`CacheConfig::stall_timeout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// Busy-spin iterations before the first clock read.
    pub spin_iters: u32,
    /// Thread yields between consecutive deadline checks (≥ 1). Larger
    /// values slice the deadline more coarsely but read the clock less.
    pub yields_per_check: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        // The PR 3 constants: 64 spins, check the clock on every yield.
        BackoffPolicy {
            spin_iters: 64,
            yields_per_check: 1,
        }
    }
}

/// Errors from validating a [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_buckets` must be a power of two (paper §4.2: "we set w always as
    /// a power of 2 to accelerate the mod operation").
    BucketsNotPowerOfTwo(usize),
    /// `num_buckets` must be at least 1.
    NoBuckets,
    /// `tau` must be at least 1.
    ZeroTau,
    /// `stall_timeout` must be non-zero (it bounds every pipeline wait; a
    /// zero deadline would fail scans spuriously).
    ZeroStallTimeout,
    /// `checkpoint_generations` must be at least 1 (zero would delete the
    /// checkpoint just written, leaving nothing to recover from).
    ZeroCheckpointGenerations,
    /// `backoff.yields_per_check` must be at least 1 (zero would never
    /// yield between clock reads, pinning a core against a wedged worker).
    ZeroYieldsPerCheck,
    /// `mem_budget` must be non-zero when set (a zero budget would reject
    /// every scan; use a small budget to test pressure, `None` to disable).
    ZeroMemBudget,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BucketsNotPowerOfTwo(w) => {
                write!(f, "num_buckets {w} is not a power of two")
            }
            ConfigError::NoBuckets => write!(f, "num_buckets must be at least 1"),
            ConfigError::ZeroTau => write!(f, "tau must be at least 1"),
            ConfigError::ZeroStallTimeout => {
                write!(f, "stall_timeout must be non-zero")
            }
            ConfigError::ZeroCheckpointGenerations => {
                write!(f, "checkpoint_generations must be at least 1")
            }
            ConfigError::ZeroYieldsPerCheck => {
                write!(f, "backoff.yields_per_check must be at least 1")
            }
            ConfigError::ZeroMemBudget => {
                write!(f, "mem_budget must be non-zero when set")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of the voxel cache.
///
/// The paper's UAV deployment uses `w = 512 Ki` buckets with `τ = 4`
/// (≈ 14 MB, §5.1); the 3D-construction experiments size the cache at 3–4×
/// the non-duplicate voxels per batch (§5.2). [`CacheConfig::default`]
/// matches the UAV setting scaled down by 8× to stay laptop-friendly.
///
/// # Example
///
/// ```
/// # use octocache::CacheConfig;
/// let cfg = CacheConfig::builder().num_buckets(1 << 16).tau(4).build()?;
/// assert_eq!(cfg.capacity_after_eviction(), (1 << 16) * 4);
/// # Ok::<(), octocache::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    num_buckets: usize,
    tau: usize,
    index_policy: IndexPolicy,
    eviction_order: EvictionOrder,
    stall_timeout: Duration,
    backoff: BackoffPolicy,
    tree_layout: Option<TreeLayout>,
    checkpoint_every: u64,
    checkpoint_generations: usize,
    journal_fsync: bool,
    mem_budget: Option<u64>,
    max_restarts: u32,
    restart_backoff: Duration,
    shed_deadline: Option<Duration>,
    #[serde(skip)]
    fault_plan: Option<FaultPlan>,
    #[serde(skip)]
    events: bool,
}

/// Default bound on every parallel-pipeline wait. Generous on purpose: a
/// healthy worker clears a batch in microseconds, so ten seconds only
/// trips when a worker is genuinely dead or wedged (and must stay far
/// above CI scheduling noise).
const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(10);

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            num_buckets: 1 << 16,
            tau: 4,
            index_policy: IndexPolicy::Morton,
            eviction_order: EvictionOrder::BucketSequential,
            stall_timeout: DEFAULT_STALL_TIMEOUT,
            backoff: BackoffPolicy::default(),
            tree_layout: None,
            checkpoint_every: 64,
            checkpoint_generations: 3,
            journal_fsync: true,
            mem_budget: None,
            max_restarts: 0,
            restart_backoff: Duration::ZERO,
            shed_deadline: None,
            fault_plan: None,
            events: false,
        }
    }
}

impl CacheConfig {
    /// Starts building a config.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::new()
    }

    /// Number of buckets `w` (a power of two).
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Maximum distinct voxels per bucket after eviction (`τ`).
    #[inline]
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The bucket indexing policy.
    #[inline]
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// The eviction emission order.
    #[inline]
    pub fn eviction_order(&self) -> EvictionOrder {
        self.eviction_order
    }

    /// Upper bound on any single wait inside the parallel pipeline
    /// (producer back-pressure, worker completion). When it expires the
    /// wait becomes a typed
    /// [`PipelineError::QueueStalled`](crate::fault::PipelineError) instead
    /// of a hang.
    #[inline]
    pub fn stall_timeout(&self) -> Duration {
        self.stall_timeout
    }

    /// The wait/backoff shape used by every bounded pipeline wait; see
    /// [`BackoffPolicy`].
    #[inline]
    pub fn backoff(&self) -> BackoffPolicy {
        self.backoff
    }

    /// The memory budget in bytes, if one is configured. When set, the
    /// engine's memory governor walks a graduated pressure ladder as
    /// resident bytes approach it (tighten τ-eviction → force prune →
    /// reject scans with
    /// [`PipelineError::OverBudget`](crate::fault::PipelineError)), with
    /// hysteresis so relief is not re-triggered on every scan. `None`
    /// (the default) disables the governor entirely.
    #[inline]
    pub fn mem_budget(&self) -> Option<u64> {
        self.mem_budget
    }

    /// How many times the supervisor may respawn each dead worker. `0`
    /// (the default) preserves the PR 3 behaviour: a dead worker degrades
    /// the pipeline permanently and its octants are served inline.
    #[inline]
    pub fn max_restarts(&self) -> u32 {
        self.max_restarts
    }

    /// Delay before each worker respawn (default zero).
    #[inline]
    pub fn restart_backoff(&self) -> Duration {
        self.restart_backoff
    }

    /// The scan-admission deadline: when the exponentially-weighted
    /// moving average of recent scan latencies exceeds it, the engine
    /// sheds incoming scans
    /// ([`ScanOutcome::Shed`](crate::supervisor::ScanOutcome)) until the
    /// average recovers. `None` (the default) admits every scan.
    #[inline]
    pub fn shed_deadline(&self) -> Option<Duration> {
        self.shed_deadline
    }

    /// The explicit octree storage layout, if one was requested. `None`
    /// means "use the ambient default" — see
    /// [`CacheConfig::resolved_tree_layout`].
    #[inline]
    pub fn tree_layout(&self) -> Option<TreeLayout> {
        self.tree_layout
    }

    /// The octree storage layout every backend built from this config will
    /// use: the explicit choice when set, otherwise
    /// [`TreeLayout::default_from_env`] (the `OCTO_TREE_LAYOUT` environment
    /// variable, falling back to the pointer layout).
    #[inline]
    pub fn resolved_tree_layout(&self) -> TreeLayout {
        self.tree_layout
            .unwrap_or_else(TreeLayout::default_from_env)
    }

    /// How many journaled scans may accumulate before
    /// [`DurableMap`](crate::durable::DurableMap) writes the next periodic
    /// checkpoint (taken lock-free from the published
    /// [`MapSnapshot`](crate::MapSnapshot)). `0` disables periodic
    /// checkpoints — only the final checkpoint written on
    /// [`seal`](crate::durable::DurableMap::seal)/`finish` remains, and
    /// recovery replays the whole journal.
    #[inline]
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// How many checkpoint generations the store retains (≥ 1). Older
    /// generations are fallbacks when the newest checkpoint fails its
    /// checksum during recovery.
    #[inline]
    pub fn checkpoint_generations(&self) -> usize {
        self.checkpoint_generations
    }

    /// Whether every journal append is followed by an `fdatasync` (the
    /// default). Turning this off trades the last few records on power loss
    /// for lower insert latency; process kills (the failure mode the crash
    /// torture suite exercises) lose nothing either way.
    #[inline]
    pub fn journal_fsync(&self) -> bool {
        self.journal_fsync
    }

    /// The deterministic fault-injection schedule, if any. Only acted on
    /// under `cfg(any(test, feature = "fault-injection"))`; never
    /// serialised.
    #[inline]
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan
    }

    /// Whether backends built from this config record sub-scan
    /// [`Event`](octocache_telemetry::Event) streams (cache
    /// hit/miss/evict, queue traffic, worker batch spans). Off by
    /// default; when off the only cost in the hot paths is one
    /// `Option::is_some` branch per site. Never serialised (like
    /// [`CacheConfig::fault_plan`]): recording is a per-run choice, not
    /// part of the cache geometry.
    #[inline]
    pub fn events(&self) -> bool {
        self.events
    }

    /// Total cells retained after an eviction pass (`w × τ`).
    #[inline]
    pub fn capacity_after_eviction(&self) -> usize {
        self.num_buckets * self.tau
    }

    /// The paper's memory accounting: 7 bytes per cell (three `u8`-packed
    /// coordinates + one `f32`), times `w × τ` (§6.2.4: `M = 7wτ`).
    ///
    /// Note our cells physically store three `u16` coordinates (10 bytes) to
    /// cover 16-level trees; this method reports the paper's figure for
    /// comparability, [`CacheConfig::resident_bytes`] the real one.
    #[inline]
    pub fn paper_bytes(&self) -> usize {
        7 * self.capacity_after_eviction()
    }

    /// Actual bytes held by cells after eviction in this implementation.
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<crate::cache::EvictedCell>() * self.capacity_after_eviction()
    }

    /// A short, stable digest of the cache geometry (FNV-1a over the
    /// serialised form), for labelling runs — the CLI `info` command prints
    /// it on its `engine:` line. Runtime-only knobs that are never
    /// serialised ([`CacheConfig::fault_plan`], [`CacheConfig::events`]) do
    /// not contribute, so two runs with the same geometry share a digest.
    pub fn digest(&self) -> u64 {
        let json = serde::json::to_string(self);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in json.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Builder for [`CacheConfig`]. Created by [`CacheConfig::builder`].
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    num_buckets: usize,
    tau: usize,
    index_policy: IndexPolicy,
    eviction_order: EvictionOrder,
    stall_timeout: Duration,
    backoff: BackoffPolicy,
    tree_layout: Option<TreeLayout>,
    checkpoint_every: u64,
    checkpoint_generations: usize,
    journal_fsync: bool,
    mem_budget: Option<u64>,
    max_restarts: u32,
    restart_backoff: Duration,
    shed_deadline: Option<Duration>,
    fault_plan: Option<FaultPlan>,
    events: bool,
}

impl CacheConfigBuilder {
    fn new() -> Self {
        let d = CacheConfig::default();
        CacheConfigBuilder {
            num_buckets: d.num_buckets,
            tau: d.tau,
            index_policy: d.index_policy,
            eviction_order: d.eviction_order,
            stall_timeout: d.stall_timeout,
            backoff: d.backoff,
            tree_layout: d.tree_layout,
            checkpoint_every: d.checkpoint_every,
            checkpoint_generations: d.checkpoint_generations,
            journal_fsync: d.journal_fsync,
            mem_budget: d.mem_budget,
            max_restarts: d.max_restarts,
            restart_backoff: d.restart_backoff,
            shed_deadline: d.shed_deadline,
            fault_plan: d.fault_plan,
            events: d.events,
        }
    }

    /// Sets the number of buckets `w` (must be a power of two).
    pub fn num_buckets(&mut self, w: usize) -> &mut Self {
        self.num_buckets = w;
        self
    }

    /// Sets the per-bucket retention threshold `τ`.
    pub fn tau(&mut self, tau: usize) -> &mut Self {
        self.tau = tau;
        self
    }

    /// Sets the indexing policy.
    pub fn index_policy(&mut self, p: IndexPolicy) -> &mut Self {
        self.index_policy = p;
        self
    }

    /// Sets the eviction emission order.
    pub fn eviction_order(&mut self, o: EvictionOrder) -> &mut Self {
        self.eviction_order = o;
        self
    }

    /// Bounds every parallel-pipeline wait; see
    /// [`CacheConfig::stall_timeout`]. Must be non-zero.
    pub fn stall_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.stall_timeout = timeout;
        self
    }

    /// Sets the wait/backoff shape for bounded pipeline waits; see
    /// [`BackoffPolicy`]. `yields_per_check` must be ≥ 1.
    pub fn backoff(&mut self, policy: BackoffPolicy) -> &mut Self {
        self.backoff = policy;
        self
    }

    /// Sets the memory budget in bytes (must be non-zero); see
    /// [`CacheConfig::mem_budget`].
    pub fn mem_budget(&mut self, bytes: u64) -> &mut Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Sets the per-worker respawn budget; see
    /// [`CacheConfig::max_restarts`].
    pub fn max_restarts(&mut self, n: u32) -> &mut Self {
        self.max_restarts = n;
        self
    }

    /// Sets the delay before each respawn; see
    /// [`CacheConfig::restart_backoff`].
    pub fn restart_backoff(&mut self, backoff: Duration) -> &mut Self {
        self.restart_backoff = backoff;
        self
    }

    /// Sets the scan-admission deadline; see
    /// [`CacheConfig::shed_deadline`].
    pub fn shed_deadline(&mut self, deadline: Duration) -> &mut Self {
        self.shed_deadline = Some(deadline);
        self
    }

    /// Pins the octree storage layout for every backend built from this
    /// config; see [`CacheConfig::resolved_tree_layout`].
    pub fn tree_layout(&mut self, layout: TreeLayout) -> &mut Self {
        self.tree_layout = Some(layout);
        self
    }

    /// Sets the periodic checkpoint interval in scans (0 disables); see
    /// [`CacheConfig::checkpoint_every`].
    pub fn checkpoint_every(&mut self, every: u64) -> &mut Self {
        self.checkpoint_every = every;
        self
    }

    /// Sets how many checkpoint generations to retain (≥ 1); see
    /// [`CacheConfig::checkpoint_generations`].
    pub fn checkpoint_generations(&mut self, keep: usize) -> &mut Self {
        self.checkpoint_generations = keep;
        self
    }

    /// Toggles per-append journal fsync; see
    /// [`CacheConfig::journal_fsync`].
    pub fn journal_fsync(&mut self, on: bool) -> &mut Self {
        self.journal_fsync = on;
        self
    }

    /// Schedules deterministic fault injection; see
    /// [`CacheConfig::fault_plan`].
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables sub-scan event recording; see [`CacheConfig::events`].
    pub fn events(&mut self, on: bool) -> &mut Self {
        self.events = on;
        self
    }

    /// Sizes the cache for a workload, following the paper's §5.2 rule:
    /// capacity ≈ `factor` × the expected non-duplicate voxels per batch
    /// (3–4 recommended), rounded up to a power-of-two bucket count at the
    /// current `τ`.
    pub fn size_for_batch(&mut self, nondup_voxels_per_batch: usize, factor: f64) -> &mut Self {
        let target_cells = (nondup_voxels_per_batch as f64 * factor).ceil() as usize;
        let buckets = (target_cells / self.tau.max(1)).max(1);
        self.num_buckets = buckets.next_power_of_two();
        self
    }

    /// Validates and produces the config.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `num_buckets` is zero or not a power
    /// of two, or `tau` is zero.
    pub fn build(&self) -> Result<CacheConfig, ConfigError> {
        if self.num_buckets == 0 {
            return Err(ConfigError::NoBuckets);
        }
        if !self.num_buckets.is_power_of_two() {
            return Err(ConfigError::BucketsNotPowerOfTwo(self.num_buckets));
        }
        if self.tau == 0 {
            return Err(ConfigError::ZeroTau);
        }
        if self.stall_timeout.is_zero() {
            return Err(ConfigError::ZeroStallTimeout);
        }
        if self.checkpoint_generations == 0 {
            return Err(ConfigError::ZeroCheckpointGenerations);
        }
        if self.backoff.yields_per_check == 0 {
            return Err(ConfigError::ZeroYieldsPerCheck);
        }
        if self.mem_budget == Some(0) {
            return Err(ConfigError::ZeroMemBudget);
        }
        Ok(CacheConfig {
            num_buckets: self.num_buckets,
            tau: self.tau,
            index_policy: self.index_policy,
            eviction_order: self.eviction_order,
            stall_timeout: self.stall_timeout,
            backoff: self.backoff,
            tree_layout: self.tree_layout,
            checkpoint_every: self.checkpoint_every,
            checkpoint_generations: self.checkpoint_generations,
            journal_fsync: self.journal_fsync,
            mem_budget: self.mem_budget,
            max_restarts: self.max_restarts,
            restart_backoff: self.restart_backoff,
            shed_deadline: self.shed_deadline,
            fault_plan: self.fault_plan,
            events: self.events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_morton_bucket_sequential() {
        let c = CacheConfig::default();
        assert!(c.num_buckets().is_power_of_two());
        assert_eq!(c.index_policy(), IndexPolicy::Morton);
        assert_eq!(c.eviction_order(), EvictionOrder::BucketSequential);
        assert_eq!(c.tau(), 4);
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            CacheConfig::builder().num_buckets(0).build(),
            Err(ConfigError::NoBuckets)
        );
        assert_eq!(
            CacheConfig::builder().num_buckets(100).build(),
            Err(ConfigError::BucketsNotPowerOfTwo(100))
        );
        assert_eq!(
            CacheConfig::builder().tau(0).build(),
            Err(ConfigError::ZeroTau)
        );
        assert_eq!(
            CacheConfig::builder().stall_timeout(Duration::ZERO).build(),
            Err(ConfigError::ZeroStallTimeout)
        );
        assert!(CacheConfig::builder()
            .num_buckets(64)
            .tau(2)
            .build()
            .is_ok());
    }

    #[test]
    fn paper_memory_accounting() {
        // Paper §5.1: 512K buckets x tau 4 x 7 bytes = 14 MB.
        let c = CacheConfig::builder()
            .num_buckets(512 * 1024)
            .tau(4)
            .build()
            .unwrap();
        assert_eq!(c.paper_bytes(), 14 * 1024 * 1024);
        assert!(c.resident_bytes() >= c.paper_bytes());
    }

    #[test]
    fn size_for_batch_rounds_to_power_of_two() {
        let c = CacheConfig::builder()
            .tau(4)
            .size_for_batch(10_000, 3.5)
            .build()
            .unwrap();
        assert!(c.num_buckets().is_power_of_two());
        // capacity at least 3.5x the batch size…
        assert!(c.capacity_after_eviction() >= 35_000 / 4 * 4);
        // …but no more than 2x overshoot from rounding.
        assert!(c.capacity_after_eviction() <= 2 * 35_000);
    }

    #[test]
    fn stall_timeout_and_fault_plan_round_trip_through_builder() {
        let plan = FaultPlan::from_seed(3);
        let c = CacheConfig::builder()
            .num_buckets(64)
            .tau(2)
            .stall_timeout(Duration::from_millis(50))
            .fault_plan(plan)
            .build()
            .unwrap();
        assert_eq!(c.stall_timeout(), Duration::from_millis(50));
        assert_eq!(c.fault_plan(), Some(plan));
        // Defaults: a generous bound and no injected faults.
        let d = CacheConfig::default();
        assert_eq!(d.stall_timeout(), Duration::from_secs(10));
        assert_eq!(d.fault_plan(), None);
        // The fault plan never reaches serialised configs.
        let json = serde::json::to_string(&c);
        assert!(!json.contains("fault"), "{json}");
        let back: CacheConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(back.fault_plan(), None);
        assert_eq!(back.stall_timeout(), c.stall_timeout());
        assert_eq!(back.num_buckets(), c.num_buckets());
    }

    #[test]
    fn events_switch_defaults_off_and_is_not_serialised() {
        assert!(!CacheConfig::default().events());
        let c = CacheConfig::builder()
            .num_buckets(64)
            .events(true)
            .build()
            .unwrap();
        assert!(c.events());
        // Like the fault plan, the recording switch is per-run, not part of
        // the serialised cache geometry.
        let back: CacheConfig = serde::json::from_str(&serde::json::to_string(&c)).unwrap();
        assert!(!back.events());
    }

    #[test]
    fn digest_tracks_geometry_not_runtime_knobs() {
        let base = CacheConfig::builder()
            .num_buckets(64)
            .tau(2)
            .build()
            .unwrap();
        // Deterministic for equal geometry.
        assert_eq!(base.digest(), base.digest());
        // Geometry changes move the digest.
        let other = CacheConfig::builder()
            .num_buckets(128)
            .tau(2)
            .build()
            .unwrap();
        assert_ne!(base.digest(), other.digest());
        // Never-serialised knobs do not.
        let with_knobs = CacheConfig::builder()
            .num_buckets(64)
            .tau(2)
            .events(true)
            .fault_plan(FaultPlan::from_seed(1))
            .build()
            .unwrap();
        assert_eq!(base.digest(), with_knobs.digest());
    }

    #[test]
    fn tree_layout_round_trips_and_resolves() {
        // No explicit layout: resolves to the ambient default.
        let d = CacheConfig::default();
        assert_eq!(d.tree_layout(), None);
        assert_eq!(d.resolved_tree_layout(), TreeLayout::default_from_env());
        // Explicit layout wins and survives serialisation.
        let c = CacheConfig::builder()
            .num_buckets(64)
            .tree_layout(TreeLayout::Arena)
            .build()
            .unwrap();
        assert_eq!(c.tree_layout(), Some(TreeLayout::Arena));
        assert_eq!(c.resolved_tree_layout(), TreeLayout::Arena);
        let back: CacheConfig = serde::json::from_str(&serde::json::to_string(&c)).unwrap();
        assert_eq!(back.tree_layout(), Some(TreeLayout::Arena));
    }

    #[test]
    fn durability_knobs_default_validate_and_round_trip() {
        let d = CacheConfig::default();
        assert_eq!(d.checkpoint_every(), 64);
        assert_eq!(d.checkpoint_generations(), 3);
        assert!(d.journal_fsync());
        assert_eq!(
            CacheConfig::builder().checkpoint_generations(0).build(),
            Err(ConfigError::ZeroCheckpointGenerations)
        );
        let c = CacheConfig::builder()
            .checkpoint_every(0)
            .checkpoint_generations(5)
            .journal_fsync(false)
            .build()
            .unwrap();
        assert_eq!(c.checkpoint_every(), 0);
        let back: CacheConfig = serde::json::from_str(&serde::json::to_string(&c)).unwrap();
        assert_eq!(back.checkpoint_every(), 0);
        assert_eq!(back.checkpoint_generations(), 5);
        assert!(!back.journal_fsync());
    }

    #[test]
    fn supervisor_knobs_default_off_validate_and_round_trip() {
        let d = CacheConfig::default();
        assert_eq!(d.mem_budget(), None);
        assert_eq!(d.max_restarts(), 0);
        assert_eq!(d.restart_backoff(), Duration::ZERO);
        assert_eq!(d.shed_deadline(), None);
        assert_eq!(d.backoff(), BackoffPolicy::default());
        assert_eq!(d.backoff().spin_iters, 64);
        assert_eq!(d.backoff().yields_per_check, 1);
        assert_eq!(
            CacheConfig::builder().mem_budget(0).build(),
            Err(ConfigError::ZeroMemBudget)
        );
        assert_eq!(
            CacheConfig::builder()
                .backoff(BackoffPolicy {
                    spin_iters: 8,
                    yields_per_check: 0
                })
                .build(),
            Err(ConfigError::ZeroYieldsPerCheck)
        );
        let c = CacheConfig::builder()
            .num_buckets(64)
            .mem_budget(32 << 20)
            .max_restarts(3)
            .restart_backoff(Duration::from_millis(5))
            .shed_deadline(Duration::from_millis(40))
            .backoff(BackoffPolicy {
                spin_iters: 16,
                yields_per_check: 4,
            })
            .build()
            .unwrap();
        assert_eq!(c.mem_budget(), Some(32 << 20));
        assert_eq!(c.max_restarts(), 3);
        assert_eq!(c.restart_backoff(), Duration::from_millis(5));
        assert_eq!(c.shed_deadline(), Some(Duration::from_millis(40)));
        let back: CacheConfig = serde::json::from_str(&serde::json::to_string(&c)).unwrap();
        assert_eq!(back.mem_budget(), Some(32 << 20));
        assert_eq!(back.max_restarts(), 3);
        assert_eq!(back.shed_deadline(), Some(Duration::from_millis(40)));
        assert_eq!(back.backoff().spin_iters, 16);
        assert_eq!(back.backoff().yields_per_check, 4);
    }

    #[test]
    fn displays() {
        assert_eq!(IndexPolicy::Hash.to_string(), "hash");
        assert_eq!(IndexPolicy::Morton.to_string(), "morton");
        assert_eq!(
            EvictionOrder::BucketSequential.to_string(),
            "bucket-sequential"
        );
        for e in [
            ConfigError::BucketsNotPowerOfTwo(3),
            ConfigError::NoBuckets,
            ConfigError::ZeroTau,
            ConfigError::ZeroStallTimeout,
            ConfigError::ZeroCheckpointGenerations,
            ConfigError::ZeroYieldsPerCheck,
            ConfigError::ZeroMemBudget,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
